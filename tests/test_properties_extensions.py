"""Property-based tests for the extension layers: the message bus,
the simulator, and the ConTract model's native/workflow parity."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import WorkflowError
from repro.tx import AbortScript, SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.engine import Engine
from repro.wfms.messaging import MessageBus
from repro.wfms.model import Activity, ProcessDefinition
from repro.wfms.simulate import ActivityProfile, simulate
from repro.core.contract import (
    ContractSpec,
    ContractStep,
    NativeContractExecutor,
    register_contract_programs,
    translate_contract,
    workflow_contract_outcome,
)


# ---------------------------------------------------------------------------
# Message bus: no loss, no duplication
# ---------------------------------------------------------------------------

@given(
    ops=st.lists(
        st.sampled_from(["send", "receive", "ack", "nack", "recover"]),
        max_size=40,
    )
)
@settings(max_examples=80, deadline=None)
def test_message_bus_conserves_messages(ops):
    bus = MessageBus()
    sent = 0
    acked = 0
    in_flight: list[str] = []
    for op in ops:
        if op == "send":
            bus.send("q", {"n": sent})
            sent += 1
        elif op == "receive":
            message = bus.receive("q")
            if message is not None:
                in_flight.append(message[0])
        elif op == "ack" and in_flight:
            bus.ack("q", in_flight.pop(0))
            acked += 1
        elif op == "nack" and in_flight:
            bus.nack("q", in_flight.pop(0))
        elif op == "recover":
            bus.recover_in_flight("q")
            in_flight.clear()
    # Conservation: everything sent is either acked or still queued.
    assert bus.depth("q") == sent - acked


@given(count=st.integers(min_value=0, max_value=30))
@settings(max_examples=30, deadline=None)
def test_message_bus_fifo_order(count):
    bus = MessageBus()
    for n in range(count):
        bus.send("q", {"n": n})
    received = []
    while True:
        message = bus.receive("q")
        if message is None:
            break
        msg_id, body = message
        received.append(body["n"])
        bus.ack("q", msg_id)
    assert received == list(range(count))


# ---------------------------------------------------------------------------
# Simulator invariants
# ---------------------------------------------------------------------------

@st.composite
def chains(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    durations = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0),
            min_size=n,
            max_size=n,
        )
    )
    probabilities = draw(
        st.lists(
            st.sampled_from([0.3, 0.7, 1.0]), min_size=n, max_size=n
        )
    )
    return durations, probabilities


@given(chain=chains(), seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=50, deadline=None)
def test_simulation_makespan_bounds(chain, seed):
    durations, probabilities = chain
    d = ProcessDefinition("Chain")
    names = ["a%d" % i for i in range(len(durations))]
    for name in names:
        d.add_activity(Activity(name, program="p"))
    for left, right in zip(names, names[1:]):
        d.connect(left, right, "RC = 0")
    profiles = {
        name: ActivityProfile(
            duration=durations[i], success_probability=probabilities[i]
        )
        for i, name in enumerate(names)
    }
    report = simulate(d, profiles, runs=20, seed=seed)
    assert 0.0 <= report.completion_rate <= 1.0
    upper = sum(
        durations[i] * (profiles[names[i]].max_retries + 1)
        for i in range(len(names))
    )
    for run in report.runs:
        assert durations[0] - 1e-9 <= run.makespan <= upper + 1e-9
        assert run.executed + run.dead == len(names)


# ---------------------------------------------------------------------------
# ConTract parity under random contexts and failures
# ---------------------------------------------------------------------------

SPEC = ContractSpec(
    "c",
    context=[VariableDecl("X", DataType.LONG)],
    steps=[
        ContractStep("s1"),
        ContractStep("s2", entry_condition="X > 10"),
        ContractStep("s3", entry_condition="X > 0", critical=True),
        ContractStep("s4", entry_condition="X > 100"),
    ],
)


@given(
    x=st.integers(min_value=-5, max_value=200),
    abort_step=st.sampled_from(["", "s1", "s2", "s3", "s4"]),
)
@settings(max_examples=60, deadline=None)
def test_contract_native_workflow_parity(x, abort_step):
    def bindings(db):
        actions = {
            s.name: Subtransaction(s.name, db, write_value(s.name, 1))
            for s in SPEC.steps
        }
        if abort_step:
            actions[abort_step].policy = AbortScript([1])
        comps = {
            s.name: Subtransaction("c" + s.name, db, write_value(s.name, 0))
            for s in SPEC.steps
        }
        return actions, comps

    native_db = SimDatabase()
    actions, comps = bindings(native_db)
    native = NativeContractExecutor(SPEC, actions, comps).run({"X": x})

    wf_db = SimDatabase()
    actions2, comps2 = bindings(wf_db)
    translation = translate_contract(SPEC)
    engine = Engine()
    register_contract_programs(engine, translation, actions2, comps2)
    engine.register_definition(translation.process)
    iid = engine.start_process(translation.process_name, {"X": x})
    engine.run()
    workflow = workflow_contract_outcome(engine, translation, iid)

    assert workflow.committed == native.committed
    assert workflow.executed == native.executed
    assert workflow.skipped == native.skipped
    assert workflow.compensated == native.compensated
    assert wf_db.snapshot() == native_db.snapshot()
