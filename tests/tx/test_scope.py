"""Savepoints, transaction scopes, and the subtransaction lock-leak
regression."""

import random

import pytest

from repro.errors import (
    ScopeError,
    TransactionAborted,
    TransactionError,
)
from repro.tx import (
    IsolationLevel,
    ScopeManager,
    ScopeState,
    SimDatabase,
    Subtransaction,
)
from repro.tx.database import TxnState
from repro.tx.lockmgr import LockMode


@pytest.fixture
def db():
    return SimDatabase("db", lock_timeout=0.1)


class TestSubtransactionLeakRegression:
    """Regression: a body raising a non-modelled exception used to
    leave the txn ACTIVE with its strict-2PL locks held forever."""

    def test_unmodelled_exception_aborts_and_reraises(self, db):
        def body(txn):
            txn.write("k", 1)
            raise ValueError("bug in the body")

        sub = Subtransaction("bad", db, body)
        with pytest.raises(ValueError):
            sub.execute()
        # The lock is released: another transaction can write "k".
        txn = db.begin()
        txn.write("k", 2)
        txn.commit()
        assert db.get("k") == 2
        assert db.active_transactions() == []

    def test_unmodelled_exception_rolls_writes_back(self, db):
        def body(txn):
            txn.write("k", 99)
            raise KeyError("whoops")

        with pytest.raises(KeyError):
            Subtransaction("bad", db, body).execute()
        assert db.get("k") is None

    def test_modelled_abort_still_reports_outcome(self, db):
        def body(txn):
            raise TransactionAborted("no", reason="no")

        outcome = Subtransaction("a", db, body).execute()
        assert not outcome.committed
        assert outcome.reason == "no"


class TestSavepoints:
    def test_partial_rollback(self, db):
        txn = db.begin()
        txn.write("a", 1)
        txn.savepoint("sp")
        txn.write("a", 2)
        txn.write("b", 3)
        txn.rollback_to_savepoint("sp")
        assert db.get("a") == 1
        assert db.get("b") is None
        txn.commit()
        assert db.get("a") == 1

    def test_rollback_to_savepoint_keeps_locks(self, db):
        txn = db.begin()
        txn.savepoint("sp")
        txn.write("k", 1)
        txn.rollback_to_savepoint("sp")
        assert "k" in db.locks.held_by(txn.txn_id)
        txn.commit()

    def test_repeated_rollback_to_same_savepoint(self, db):
        txn = db.begin()
        txn.write("k", 0)
        txn.savepoint("sp")
        for attempt in (1, 2, 3):
            txn.write("k", attempt)
            txn.rollback_to_savepoint("sp")
            assert db.get("k") == 0
        txn.commit()
        assert db.get("k") == 0

    def test_later_savepoints_are_discarded(self, db):
        txn = db.begin()
        txn.savepoint("outer")
        txn.write("k", 1)
        txn.savepoint("inner")
        txn.rollback_to_savepoint("outer")
        with pytest.raises(TransactionError):
            txn.rollback_to_savepoint("inner")
        txn.abort()

    def test_unknown_savepoint(self, db):
        txn = db.begin()
        with pytest.raises(TransactionError):
            txn.rollback_to_savepoint("ghost")
        txn.abort()

    def test_full_abort_after_partial_rollback(self, db):
        txn = db.begin()
        txn.write("a", 1)
        txn.savepoint("sp")
        txn.write("a", 2)
        txn.rollback_to_savepoint("sp")
        txn.write("b", 9)
        txn.abort()
        assert db.get("a") is None
        assert db.get("b") is None

    def test_crash_recovery_after_partial_rollback(self, db):
        committed = db.begin()
        committed.write("a", 1)
        committed.commit()
        txn = db.begin()
        txn.savepoint("sp")
        txn.write("a", 2)
        txn.write("b", 3)
        txn.rollback_to_savepoint("sp")
        txn.write("c", 4)
        db.flush()  # steal: uncommitted data reaches disk
        db.crash()
        db.restart()
        assert db.get("a") == 1
        assert db.get("b") is None
        assert db.get("c") is None


class TestScopeLifecycle:
    def test_commit_persists_writes(self, db):
        manager = ScopeManager(db)
        scope = manager.begin("root-1")
        scope.write("k", 1)
        scope.commit()
        assert scope.state is ScopeState.COMMITTED
        assert db.get("k") == 1
        assert db.active_transactions() == []

    def test_rollback_restores_pre_begin_snapshot(self, db):
        setup = db.begin()
        setup.write("a", 1)
        setup.write("b", 2)
        setup.commit()
        before = db.snapshot()
        manager = ScopeManager(db)
        scope = manager.begin("root-1")
        scope.write("a", 10)
        scope.write("c", 30)
        scope.increment("b", 5)
        scope.rollback()
        assert db.snapshot() == before
        assert db.active_transactions() == []

    def test_rollback_is_idempotent(self, db):
        manager = ScopeManager(db)
        scope = manager.begin("root-1")
        scope.rollback()
        scope.rollback()  # no-op
        assert manager.rollback(scope.handle) is False

    def test_operations_after_end_raise(self, db):
        manager = ScopeManager(db)
        scope = manager.begin("root-1")
        scope.commit()
        with pytest.raises(ScopeError):
            scope.write("k", 1)

    def test_one_open_scope_per_root(self, db):
        manager = ScopeManager(db)
        manager.begin("root-1")
        with pytest.raises(ScopeError):
            manager.begin("root-1")
        manager.begin("root-2")  # other roots are fine

    def test_rollback_open_for(self, db):
        manager = ScopeManager(db)
        scope = manager.begin("root-1")
        scope.write("k", 1)
        assert manager.rollback_open_for("root-1", "test") == 1
        assert db.get("k") is None
        assert manager.rollback_open_for("root-1", "test") == 0

    def test_property_rollback_restores_snapshot_with_savepoints(self, db):
        """Seeded random op sequences: rollback always restores the
        exact pre-begin snapshot, savepoints and partial rollbacks
        included."""
        rng = random.Random(7)
        setup = db.begin()
        for i in range(8):
            setup.write("k%d" % i, i)
        setup.commit()
        manager = ScopeManager(db)
        for trial in range(25):
            before = db.snapshot()
            scope = manager.begin("root-%d" % trial)
            savepoints = []
            for op in range(rng.randrange(1, 15)):
                choice = rng.random()
                key = "k%d" % rng.randrange(10)
                if choice < 0.5:
                    scope.write(key, rng.randrange(100))
                elif choice < 0.7:
                    name = "sp%d" % len(savepoints)
                    scope.savepoint(name)
                    savepoints.append(name)
                elif choice < 0.85 and savepoints:
                    scope.rollback_to_savepoint(
                        savepoints[rng.randrange(len(savepoints))]
                    )
                else:
                    scope.read(key)
            scope.rollback()
            assert db.snapshot() == before
            assert db.active_transactions() == []

    def test_property_commit_matches_shadow_model(self, db):
        """Committed scopes apply exactly the writes a dict-shadow
        predicts, under savepoint partial rollbacks."""
        rng = random.Random(11)
        manager = ScopeManager(db)
        for trial in range(10):
            shadow = db.snapshot()
            scope = manager.begin("root-%d" % trial)
            stack = []  # (name, shadow copy at savepoint)
            for op in range(rng.randrange(1, 20)):
                choice = rng.random()
                key = "k%d" % rng.randrange(6)
                if choice < 0.55:
                    value = rng.randrange(100)
                    scope.write(key, value)
                    shadow[key] = value
                elif choice < 0.75:
                    name = "sp%d" % len(stack)
                    scope.savepoint(name)
                    stack.append((name, dict(shadow)))
                elif stack:
                    index = rng.randrange(len(stack))
                    name, saved = stack[index]
                    scope.rollback_to_savepoint(name)
                    shadow = dict(saved)
                    stack = stack[: index + 1]
            scope.commit()
            assert db.snapshot() == shadow


class TestIsolationLevels:
    def test_serializable_holds_read_locks(self, db):
        manager = ScopeManager(db)
        scope = manager.begin(
            "root-1", isolation=IsolationLevel.SERIALIZABLE
        )
        scope.read("k")
        writer = db.begin()
        with pytest.raises(TransactionAborted):
            writer.write("k", 1)  # S lock held to scope end
        scope.rollback()

    def test_read_committed_releases_read_locks(self, db):
        manager = ScopeManager(db)
        scope = manager.begin(
            "root-1", isolation=IsolationLevel.READ_COMMITTED
        )
        scope.read("k")
        writer = db.begin()
        writer.write("k", 1)  # read lock already released
        writer.commit()
        assert scope.read("k") == 1  # sees the committed write
        scope.rollback()

    def test_read_committed_never_reads_dirty(self, db):
        manager = ScopeManager(db)
        writer = db.begin()
        writer.write("k", 99)  # uncommitted
        scope = manager.begin(
            "root-1", isolation=IsolationLevel.READ_COMMITTED
        )
        with pytest.raises(TransactionAborted):
            scope.read("k")  # blocks on the X lock, times out
        writer.abort()

    def test_read_committed_keeps_own_write_locks(self, db):
        manager = ScopeManager(db)
        scope = manager.begin(
            "root-1", isolation=IsolationLevel.READ_COMMITTED
        )
        scope.write("k", 1)
        scope.read("k")  # reading an own-written key must not unlock it
        assert (
            db.locks.holders("k").get(scope.txn.txn_id) is LockMode.EXCLUSIVE
        )
        scope.rollback()


class TestScopeTimeout:
    def test_scope_times_out_on_logical_clock(self, db):
        manager = ScopeManager(db)
        scope = manager.begin("root-1", timeout=3)
        scope.write("k", 1)
        scope.write("k", 2)
        with pytest.raises(TransactionAborted) as info:
            for i in range(10):
                scope.write("k", i)
        assert info.value.reason == "scope timeout"
        assert scope.state is ScopeState.ROLLED_BACK
        assert db.get("k") is None  # all writes undone
        assert db.active_transactions() == []

    def test_untimed_scope_never_expires(self, db):
        manager = ScopeManager(db)
        scope = manager.begin("root-1")
        for i in range(100):
            scope.write("k", i)
        scope.commit()
        assert db.get("k") == 99


class TestScopeRecovery:
    def test_recover_rolls_back_open_scopes(self, db):
        manager = ScopeManager(db)
        scope = manager.begin("root-1")
        scope.write("k", 1)
        torn = manager.recover()
        assert torn == 1
        assert db.get("k") is None
        assert db.active_transactions() == []
        assert manager.get(scope.handle) is None

    def test_recover_aborts_orphan_scope_transactions(self, db):
        # A manager that did not survive the crash: its scope txn is
        # still active in the shared database.
        old = ScopeManager(db)
        scope = old.begin("root-1")
        scope.write("k", 1)
        fresh = ScopeManager(db)
        assert fresh.recover() == 1
        assert db.get("k") is None
        assert db.active_transactions() == []

    def test_recover_spares_committed_scopes(self, db):
        manager = ScopeManager(db)
        scope = manager.begin("root-1")
        scope.write("k", 1)
        scope.commit()
        assert manager.recover() == 0
        assert db.get("k") == 1

    def test_recover_after_database_restart(self, db):
        manager = ScopeManager(db)
        scope = manager.begin("root-1")
        scope.write("k", 1)
        db.flush()
        db.crash()
        db.restart()  # ARIES already undid the scope txn as a loser
        assert manager.recover() == 1  # clears the registry
        assert db.get("k") is None
        assert manager.get(scope.handle) is None
