"""Unit tests for SimDatabase transactions, WAL and restart recovery."""

import pytest

from repro.errors import (
    DatabaseCrashed,
    InvalidTransactionState,
    TransactionAborted,
    TransactionError,
)
from repro.tx.database import SimDatabase, TxnState
from repro.tx.failures import AbortScript, unilateral_abort_hook
from repro.tx.wal import LogKind


@pytest.fixture
def db():
    return SimDatabase("test")


class TestTransactions:
    def test_commit_makes_writes_visible(self, db):
        with db.begin() as txn:
            txn.write("x", 1)
        assert db.get("x") == 1
        assert db.commits == 1

    def test_abort_rolls_back(self, db):
        with db.begin() as txn:
            txn.write("x", 1)
        txn = db.begin()
        txn.write("x", 2)
        txn.abort()
        assert db.get("x") == 1
        assert db.aborts == 1

    def test_abort_restores_absence(self, db):
        txn = db.begin()
        txn.write("fresh", 1)
        txn.abort()
        assert db.get("fresh") is None
        assert "fresh" not in set(db.keys())

    def test_delete(self, db):
        with db.begin() as txn:
            txn.write("x", 1)
        with db.begin() as txn:
            txn.delete("x")
        assert db.get("x") is None

    def test_increment(self, db):
        with db.begin() as txn:
            txn.write("acc", 10)
        with db.begin() as txn:
            assert txn.increment("acc", 5) == 15
        assert db.get("acc") == 15

    def test_increment_non_numeric_rejected(self, db):
        with db.begin() as txn:
            txn.write("acc", "text")
        txn = db.begin()
        with pytest.raises(TransactionError):
            txn.increment("acc", 1)
        txn.abort()

    def test_read_own_writes(self, db):
        txn = db.begin()
        txn.write("x", 7)
        assert txn.read("x") == 7
        txn.commit()

    def test_context_manager_aborts_on_exception(self, db):
        with pytest.raises(ValueError):
            with db.begin() as txn:
                txn.write("x", 1)
                raise ValueError("boom")
        assert db.get("x") is None
        assert db.aborts == 1

    def test_finished_transaction_rejects_operations(self, db):
        txn = db.begin()
        txn.commit()
        with pytest.raises(InvalidTransactionState):
            txn.read("x")
        with pytest.raises(InvalidTransactionState):
            txn.commit()

    def test_duplicate_txn_id_rejected(self, db):
        db.begin("t1")
        with pytest.raises(TransactionError):
            db.begin("t1")

    def test_isolation_via_locks(self, db):
        t1 = db.begin()
        t1.write("x", 1)
        t2 = db.begin()
        with pytest.raises(TransactionAborted):
            # Single-threaded: waiting would block forever, so the
            # manager raises rather than stalls (wait path is threaded).
            db.locks.acquire(t2.txn_id, "x", db.locks.holders("x")[t1.txn_id].__class__.SHARED, wait=False)
        t1.commit()
        assert t2.read("x") == 1
        t2.commit()


class TestWAL:
    def test_log_records_written_in_order(self, db):
        with db.begin() as txn:
            txn.write("x", 1)
        kinds = [r.kind for r in db.log]
        assert kinds == [LogKind.BEGIN, LogKind.UPDATE, LogKind.COMMIT]

    def test_update_records_carry_images(self, db):
        with db.begin() as txn:
            txn.write("x", 1)
        with db.begin() as txn:
            txn.write("x", 2)
        updates = [r for r in db.log if r.kind is LogKind.UPDATE]
        assert updates[1].before == 1 and updates[1].after == 2

    def test_abort_writes_clrs(self, db):
        txn = db.begin()
        txn.write("x", 1)
        txn.write("y", 2)
        txn.abort()
        clrs = [r for r in db.log if r.kind is LogKind.CLR]
        assert [r.key for r in clrs] == ["y", "x"]  # reverse order


class TestCrashRestart:
    def test_committed_unflushed_data_redone(self, db):
        with db.begin() as txn:
            txn.write("x", 1)
        assert db.stable_get("x") is None  # no-force: still in cache
        db.crash()
        stats = db.restart()
        assert stats["winners"] == 1
        assert db.get("x") == 1

    def test_uncommitted_flushed_data_undone(self, db):
        txn = db.begin()
        txn.write("x", 99)
        db.flush()  # steal: uncommitted data reaches disk
        assert db.stable_get("x") == 99
        db.crash()
        stats = db.restart()
        assert stats["losers"] == 1
        assert db.get("x") is None

    def test_mixed_winners_and_losers(self, db):
        with db.begin() as txn:
            txn.write("a", 1)
        loser = db.begin()
        loser.write("a", 100)
        loser.write("b", 200)
        db.flush()
        db.crash()
        stats = db.restart()
        assert stats == {"winners": 1, "losers": 1, "redone": 3, "undone": 2}
        assert db.get("a") == 1
        assert db.get("b") is None

    def test_crash_during_abort_is_idempotent(self, db):
        with db.begin() as txn:
            txn.write("x", 1)
        loser = db.begin()
        loser.write("x", 50)
        # Simulate a crash *during* rollback: undo applied and CLRs
        # logged, but no final ABORT record.
        db._undo(loser.txn_id)
        db.crash()
        db.restart()
        assert db.get("x") == 1
        # A second crash/restart changes nothing (idempotence).
        db.crash()
        db.restart()
        assert db.get("x") == 1

    def test_crashed_database_refuses_work(self, db):
        db.crash()
        with pytest.raises(DatabaseCrashed):
            db.begin()
        with pytest.raises(DatabaseCrashed):
            db.get("x")
        db.restart()
        db.begin().commit()

    def test_active_transactions_die_in_crash(self, db):
        txn = db.begin()
        txn.write("x", 1)
        db.crash()
        assert txn.state is TxnState.ABORTED
        db.restart()
        assert db.get("x") is None

    def test_checkpoint_flushes_and_logs(self, db):
        with db.begin() as txn:
            txn.write("x", 1)
        db.checkpoint()
        assert db.stable_get("x") == 1
        assert db.log.last_checkpoint() is not None

    def test_restart_after_checkpoint(self, db):
        with db.begin() as txn:
            txn.write("x", 1)
        db.checkpoint()
        with db.begin() as txn:
            txn.write("y", 2)
        db.crash()
        db.restart()
        assert db.get("x") == 1 and db.get("y") == 2


class TestUnilateralAbort:
    def test_on_commit_hook_aborts(self, db):
        db.on_commit = unilateral_abort_hook(AbortScript([1]))
        txn = db.begin()
        txn.write("x", 1)
        with pytest.raises(TransactionAborted):
            txn.commit()
        assert txn.state is TxnState.ABORTED
        assert db.get("x") is None
        # Second attempt (attempt 2 not in script) commits.
        with db.begin() as retry:
            retry.write("x", 1)
        assert db.get("x") == 1
