"""Tests for the multidatabase federation, failure policies and the
subtransaction adapter layer."""

import pytest

from repro.errors import TransactionAborted, TransactionError
from repro.tx import (
    AbortProbability,
    AbortScript,
    AlwaysAbort,
    AlwaysCommit,
    FailNTimes,
    Multidatabase,
    SimDatabase,
    Subtransaction,
)
from repro.tx.subtransaction import (
    compensate_transfer,
    transfer,
    write_value,
)


class TestFailurePolicies:
    def test_always_commit(self):
        policy = AlwaysCommit()
        assert not any(policy.should_abort(i) for i in range(1, 10))

    def test_always_abort(self):
        policy = AlwaysAbort()
        assert all(policy.should_abort(i) for i in range(1, 10))

    def test_fail_n_times(self):
        policy = FailNTimes(2)
        assert [policy.should_abort(i) for i in (1, 2, 3, 4)] == [
            True,
            True,
            False,
            False,
        ]

    def test_fail_n_times_rejects_negative(self):
        with pytest.raises(ValueError):
            FailNTimes(-1)

    def test_abort_script(self):
        policy = AbortScript([1, 3])
        assert [policy.should_abort(i) for i in (1, 2, 3, 4)] == [
            True,
            False,
            True,
            False,
        ]

    def test_abort_probability_is_seeded(self):
        a = [AbortProbability(0.5, seed=7).should_abort(i) for i in range(20)]
        b = [AbortProbability(0.5, seed=7).should_abort(i) for i in range(20)]
        assert a == b

    def test_abort_probability_bounds(self):
        with pytest.raises(ValueError):
            AbortProbability(1.5)
        assert not AbortProbability(0.0).should_abort(1)
        assert AbortProbability(1.0).should_abort(1)


class TestMultidatabase:
    def test_sites_are_independent(self):
        mdb = Multidatabase()
        mdb.add_site("bank_a")
        mdb.add_site("bank_b")
        with mdb.begin_at("bank_a") as txn:
            txn.write("acc", 100)
        assert mdb.site("bank_a").get("acc") == 100
        assert mdb.site("bank_b").get("acc") is None

    def test_duplicate_site_rejected(self):
        mdb = Multidatabase()
        mdb.add_site("s")
        with pytest.raises(TransactionError):
            mdb.add_site("s")

    def test_unknown_site_rejected(self):
        with pytest.raises(TransactionError):
            Multidatabase().site("ghost")

    def test_unilateral_abort_at_one_site(self):
        # "a local database can unilaterally abort a transaction"
        mdb = Multidatabase()
        a = mdb.add_site("a")
        b = mdb.add_site("b")
        b.set_abort_policy(AbortScript([1]))
        with mdb.begin_at("a") as txn:
            txn.write("x", 1)
        txn_b = mdb.begin_at("b")
        txn_b.write("x", 1)
        with pytest.raises(TransactionAborted):
            txn_b.commit()
        # No global atomicity: site a kept its commit, site b lost its
        # write — the inconsistency flexible transactions exist to fix.
        assert a.get("x") == 1
        assert b.get("x") is None
        assert mdb.total_commits() == 1
        assert mdb.total_aborts() == 1

    def test_snapshot_covers_all_sites(self):
        mdb = Multidatabase()
        mdb.add_site("a")
        mdb.add_site("b")
        with mdb.begin_at("a") as txn:
            txn.write("k", 1)
        assert mdb.snapshot() == {"a": {"k": 1}, "b": {}}

    def test_clearing_abort_policy(self):
        mdb = Multidatabase()
        site = mdb.add_site("a")
        site.set_abort_policy(AlwaysAbort())
        site.set_abort_policy(None)
        with mdb.begin_at("a") as txn:
            txn.write("x", 1)
        assert site.get("x") == 1


class TestSubtransaction:
    def test_commit_outcome(self):
        db = SimDatabase()
        sub = Subtransaction("t1", db, write_value("x", 5))
        outcome = sub.execute()
        assert outcome.committed and outcome.attempt == 1
        assert db.get("x") == 5

    def test_injected_abort_outcome(self):
        db = SimDatabase()
        sub = Subtransaction(
            "t1", db, write_value("x", 5), policy=AbortScript([1])
        )
        outcome = sub.execute()
        assert not outcome.committed
        assert db.get("x") is None
        assert sub.execute().committed  # attempt 2 passes

    def test_body_raising_aborts(self):
        db = SimDatabase()
        with db.begin() as txn:
            txn.write("src", 10)
        sub = Subtransaction("t", db, transfer("src", "dst", 50))
        outcome = sub.execute()
        assert not outcome.committed
        assert outcome.reason == "insufficient funds"
        assert db.get("src") == 10

    def test_transfer_and_compensation_are_inverse(self):
        db = SimDatabase()
        with db.begin() as txn:
            txn.write("src", 100)
        Subtransaction("fwd", db, transfer("src", "dst", 30)).execute()
        assert db.get("src") == 70 and db.get("dst") == 30
        Subtransaction(
            "comp", db, compensate_transfer("src", "dst", 30)
        ).execute()
        assert db.get("src") == 100 and db.get("dst") == 0

    def test_recorder_collects_outcomes(self):
        db = SimDatabase()
        events = []
        sub = Subtransaction(
            "t", db, write_value("x", 1),
            policy=FailNTimes(1), recorder=events,
        )
        sub.execute()
        sub.execute()
        assert [(e.name, e.committed) for e in events] == [
            ("t", False),
            ("t", True),
        ]

    def test_as_program_saga_convention(self):
        # Saga appendix: RC 0 = success.
        from repro.wfms.containers import Container
        from repro.wfms.datatypes import DataType, VariableDecl
        from repro.wfms.programs import InvocationContext

        db = SimDatabase()
        sub = Subtransaction("t", db, write_value("x", 1))
        program = sub.as_program(commit_rc=0, abort_rc=1)
        output = Container(
            [VariableDecl("State", DataType.LONG)], output=True
        )
        ctx = InvocationContext("A", "P", "pi-1", Container([]), output)
        assert program(ctx) == 0
        assert output.get("State") == 1

    def test_as_program_flexible_convention(self):
        # Flexible §4.2: RC 1 = commit, RC 0 = abort.
        from repro.wfms.containers import Container
        from repro.wfms.programs import InvocationContext

        db = SimDatabase()
        sub = Subtransaction(
            "t", db, write_value("x", 1), policy=AlwaysAbort()
        )
        program = sub.as_program(commit_rc=1, abort_rc=0)
        ctx = InvocationContext(
            "A", "P", "pi-1", Container([]), Container([], output=True)
        )
        assert program(ctx) == 0
