"""Unit tests for the strict 2PL lock manager."""

import threading

import pytest

from repro.errors import DeadlockError, LockTimeoutError
from repro.tx.lockmgr import LockManager, LockMode


@pytest.fixture
def lm():
    return LockManager(timeout=0.5)


class TestBasics:
    def test_shared_locks_are_compatible(self, lm):
        lm.acquire("t1", "k", LockMode.SHARED)
        lm.acquire("t2", "k", LockMode.SHARED)
        assert set(lm.holders("k")) == {"t1", "t2"}

    def test_exclusive_excludes_shared(self, lm):
        lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            lm.acquire("t2", "k", LockMode.SHARED, wait=False)

    def test_shared_excludes_exclusive(self, lm):
        lm.acquire("t1", "k", LockMode.SHARED)
        with pytest.raises(DeadlockError):
            lm.acquire("t2", "k", LockMode.EXCLUSIVE, wait=False)

    def test_reacquire_is_idempotent(self, lm):
        lm.acquire("t1", "k", LockMode.SHARED)
        lm.acquire("t1", "k", LockMode.SHARED)
        lm.acquire("t1", "k2", LockMode.EXCLUSIVE)
        lm.acquire("t1", "k2", LockMode.EXCLUSIVE)
        assert lm.held_by("t1") == {"k", "k2"}

    def test_upgrade_when_sole_holder(self, lm):
        lm.acquire("t1", "k", LockMode.SHARED)
        lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        assert lm.holders("k") == {"t1": LockMode.EXCLUSIVE}

    def test_exclusive_holder_reads_freely(self, lm):
        lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        lm.acquire("t1", "k", LockMode.SHARED)  # no downgrade
        assert lm.holders("k") == {"t1": LockMode.EXCLUSIVE}

    def test_upgrade_blocked_by_other_reader(self, lm):
        lm.acquire("t1", "k", LockMode.SHARED)
        lm.acquire("t2", "k", LockMode.SHARED)
        with pytest.raises(DeadlockError):
            lm.acquire("t1", "k", LockMode.EXCLUSIVE, wait=False)

    def test_release_all_frees_everything(self, lm):
        lm.acquire("t1", "a", LockMode.EXCLUSIVE)
        lm.acquire("t1", "b", LockMode.SHARED)
        lm.release_all("t1")
        assert lm.held_by("t1") == set()
        lm.acquire("t2", "a", LockMode.EXCLUSIVE)  # now free

    def test_release_unknown_txn_is_noop(self, lm):
        lm.release_all("ghost")


class TestBlocking:
    def test_waiter_proceeds_after_release(self, lm):
        lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def waiter():
            lm.acquire("t2", "k", LockMode.EXCLUSIVE)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not acquired.wait(0.05)
        lm.release_all("t1")
        assert acquired.wait(1.0)
        thread.join()

    def test_timeout(self):
        lm = LockManager(timeout=0.05)
        lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        started = threading.Event()
        result = {}

        def waiter():
            started.set()
            try:
                lm.acquire("t2", "k", LockMode.EXCLUSIVE)
                result["ok"] = True
            except LockTimeoutError:
                result["timeout"] = True

        thread = threading.Thread(target=waiter)
        thread.start()
        started.wait()
        thread.join(2.0)
        assert result == {"timeout": True}

    def test_fifo_fairness_for_fresh_requests(self, lm):
        lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        order = []
        threads = []

        def waiter(name):
            lm.acquire(name, "k", LockMode.EXCLUSIVE)
            order.append(name)
            lm.release_all(name)

        import time
        for name in ("t2", "t3"):
            thread = threading.Thread(target=waiter, args=(name,))
            thread.start()
            threads.append(thread)
            time.sleep(0.05)  # ensure queue order t2 then t3
        lm.release_all("t1")
        for thread in threads:
            thread.join(2.0)
        assert order == ["t2", "t3"]


class TestDeadlockDetection:
    def test_two_party_deadlock_detected(self, lm):
        lm.acquire("t1", "a", LockMode.EXCLUSIVE)
        lm.acquire("t2", "b", LockMode.EXCLUSIVE)
        blocked = threading.Event()

        def waiter():
            blocked.set()
            try:
                lm.acquire("t2", "a", LockMode.EXCLUSIVE)  # t2 waits on t1
                lm.release_all("t2")
            except DeadlockError:
                lm.release_all("t2")

        thread = threading.Thread(target=waiter)
        thread.start()
        blocked.wait()
        import time

        time.sleep(0.05)  # let t2 enqueue
        with pytest.raises(DeadlockError):
            lm.acquire("t1", "b", LockMode.EXCLUSIVE)  # closes the cycle
        lm.release_all("t1")
        thread.join(2.0)

    def test_upgrade_deadlock_detected(self, lm):
        # Both hold S and both want X: classic conversion deadlock.
        lm.acquire("t1", "k", LockMode.SHARED)
        lm.acquire("t2", "k", LockMode.SHARED)
        blocked = threading.Event()

        def waiter():
            blocked.set()
            try:
                lm.acquire("t2", "k", LockMode.EXCLUSIVE)
                lm.release_all("t2")
            except DeadlockError:
                lm.release_all("t2")

        thread = threading.Thread(target=waiter)
        thread.start()
        blocked.wait()
        import time

        time.sleep(0.05)
        with pytest.raises(DeadlockError):
            lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        lm.release_all("t1")
        thread.join(2.0)

    def test_no_false_deadlock_on_plain_contention(self, lm):
        lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        # t2 merely waiting is not a deadlock; nonblocking denial is
        # reported as DeadlockError only with wait=False.
        assert lm.waiting() == []


class TestEntryCleanup:
    """Regression: denied/abandoned requests must not leave empty
    ``_LockEntry`` objects behind (they used to accumulate forever)."""

    def test_denied_nowait_leaves_no_entry(self, lm):
        lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            lm.acquire("t2", "k", LockMode.SHARED, wait=False)
        # Only the held key remains in the lock map.
        assert set(lm._locks) == {"k"}
        lm.release_all("t1")
        assert lm._locks == {}

    def test_timed_out_waiter_leaves_no_entry(self):
        lm = LockManager(timeout=0.05)
        lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        done = threading.Event()

        def waiter():
            try:
                lm.acquire("t2", "k", LockMode.EXCLUSIVE)
            except LockTimeoutError:
                pass
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert done.wait(2.0)
        thread.join()
        lm.release_all("t1")
        assert lm._locks == {}

    def test_departing_waiter_wakes_the_rest(self):
        # t2 (queue head, timing out) must notify so t3 re-evaluates
        # instead of waiting out its own timeout after t1 releases.
        lm = LockManager(timeout=0.2)
        lm.acquire("t1", "k", LockMode.EXCLUSIVE)
        result = {}
        order = []

        def head():
            try:
                lm.acquire("t2", "k", LockMode.EXCLUSIVE)
                order.append("t2")
                lm.release_all("t2")
            except LockTimeoutError:
                result["t2"] = "timeout"

        def tail():
            try:
                lm.acquire("t3", "k", LockMode.EXCLUSIVE)
                order.append("t3")
                lm.release_all("t3")
            except LockTimeoutError:
                result["t3"] = "timeout"

        import time

        t_head = threading.Thread(target=head)
        t_head.start()
        time.sleep(0.02)
        t_tail = threading.Thread(target=tail)
        t_tail.start()
        t_head.join(2.0)
        assert result.get("t2") == "timeout"
        lm.release_all("t1")
        t_tail.join(2.0)
        assert order == ["t3"]
        assert lm._locks == {}


class TestSingleKeyRelease:
    """The read-committed escape hatch: release one key early."""

    def test_release_frees_one_key_only(self, lm):
        lm.acquire("t1", "a", LockMode.SHARED)
        lm.acquire("t1", "b", LockMode.EXCLUSIVE)
        lm.release("t1", "a")
        assert lm.held_by("t1") == {"b"}
        lm.acquire("t2", "a", LockMode.EXCLUSIVE)  # now free

    def test_release_wakes_waiters(self, lm):
        lm.acquire("t1", "k", LockMode.SHARED)
        acquired = threading.Event()

        def waiter():
            lm.acquire("t2", "k", LockMode.EXCLUSIVE)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not acquired.wait(0.05)
        lm.release("t1", "k")
        assert acquired.wait(1.0)
        thread.join()

    def test_release_unheld_is_noop(self, lm):
        lm.release("ghost", "k")
        lm.acquire("t1", "k", LockMode.SHARED)
        lm.release("t1", "other")
        assert lm.held_by("t1") == {"k"}

    def test_release_drops_empty_entry(self, lm):
        lm.acquire("t1", "k", LockMode.SHARED)
        lm.release("t1", "k")
        assert lm._locks == {}
