"""Direct WAL unit tests plus a threaded 2PL serializability check."""

import threading

import pytest

from repro.errors import TransactionAborted, TransactionError
from repro.tx import SimDatabase
from repro.tx.wal import ABSENT, LogKind, WriteAheadLog


class TestWriteAheadLog:
    def test_lsns_are_dense_and_ordered(self):
        log = WriteAheadLog()
        records = [
            log.append(LogKind.BEGIN, "t1"),
            log.append(LogKind.UPDATE, "t1", "k", before=ABSENT, after=1),
            log.append(LogKind.COMMIT, "t1"),
        ]
        assert [r.lsn for r in records] == [0, 1, 2]
        assert len(log) == 3

    def test_record_lookup(self):
        log = WriteAheadLog()
        log.append(LogKind.BEGIN, "t1")
        assert log.record(0).kind is LogKind.BEGIN
        with pytest.raises(TransactionError):
            log.record(99)

    def test_records_of_filters_by_txn(self):
        log = WriteAheadLog()
        log.append(LogKind.BEGIN, "t1")
        log.append(LogKind.BEGIN, "t2")
        log.append(LogKind.UPDATE, "t1", "k", after=1)
        assert [r.kind for r in log.records_of("t1")] == [
            LogKind.BEGIN,
            LogKind.UPDATE,
        ]

    def test_last_checkpoint(self):
        log = WriteAheadLog()
        assert log.last_checkpoint() is None
        log.append(LogKind.CHECKPOINT, "", active=("t1",))
        log.append(LogKind.BEGIN, "t2")
        log.append(LogKind.CHECKPOINT, "", active=("t2",))
        checkpoint = log.last_checkpoint()
        assert checkpoint is not None
        assert checkpoint.active == ("t2",)

    def test_clr_records_carry_undo_next(self):
        db = SimDatabase()
        txn = db.begin()
        txn.write("k", 1)
        update_lsn = [
            r.lsn for r in db.log if r.kind is LogKind.UPDATE
        ][0]
        txn.abort()
        clr = [r for r in db.log if r.kind is LogKind.CLR][0]
        assert clr.undo_next == update_lsn
        assert clr.after is ABSENT


class TestThreaded2PL:
    def test_concurrent_transfers_conserve_money(self):
        """Strict 2PL under real threads: concurrent transfers between
        two accounts never create or destroy money; deadlock victims
        retry."""
        db = SimDatabase("bank", lock_timeout=5.0)
        with db.begin() as txn:
            txn.write("a", 1000)
            txn.write("b", 1000)

        transfers_per_thread = 25
        errors: list[Exception] = []

        def worker(source: str, target: str) -> None:
            done = 0
            while done < transfers_per_thread:
                txn = db.begin()
                try:
                    balance = txn.read(source, 0)
                    txn.write(source, balance - 1)
                    other = txn.read(target, 0)
                    txn.write(target, other + 1)
                    txn.commit()
                    done += 1
                except TransactionAborted:
                    # Deadlock victim or timeout: roll back and retry.
                    if txn.state.value == "active":
                        txn.abort()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=worker, args=("a", "b")),
            threading.Thread(target=worker, args=("b", "a")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert errors == []
        assert db.get("a") + db.get("b") == 2000
        assert db.commits == 1 + 2 * transfers_per_thread

    def test_concurrent_increments_are_isolated(self):
        db = SimDatabase("counter", lock_timeout=5.0)
        with db.begin() as txn:
            txn.write("n", 0)
        per_thread = 50

        def worker() -> None:
            done = 0
            while done < per_thread:
                txn = db.begin()
                try:
                    txn.increment("n", 1)
                    txn.commit()
                    done += 1
                except TransactionAborted:
                    if txn.state.value == "active":
                        txn.abort()

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert db.get("n") == 4 * per_thread
