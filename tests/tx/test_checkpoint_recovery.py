"""Checkpoint-bounded restart recovery."""

from repro.tx import SimDatabase
from repro.tx.wal import LogKind


class TestCheckpointBoundedRedo:
    def test_redo_starts_after_checkpoint(self):
        db = SimDatabase()
        for i in range(50):
            with db.begin() as txn:
                txn.write("k%d" % (i % 5), i)
        db.checkpoint()  # flushes everything
        with db.begin() as txn:
            txn.write("tail", 1)
        db.crash()
        stats = db.restart()
        # Only the post-checkpoint update is redone, not all 51.
        assert stats["redone"] == 1
        assert db.get("tail") == 1
        assert db.get("k4") == 49

    def test_loser_spanning_checkpoint_is_undone(self):
        db = SimDatabase()
        loser = db.begin()
        loser.write("x", 111)
        db.checkpoint()  # loser is in the checkpoint's active set
        loser.write("y", 222)
        db.crash()
        stats = db.restart()
        assert stats["losers"] == 1
        assert db.get("x") is None
        assert db.get("y") is None

    def test_winner_spanning_checkpoint_stays_committed(self):
        db = SimDatabase()
        winner = db.begin()
        winner.write("x", 1)
        db.checkpoint()
        winner.write("y", 2)
        winner.commit()
        db.crash()
        db.restart()
        assert db.get("x") == 1
        assert db.get("y") == 2

    def test_multiple_checkpoints_use_latest(self):
        db = SimDatabase()
        with db.begin() as txn:
            txn.write("a", 1)
        db.checkpoint()
        with db.begin() as txn:
            txn.write("b", 2)
        db.checkpoint()
        with db.begin() as txn:
            txn.write("c", 3)
        db.crash()
        stats = db.restart()
        assert stats["redone"] == 1  # only c's update
        assert db.snapshot() == {"a": 1, "b": 2, "c": 3}

    def test_checkpoint_active_set_recorded(self):
        db = SimDatabase()
        txn = db.begin("t-open")
        db.checkpoint()
        record = db.log.last_checkpoint()
        assert record is not None
        assert record.active == ("t-open",)
        txn.abort()

    def test_recovery_without_checkpoint_unchanged(self):
        db = SimDatabase()
        with db.begin() as txn:
            txn.write("x", 1)
        db.crash()
        stats = db.restart()
        assert stats["redone"] == 1
        assert db.get("x") == 1
