"""The specification files shipped under examples/specs/ must keep
parsing, validating and translating."""

import glob
import os

import pytest

from repro.core.contract import ContractSpec, translate_contract
from repro.core.flexible import FlexibleSpec
from repro.core.flexible_translator import translate_flexible
from repro.core.parallel_saga import translate_parallel_saga
from repro.core.sagas import SagaSpec
from repro.core.saga_translator import translate_saga
from repro.core.speclang import parse_spec

SPEC_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "specs"
)
SPEC_FILES = sorted(glob.glob(os.path.join(SPEC_DIR, "*.fmtm")))


def test_spec_directory_is_populated():
    assert len(SPEC_FILES) >= 4


@pytest.mark.parametrize(
    "path", SPEC_FILES, ids=[os.path.basename(p) for p in SPEC_FILES]
)
def test_shipped_spec_translates(path):
    with open(path, "r", encoding="utf-8") as handle:
        spec = parse_spec(handle.read())
    if isinstance(spec, SagaSpec):
        translation = (
            translate_saga(spec)
            if spec.is_linear
            else translate_parallel_saga(spec)
        )
    elif isinstance(spec, FlexibleSpec):
        translation = translate_flexible(spec)
    else:
        assert isinstance(spec, ContractSpec)
        translation = translate_contract(spec)
    translation.process.validate()
    assert translation.required_programs
