"""Sharded execution: partitioning, cross-shard calls, deterministic
scheduling, per-shard recovery, merged monitoring, and the
multiprocess pump backend."""

import pytest

from repro.errors import NavigationError, WorkflowError
from repro.store import DurableStore
from repro.wfms import (
    ANY_SHARD,
    Activity,
    DataType,
    Engine,
    MultiprocessShardPool,
    ProcessDefinition,
    ShardedEngine,
    VariableDecl,
    shard_of,
)
from repro.wfms.model import PROCESS_INPUT, PROCESS_OUTPUT
from repro.workloads.sharded_demo import configure_sharded_math


def register_flow(sharded_or_engine):
    """A one-activity local process, registered either on an Engine or
    on every shard of a ShardedEngine."""
    definition = ProcessDefinition(
        "Flow",
        input_spec=[VariableDecl("N", DataType.LONG)],
        output_spec=[VariableDecl("Out", DataType.LONG)],
    )
    definition.add_activity(
        Activity(
            "A",
            program="copy",
            input_spec=[VariableDecl("N", DataType.LONG)],
            output_spec=[VariableDecl("Out", DataType.LONG)],
        )
    )
    definition.map_data(PROCESS_INPUT, "A", [("N", "N")])
    definition.map_data("A", PROCESS_OUTPUT, [("Out", "Out")])

    def copy(ctx):
        ctx.set_output("Out", ctx.get_input("N"))
        return 0

    if isinstance(sharded_or_engine, ShardedEngine):
        sharded_or_engine.register_program("copy", copy, replace=True)
        sharded_or_engine.register_definition(definition)
    else:
        sharded_or_engine.register_program("copy", copy)
        sharded_or_engine.register_definition(definition)
    return definition


class TestPartitioning:
    def test_shard_of_is_stable_and_in_range(self):
        for key in ("pi-000001", "req/shard-1/pi-000002/CallWork", "x"):
            first = shard_of(key, 4)
            assert first == shard_of(key, 4)
            assert 0 <= first < 4

    def test_shard_of_rejects_empty_cluster(self):
        with pytest.raises(WorkflowError):
            shard_of("k", 0)

    def test_keys_spread_across_shards(self):
        owners = {shard_of("pi-%06d" % n, 4) for n in range(1, 64)}
        assert owners == {0, 1, 2, 3}

    def test_request_ids_hash_like_their_served_roots(self):
        """A served instance (``req/<request_id>``) must live on the
        shard its request id routed to."""
        sharded = ShardedEngine(4)
        request_id = "shard-2/pi-000007/CallDouble"
        served_root = "req/" + request_id
        assert sharded.shard_index_for_root(served_root) == shard_of(
            request_id, 4
        )
        assert sharded.shard_name_for_key(request_id) == (
            "shard-%d" % shard_of(request_id, 4)
        )


class TestShardedExecution:
    def test_batch_finishes_spread_over_all_shards(self):
        sharded = ShardedEngine(4, seed=1)
        register_flow(sharded)
        ids = [
            sharded.start_process("Flow", {"N": n}) for n in range(24)
        ]
        assert len(set(ids)) == 24
        sharded.run()
        for n, iid in enumerate(ids):
            assert sharded.instance_state(iid) == "finished"
            assert sharded.output(iid)["Out"] == n
        populated = [
            row
            for row in sharded.snapshot()["shards"]
            if row["live_instances"]
        ]
        assert len(populated) == 4

    def test_cross_shard_request_reply(self):
        """Front's remote call targets ANY_SHARD; the serving shard is
        picked by the partition rule and the reply routes home."""
        sharded = ShardedEngine(4, seed=3)
        configure_sharded_math(sharded)
        ids = {
            sharded.start_process("Front", {"N": n}): n for n in range(10)
        }
        sharded.run()
        for iid, n in ids.items():
            assert sharded.output(iid)["Final"] == 2 * n + 1

    def test_each_request_is_served_exactly_once(self):
        sharded = ShardedEngine(3, seed=5)
        configure_sharded_math(sharded)
        ids = [sharded.start_process("Front", {"N": n}) for n in range(8)]
        sharded.run()
        served = [
            row
            for row in sharded.process_list()
            if row["instance"].startswith("req/")
        ]
        assert len(served) == len(ids)
        assert all(row["state"] == "finished" for row in served)
        # ...and each served instance sits on its hash-selected shard.
        for row in served:
            owner = sharded.shards[
                sharded.shard_index_for_root(row["instance"])
            ]
            assert row["instance"] in owner.engine.navigator.instance_ids()

    def test_unknown_instance_raises(self):
        sharded = ShardedEngine(2)
        with pytest.raises(NavigationError, match="searched 2 shards"):
            sharded.instance_state("pi-999999")

    def test_snapshot_shape(self):
        sharded = ShardedEngine(2, seed=9)
        register_flow(sharded)
        sharded.start_process("Flow", {"N": 1})
        sharded.run()
        snapshot = sharded.snapshot()
        assert snapshot["num_shards"] == 2
        assert snapshot["seed"] == 9
        assert [row["name"] for row in snapshot["shards"]] == [
            "shard-0",
            "shard-1",
        ]
        for row in snapshot["shards"]:
            assert row["crashed"] is False
            assert set(row["queues"]) == {"inbox", "replies", "dlq"}
            assert set(row["scheduler"]) == {"ready", "delayed"}
            assert row["store"] == {"enabled": False}


class TestDeterminism:
    def _trace(self, seed):
        sharded = ShardedEngine(4, seed=seed)
        configure_sharded_math(sharded)
        for n in range(12):
            sharded.start_process("Front", {"N": n})
        rounds = sharded.run()
        rows = [
            (row["instance"], row["state"])
            for row in sharded.process_list()
        ]
        return rounds, rows, sharded.clocks

    def test_same_seed_same_schedule(self):
        assert self._trace(11) == self._trace(11)

    def test_runs_converge_for_many_seeds(self):
        for seed in range(6):
            rounds, rows, __ = self._trace(seed)
            assert rounds >= 1
            assert all(state == "finished" for __, state in rows)


class TestPerShardRecovery:
    def test_one_shard_recovers_without_cluster_replay(self, tmp_path):
        sharded = ShardedEngine(3, journal_dir=tmp_path, seed=2)
        register_flow(sharded)
        ids = [
            sharded.start_process("Flow", {"N": n}) for n in range(12)
        ]
        sharded.run()
        victim = 1
        survivors = {
            index: sharded.shards[index].engine
            for index in range(3)
            if index != victim
        }
        sharded.crash_shard(victim)
        assert sharded.crashed_shards() == [victim]
        assert sharded.recover() == [victim]
        # Healthy shards kept their very engine objects — recovery
        # rebuilt one shard, not the cluster.
        for index, engine in survivors.items():
            assert sharded.shards[index].engine is engine
        for iid in ids:
            assert sharded.instance_state(iid) == "finished"

    def test_crashed_shard_is_skipped_by_queries(self, tmp_path):
        sharded = ShardedEngine(2, journal_dir=tmp_path)
        register_flow(sharded)
        ids = [sharded.start_process("Flow", {"N": n}) for n in range(8)]
        sharded.run()
        sharded.crash_shard(0)
        remaining = sharded.process_list()
        assert all(
            sharded.shard_index_for_root(row["instance"]) == 1
            for row in remaining
        )
        on_crashed = [
            iid for iid in ids if sharded.shard_index_for_root(iid) == 0
        ]
        assert on_crashed  # the batch straddles both shards
        with pytest.raises(NavigationError):
            sharded.instance_state(on_crashed[0])
        sharded.recover()
        assert sharded.instance_state(on_crashed[0]) == "finished"

    def test_running_with_every_shard_down_raises(self, tmp_path):
        sharded = ShardedEngine(2, journal_dir=tmp_path)
        register_flow(sharded)
        sharded.crash()
        with pytest.raises(WorkflowError, match="every shard is crashed"):
            sharded.run()


class TestMonitoringIndexes:
    """Engine.process_list/account stay O(live + matching) — backed by
    the navigator's state/definition indexes and the archive."""

    def _store_engine(self, tmp_path):
        engine = Engine(store=DurableStore(tmp_path / "store"))
        register_flow(engine)
        return engine

    def test_process_list_filters_by_state_and_definition(self):
        engine = Engine()
        register_flow(engine)
        finished = engine.start_process("Flow", {"N": 1})
        engine.run()
        live = engine.start_process("Flow", {"N": 2})
        assert {
            row["instance"] for row in engine.process_list(state="finished")
        } == {finished}
        assert {
            row["instance"] for row in engine.process_list(state="running")
        } == {live}
        assert engine.process_list(definition="Nope") == []
        assert len(engine.process_list(definition="Flow")) == 2

    def test_process_list_reaches_archived_roots(self, tmp_path):
        engine = self._store_engine(tmp_path)
        iid = engine.start_process("Flow", {"N": 5})
        engine.run()
        assert iid not in engine.navigator.instance_ids()  # evicted
        assert engine.process_list(state="finished") == []
        rows = engine.process_list(include_archived=True)
        assert [row["instance"] for row in rows] == [iid]
        assert rows[0]["archived"] is True
        assert rows[0]["state"] == "finished"
        assert (
            engine.process_list(
                include_archived=True, definition="Nope"
            )
            == []
        )

    def test_account_falls_back_to_the_archive(self, tmp_path):
        engine = self._store_engine(tmp_path)
        iid = engine.start_process("Flow", {"N": 5})
        engine.run()
        account = engine.account(iid, program_rates={"copy": 2.0})
        assert account["lines"]["copy"]["invocations"] == 1
        assert account["lines"]["copy"]["cost"] == 2.0
        with pytest.raises(NavigationError):
            engine.account("pi-does-not-exist")

    def test_navigator_indexes_follow_state_changes(self):
        engine = Engine()
        register_flow(engine)
        iid = engine.start_process("Flow", {"N": 1})
        navigator = engine.navigator
        assert iid in navigator.instance_ids(state="running")
        engine.suspend(iid)
        assert iid in navigator.instance_ids(state="suspended")
        assert iid not in navigator.instance_ids(state="running")
        engine.resume(iid)
        engine.run()
        assert iid in navigator.instance_ids(state="finished")
        assert navigator.instance_ids(
            state="finished", definition="Flow"
        ) == [iid]
        assert navigator.queue_depths() == {"ready": 0, "delayed": 0}


def _pool_factory(index, num_shards):
    engine = Engine()
    register_flow(engine)
    return engine


class TestMultiprocessPool:
    def test_batch_runs_across_workers(self):
        with MultiprocessShardPool(2, _pool_factory) as pool:
            assert pool.start_batch("Flow", 10, {"N": 1}) == 10
            pool.run()
            assert pool.finished_roots() == 10
            assert pool.instance_state(0, "pi-s00-000001") == "finished"

    def test_worker_errors_propagate(self):
        with MultiprocessShardPool(1, _pool_factory) as pool:
            with pytest.raises(WorkflowError, match="shard 0"):
                pool.start_batch("NoSuchProcess", 1)

    def test_rejects_empty_pool(self):
        with pytest.raises(WorkflowError):
            MultiprocessShardPool(0, _pool_factory)


class TestShardsMonitorView:
    def test_render_shards_from_snapshot_json(self, tmp_path, capsys):
        import json

        from repro.tools.monitor import main, render_shards

        sharded = ShardedEngine(2, seed=4)
        configure_sharded_math(sharded)
        for n in range(6):
            sharded.start_process("Front", {"N": n})
        sharded.run()
        snapshot = json.loads(json.dumps(sharded.snapshot()))
        lines = render_shards(snapshot)
        text = "\n".join(lines)
        assert "SHARDS (2) | scheduler seed 4" in text
        assert "shard-0" in text and "shard-1" in text
        assert "BUS (" in text and "dead-lettered 0" in text

        path = tmp_path / "shards.json"
        path.write_text(json.dumps(snapshot))
        assert main(["shards", str(path)]) == 0
        assert "SHARDS (2)" in capsys.readouterr().out


class TestPoolWorkerCleanup:
    """No worker process may survive its pool — whichever way the pool
    dies (clean close, hard terminate, or abandoned until the atexit
    sweep)."""

    @staticmethod
    def _assert_all_dead(pids):
        import os
        import time

        deadline = time.time() + 10
        while time.time() < deadline:
            alive = []
            for pid in pids:
                try:
                    os.kill(pid, 0)
                    alive.append(pid)
                except ProcessLookupError:
                    pass
            if not alive:
                return
            time.sleep(0.05)
        pytest.fail("worker processes survived teardown: %s" % alive)

    def test_close_reaps_every_worker_and_is_idempotent(self):
        pool = MultiprocessShardPool(2, _pool_factory)
        pids = [process.pid for process in pool._processes]
        assert pool.alive_workers() == 2
        pool.close()
        pool.close()  # second close is a no-op, not an error
        assert pool.alive_workers() == 0
        self._assert_all_dead(pids)

    def test_terminate_kills_without_the_close_handshake(self):
        pool = MultiprocessShardPool(2, _pool_factory)
        pids = [process.pid for process in pool._processes]
        pool.terminate()  # abnormal path: no protocol, just teardown
        pool.terminate()  # idempotent
        assert pool.alive_workers() == 0
        self._assert_all_dead(pids)
        # a close after terminate must not hang on dead pipes
        pool.close()

    def test_atexit_sweep_reaps_abandoned_pools(self):
        from repro.wfms import sharding

        pool = MultiprocessShardPool(2, _pool_factory)
        pids = [process.pid for process in pool._processes]
        # abandoned: nobody called close(); the registered sweep is
        # what stands between this and two stranded children
        assert pool in sharding._LIVE_POOLS
        sharding._terminate_live_pools()
        assert pool.alive_workers() == 0
        self._assert_all_dead(pids)
        # closed pools leave the registry, so the sweep won't touch
        # (or double-join) them
        with MultiprocessShardPool(1, _pool_factory) as tracked:
            assert tracked in sharding._LIVE_POOLS
        assert tracked not in sharding._LIVE_POOLS
