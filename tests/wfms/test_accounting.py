"""Tests for the accounting view (§3.3)."""

from repro.wfms import Activity, ActivityKind, Engine, ProcessDefinition


def build_engine():
    engine = Engine()
    engine.register_program("cheap", lambda ctx: 0)
    engine.register_program("pricey", lambda ctx: 0)
    flaky = {"n": 0}

    def sometimes(ctx):
        flaky["n"] += 1
        return 0 if flaky["n"] >= 3 else 1

    engine.register_program("flaky", sometimes)
    inner = ProcessDefinition("Inner")
    inner.add_activity(Activity("I", program="pricey"))
    d = ProcessDefinition("P")
    d.add_activity(Activity("A", program="cheap"))
    d.add_activity(
        Activity("Retry", program="flaky", exit_condition="RC = 0")
    )
    d.add_activity(Activity("Blk", kind=ActivityKind.BLOCK, block=inner))
    d.connect("A", "Retry")
    d.connect("Retry", "Blk", "RC = 0")
    engine.register_definition(d)
    return engine


class TestAccounting:
    def test_counts_invocations_including_retries(self):
        engine = build_engine()
        result = engine.run_process("P")
        account = engine.account(result.instance_id)
        assert account["lines"]["cheap"]["invocations"] == 1
        assert account["lines"]["flaky"]["invocations"] == 3
        assert account["lines"]["pricey"]["invocations"] == 1

    def test_rates_applied(self):
        engine = build_engine()
        result = engine.run_process("P")
        account = engine.account(
            result.instance_id,
            program_rates={"pricey": 10.0, "flaky": 2.0},
            default_rate=1.0,
        )
        assert account["lines"]["pricey"]["cost"] == 10.0
        assert account["lines"]["flaky"]["cost"] == 6.0
        assert account["total"] == 1.0 + 6.0 + 10.0

    def test_children_optional(self):
        engine = build_engine()
        result = engine.run_process("P")
        account = engine.account(
            result.instance_id, include_children=False
        )
        assert "pricey" not in account["lines"]

    def test_dead_activities_cost_nothing(self):
        engine = Engine()
        engine.register_program("fail", lambda ctx: 1)
        engine.register_program("never", lambda ctx: 0)
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="fail"))
        d.add_activity(Activity("B", program="never"))
        d.connect("A", "B", "RC = 0")
        engine.register_definition(d)
        result = engine.run_process("P")
        account = engine.account(result.instance_id)
        assert "never" not in account["lines"]
        assert account["total"] == 1.0
