"""Unit tests for the condition expression language."""

import pytest

from repro.errors import ConditionError
from repro.wfms.conditions import ALWAYS, NEVER, Condition, parse_condition


class TestParsing:
    def test_empty_and_none_mean_always(self):
        assert parse_condition(None) is ALWAYS
        assert parse_condition("") is ALWAYS
        assert parse_condition("   ") is ALWAYS

    def test_parse_returns_condition_unchanged(self):
        cond = parse_condition("RC = 0")
        assert parse_condition(cond) is cond

    def test_source_is_preserved_stripped(self):
        assert parse_condition("  RC = 0 ").source == "RC = 0"

    def test_equality_and_hash_follow_source(self):
        a, b = parse_condition("RC = 0"), parse_condition("RC = 0")
        assert a == b
        assert hash(a) == hash(b)
        assert parse_condition("RC = 1") != a

    @pytest.mark.parametrize(
        "text",
        [
            "RC = ",
            "(RC = 0",
            "RC == 0 0",
            "1 +",
            "RC = 0 AND",
            "'unterminated",
            "RC $ 1",
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(ConditionError):
            parse_condition(text)

    def test_variables_collects_all_paths(self):
        cond = parse_condition("State_1 = 1 AND Order.Total > 10 OR RC = 0")
        assert cond.variables() == {"State_1", "Order.Total", "RC"}


class TestEvaluation:
    def test_boolean_constants(self):
        assert ALWAYS.evaluate({})
        assert not NEVER.evaluate({})
        assert parse_condition("TRUE OR FALSE").evaluate({})
        assert not parse_condition("TRUE AND FALSE").evaluate({})

    @pytest.mark.parametrize(
        "text,env,expected",
        [
            ("RC = 0", {"RC": 0}, True),
            ("RC = 0", {"RC": 1}, False),
            ("RC <> 0", {"RC": 1}, True),
            ("RC < 5", {"RC": 4}, True),
            ("RC <= 4", {"RC": 4}, True),
            ("RC > 5", {"RC": 4}, False),
            ("RC >= 4", {"RC": 4}, True),
            ("Name = 'bob'", {"Name": "bob"}, True),
            ("Name <> 'bob'", {"Name": "ada"}, True),
            ("A + B = 3", {"A": 1, "B": 2}, True),
            ("A - B = -1", {"A": 1, "B": 2}, True),
            ("A * B + 1 = 7", {"A": 2, "B": 3}, True),
            ("A / B = 2", {"A": 4, "B": 2}, True),
            ("A % 2 = 1", {"A": 5}, True),
            ("-A = -3", {"A": 3}, True),
            ("NOT RC = 1", {"RC": 0}, True),
            ("(RC = 0 OR RC = 4) AND OK = 1", {"RC": 4, "OK": 1}, True),
        ],
    )
    def test_expressions(self, text, env, expected):
        assert parse_condition(text).evaluate(env) is expected

    def test_rc_alias_resolves_underscore_rc(self):
        # The paper writes ``RC``; containers store ``_RC``.
        assert parse_condition("RC = 7").evaluate({"_RC": 7})

    def test_explicit_rc_binding_wins_over_alias(self):
        assert parse_condition("RC = 1").evaluate({"RC": 1, "_RC": 0})

    def test_precedence_and_binds_tighter_than_or(self):
        cond = parse_condition("A = 1 OR B = 1 AND C = 1")
        assert cond.evaluate({"A": 1, "B": 0, "C": 0})
        assert not cond.evaluate({"A": 0, "B": 1, "C": 0})

    def test_comparison_binds_tighter_than_not(self):
        assert parse_condition("NOT A = 1").evaluate({"A": 0})

    def test_unknown_variable_raises(self):
        with pytest.raises(ConditionError, match="Missing"):
            parse_condition("Missing = 1").evaluate({})

    def test_mixed_type_comparison_raises(self):
        with pytest.raises(ConditionError):
            parse_condition("A = 'x'").evaluate({"A": 1})

    def test_division_by_zero_raises(self):
        with pytest.raises(ConditionError):
            parse_condition("1 / A = 1").evaluate({"A": 0})

    def test_string_concatenation(self):
        assert parse_condition("A + B = 'xy'").evaluate({"A": "x", "B": "y"})

    def test_numeric_result_is_truthiness(self):
        assert parse_condition("A").evaluate({"A": 3})
        assert not parse_condition("A").evaluate({"A": 0})
        assert parse_condition("Name").evaluate({"Name": "x"})
        assert not parse_condition("Name").evaluate({"Name": ""})

    def test_resolver_callable(self):
        cond = parse_condition("Depth = 2")
        assert cond.evaluate(lambda p: {"Depth": 2}.get(p))

    def test_keywords_case_insensitive(self):
        assert parse_condition("true and not false").evaluate({})
