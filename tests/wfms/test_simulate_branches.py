"""Tests for the simulator's data-dependent branch probabilities."""

import pytest

from repro.errors import DefinitionError
from repro.wfms import Activity, ProcessDefinition, StartCondition
from repro.wfms.simulate import ActivityProfile, simulate


def if_then_else():
    """start -> (then | else) with data-dependent routing."""
    d = ProcessDefinition("Ite")
    for name in ("start", "then", "otherwise"):
        d.add_activity(Activity(name, program="p"))
    d.connect("start", "then", "Flag = 1")
    d.connect("start", "otherwise", "Flag = 0")
    return d


class TestBranchProbabilities:
    def test_deterministic_routing(self):
        report = simulate(
            if_then_else(),
            runs=20,
            branch_probabilities={
                ("start", "then"): 1.0,
                ("start", "otherwise"): 0.0,
            },
        )
        # 'otherwise' is always dead-path eliminated.
        assert all(r.executed == 2 and r.dead == 1 for r in report.runs)

    def test_probabilistic_routing(self):
        report = simulate(
            if_then_else(),
            runs=400,
            seed=11,
            branch_probabilities={
                ("start", "then"): 0.7,
                ("start", "otherwise"): 0.3,
            },
        )
        then_taken = sum(1 for r in report.runs if r.dead == 1)
        # With independent sampling both or neither may fire; just
        # check the mix is not degenerate.
        assert 0 < then_taken < 400

    def test_default_probability_is_one(self):
        report = simulate(if_then_else(), runs=5)
        assert all(r.executed == 3 for r in report.runs)

    def test_bounds_checked(self):
        with pytest.raises(DefinitionError):
            simulate(
                if_then_else(),
                branch_probabilities={("start", "then"): 1.5},
            )

    def test_rc_gated_edges_ignore_branch_probability(self):
        d = ProcessDefinition("Gated")
        d.add_activity(Activity("a", program="p"))
        d.add_activity(Activity("b", program="p"))
        d.connect("a", "b", "RC = 0")
        report = simulate(
            d,
            {"a": ActivityProfile(success_probability=1.0)},
            runs=5,
            branch_probabilities={("a", "b"): 0.0},  # ignored: gated
        )
        assert all(r.executed == 2 for r in report.runs)

    def test_or_join_with_probabilistic_branches_terminates(self):
        d = ProcessDefinition("P")
        for name in ("s", "l", "r"):
            d.add_activity(Activity(name, program="p"))
        d.add_activity(
            Activity("j", program="p", start_condition=StartCondition.ANY)
        )
        d.connect("s", "l", "Flag = 1")
        d.connect("s", "r", "Flag = 0")
        d.connect("l", "j")
        d.connect("r", "j")
        report = simulate(
            d,
            runs=100,
            seed=2,
            branch_probabilities={
                ("s", "l"): 0.5,
                ("s", "r"): 0.5,
            },
        )
        # Every run terminates with each activity either run or dead.
        assert all(r.executed + r.dead == 4 for r in report.runs)
