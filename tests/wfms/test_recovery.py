"""Tests for persistence and forward recovery (§3.3).

"In most WFMSs the execution of a process is persistent in the sense
that forward recovery is always guaranteed ... the process execution is
resumed from the point where the failure occurred."
"""

import pytest

from repro.errors import NavigationError, RecoveryError
from repro.wfms import Activity, DataType, Engine, ProcessDefinition, VariableDecl
from repro.wfms.journal import Journal, ReplayCursor, load_journal
from repro.wfms.model import PROCESS_OUTPUT, ActivityKind


@pytest.fixture
def journal_path(tmp_path):
    return str(tmp_path / "journal.jsonl")


def build_engine(journal_path, calls):
    """Three-step sequential process with call counting."""
    engine = Engine(journal_path=journal_path)

    def make(name):
        def program(ctx):
            calls[name] = calls.get(name, 0) + 1
            ctx.set_output("X", calls[name])
            return 0

        return program

    for name in ("A", "B", "C"):
        engine.register_program("p%s" % name, make(name))
    d = ProcessDefinition("P")
    for name in ("A", "B", "C"):
        d.add_activity(
            Activity(
                name,
                program="p%s" % name,
                output_spec=[VariableDecl("X", DataType.LONG)],
            )
        )
    d.connect("A", "B")
    d.connect("B", "C")
    engine.register_definition(d)
    return engine


class TestJournal:
    def test_records_survive_reopen(self, journal_path):
        with Journal(journal_path) as journal:
            journal.append({"type": "process_finished", "instance": "pi-1"})
        assert load_journal(journal_path) == [
            {"type": "process_finished", "instance": "pi-1"}
        ]

    def test_illegal_record_type_rejected(self, journal_path):
        with Journal(journal_path) as journal:
            with pytest.raises(RecoveryError):
                journal.append({"type": "garbage"})

    def test_torn_tail_line_ignored(self, journal_path):
        with Journal(journal_path) as journal:
            journal.append({"type": "process_finished", "instance": "pi-1"})
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "activity_co')  # crash mid-append
        assert len(load_journal(journal_path)) == 1

    def test_memory_journal(self):
        journal = Journal()
        journal.append({"type": "process_finished", "instance": "x"})
        assert len(journal) == 1

    def test_cursor_duplicate_completion_rejected(self):
        rec = {
            "type": "activity_completed",
            "instance": "i",
            "activity": "A",
            "attempt": 1,
            "output": {},
        }
        with pytest.raises(RecoveryError):
            ReplayCursor([rec, rec])


class TestCrashRecovery:
    def test_crash_before_any_step(self, journal_path):
        calls = {}
        engine = build_engine(journal_path, calls)
        iid = engine.start_process("P")
        engine.crash()

        engine2 = build_engine(journal_path, calls)
        engine2.recover()
        assert engine2.instance_state(iid) == "running"
        engine2.run()
        assert engine2.instance_state(iid) == "finished"
        assert calls == {"A": 1, "B": 1, "C": 1}

    @pytest.mark.parametrize("steps_before_crash", [1, 2])
    def test_crash_mid_process_resumes_without_rerunning(
        self, journal_path, steps_before_crash
    ):
        calls = {}
        engine = build_engine(journal_path, calls)
        iid = engine.start_process("P")
        for _ in range(steps_before_crash):
            engine.step()
        engine.crash()

        engine2 = build_engine(journal_path, calls)
        replayed = engine2.recover()
        assert replayed == steps_before_crash
        engine2.run()
        assert engine2.instance_state(iid) == "finished"
        # Every program ran exactly once in total: completed work was
        # *not* re-executed, pending work ran after recovery.
        assert calls == {"A": 1, "B": 1, "C": 1}

    def test_crash_after_finish_recovers_finished(self, journal_path):
        calls = {}
        engine = build_engine(journal_path, calls)
        result = engine.run_process("P")
        engine.crash()

        engine2 = build_engine(journal_path, calls)
        engine2.recover()
        assert engine2.instance_state(result.instance_id) == "finished"
        assert calls == {"A": 1, "B": 1, "C": 1}

    def test_crashed_engine_refuses_work(self, journal_path):
        calls = {}
        engine = build_engine(journal_path, calls)
        engine.start_process("P")
        engine.crash()
        with pytest.raises(NavigationError):
            engine.run()
        with pytest.raises(NavigationError):
            engine.start_process("P")

    def test_crashed_engine_refuses_clock_advance(self, journal_path):
        # Regression: a crashed engine must not keep advancing its
        # clock (and raising deadline notifications) as if alive.
        calls = {}
        engine = build_engine(journal_path, calls)
        engine.start_process("P")
        engine.advance_clock(1.0)
        engine.crash()
        with pytest.raises(NavigationError):
            engine.advance_clock(1.0)
        assert engine.clock == 1.0

    def test_recovered_outputs_match_pre_crash(self, journal_path):
        calls = {}
        engine = build_engine(journal_path, calls)
        iid = engine.start_process("P")
        engine.step()
        pre = engine.navigator.instance(iid).activity("A").output.to_dict()
        engine.crash()

        engine2 = build_engine(journal_path, calls)
        engine2.recover()
        post = engine2.navigator.instance(iid).activity("A").output.to_dict()
        assert post == pre

    def test_recovery_without_journal_rejected(self):
        engine = Engine()
        with pytest.raises(NavigationError):
            engine.recover()

    def test_recovery_with_wrong_definitions_detected(self, journal_path):
        calls = {}
        engine = build_engine(journal_path, calls)
        engine.run_process("P")
        engine.crash()

        # Re-register a *different* P whose activity names don't match.
        engine2 = Engine(journal_path=journal_path)
        engine2.register_program("px", lambda ctx: 0)
        d = ProcessDefinition("P")
        d.add_activity(Activity("Other", program="px"))
        engine2.register_definition(d)
        with pytest.raises(RecoveryError):
            engine2.recover()

    def test_multiple_instances_recovered(self, journal_path):
        calls = {}
        engine = build_engine(journal_path, calls)
        i1 = engine.start_process("P")
        i2 = engine.start_process("P")
        engine.run()
        i3 = engine.start_process("P")
        engine.step()
        engine.crash()

        engine2 = build_engine(journal_path, calls)
        engine2.recover()
        assert engine2.instance_state(i1) == "finished"
        assert engine2.instance_state(i2) == "finished"
        assert engine2.instance_state(i3) == "running"
        engine2.run()
        assert engine2.instance_state(i3) == "finished"

    def test_new_instances_after_recovery_get_fresh_ids(self, journal_path):
        calls = {}
        engine = build_engine(journal_path, calls)
        i1 = engine.start_process("P")
        engine.run()
        engine.crash()

        engine2 = build_engine(journal_path, calls)
        engine2.recover()
        i2 = engine2.start_process("P")
        assert i2 != i1
        engine2.run()
        assert engine2.instance_state(i2) == "finished"

    def test_suspended_instance_recovers_suspended(self, journal_path):
        calls = {}
        engine = build_engine(journal_path, calls)
        iid = engine.start_process("P")
        engine.step()
        engine.suspend(iid)
        engine.crash()

        engine2 = build_engine(journal_path, calls)
        engine2.recover()
        assert engine2.instance_state(iid) == "suspended"
        engine2.resume(iid)
        engine2.run()
        assert engine2.instance_state(iid) == "finished"
        assert calls == {"A": 1, "B": 1, "C": 1}


class TestCrashRecoveryWithBlocks:
    def test_block_child_recovered(self, journal_path):
        calls = {"inner": 0}

        def build(path):
            engine = Engine(journal_path=path)

            def inner(ctx):
                calls["inner"] += 1
                return 0

            engine.register_program("inner", inner)
            engine.register_program("after", lambda ctx: 0)
            blk = ProcessDefinition("Blk")
            blk.add_activity(Activity("I1", program="inner"))
            blk.add_activity(Activity("I2", program="inner"))
            blk.connect("I1", "I2")
            outer = ProcessDefinition("Outer")
            outer.add_activity(
                Activity("B", kind=ActivityKind.BLOCK, block=blk)
            )
            outer.add_activity(Activity("After", program="after"))
            outer.connect("B", "After")
            engine.register_definition(outer)
            return engine

        engine = build(journal_path)
        iid = engine.start_process("Outer")
        engine.step()  # executes the block activity (starts the child)
        engine.step()  # runs I1 inside the block
        assert calls["inner"] == 1
        engine.crash()

        engine2 = build(journal_path)
        engine2.recover()
        engine2.run()
        assert engine2.instance_state(iid) == "finished"
        assert calls["inner"] == 2  # I2 ran post-recovery; I1 not re-run

    def test_rescheduled_attempts_replay_exactly(self, journal_path):
        # An activity that looped twice before the crash must replay
        # both attempts and keep the final output.
        state = {"n": 0}

        def build(path):
            engine = Engine(journal_path=path)

            def flaky(ctx):
                state["n"] += 1
                return 0 if state["n"] >= 3 else 1

            engine.register_program("flaky", flaky)
            engine.register_program("after", lambda ctx: 0)
            d = ProcessDefinition("P")
            d.add_activity(
                Activity("T", program="flaky", exit_condition="RC = 0")
            )
            d.add_activity(Activity("After", program="after"))
            d.connect("T", "After")
            engine.register_definition(d)
            return engine

        engine = build(journal_path)
        iid = engine.start_process("P")
        engine.step()  # attempt 1, rc 1
        engine.step()  # attempt 2, rc 1
        assert state["n"] == 2
        engine.crash()

        engine2 = build(journal_path)
        engine2.recover()
        engine2.run()
        assert engine2.instance_state(iid) == "finished"
        assert state["n"] == 3  # attempts 1-2 replayed, attempt 3 live
