"""Trace propagation across distributed request/reply.

The invariant under test: one distributed request/reply chain is ONE
trace spanning both engines — including across a server crash, journal
replay, and message redelivery (the redelivered request must not start
a second trace).
"""

from repro.wfms.distributed import run_cluster
from repro.wfms.messaging import MessageBus
from repro.workloads.distributed_demo import (
    configure_requester,
    configure_worker,
    make_requester,
    make_worker,
)


def front_trace_id(front, instance_id):
    """Trace id of the requester's 'process Front' span(s).

    A crash/replay cycle leaves one pre-crash span and one replayed
    span for the same instance; they must agree on the trace id.
    """
    traces = {
        s["trace_id"]
        for s in front.obs.tracer.export()
        if s["name"] == "process Front"
        and s["attributes"].get("instance_id") == instance_id
    }
    assert len(traces) == 1
    return traces.pop()


class TestSingleDistributedTrace:
    def test_request_reply_is_one_trace(self):
        bus = MessageBus()
        worker = make_worker(bus, observability=True)
        front = make_requester(bus, observability=True)
        iid = front.engine.start_process("Front", {"N": 21})
        run_cluster([front, worker], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 43

        trace = front_trace_id(front, iid)
        worker_spans = worker.obs.tracer.export()
        # Every span the worker produced belongs to the requester's
        # trace: the worker never opened a trace of its own.
        assert worker_spans
        assert {s["trace_id"] for s in worker_spans} == {trace}

    def test_served_instance_parents_at_the_calling_activity(self):
        bus = MessageBus()
        worker = make_worker(bus, observability=True)
        front = make_requester(bus, observability=True)
        iid = front.engine.start_process("Front", {"N": 5})
        run_cluster([front, worker], watch=[(front, iid)])

        [served] = [
            s
            for s in worker.obs.tracer.export()
            if s["name"] == "process Double"
        ]
        # The request headers carried the CallDouble attempt span's
        # context, so the served instance hangs under that attempt.
        call_span_ids = {
            s["span_id"]
            for s in front.obs.tracer.export()
            if s["name"] == "activity CallDouble"
        }
        assert served["parent_id"] in call_span_ids
        assert served["trace_id"] == front_trace_id(front, iid)

    def test_distinct_requests_are_distinct_traces(self):
        bus = MessageBus()
        worker = make_worker(bus, observability=True)
        front = make_requester(bus, observability=True)
        first = front.engine.start_process("Front", {"N": 1})
        second = front.engine.start_process("Front", {"N": 2})
        run_cluster(
            [front, worker], watch=[(front, first), (front, second)]
        )

        traces = {front_trace_id(front, first), front_trace_id(front, second)}
        assert len(traces) == 2
        served_traces = {
            s["trace_id"]
            for s in worker.obs.tracer.export()
            if s["name"] == "process Double"
        }
        assert served_traces == traces


class TestCrashReplayTrace:
    def test_replayed_server_rejoins_the_trace(self, tmp_path):
        """Server crash after journaling the request, before acking it.

        The journal replays the served instance (rejoining the
        requester's trace from the journaled context) and the bus
        redelivers the request, which must find the existing
        request-keyed instance instead of starting a second trace.
        """
        bus = MessageBus()
        worker = make_worker(
            bus,
            journal_path=str(tmp_path / "worker.journal"),
            observability=True,
        )
        front = make_requester(bus, observability=True)
        iid = front.engine.start_process("Front", {"N": 8})
        front.engine.step()  # poll attempt 1: request sent

        # The worker receives and journals the request but crashes
        # before acking: the message stays in flight.
        message = bus.receive_with_headers("node:worker")
        assert message is not None
        __, body, headers = message
        worker._handle_request(body, headers)
        pre_crash = {
            s["trace_id"]
            for s in worker.obs.tracer.export()
            if s["name"] == "process Double"
        }
        worker.crash()  # recover_in_flight requeues the request
        worker.rebuild(configure_worker)

        run_cluster([front, worker], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 17

        # Pre-crash span, replayed span, and the requester's root all
        # agree on a single trace id: no second trace was started.
        served_traces = {
            s["trace_id"]
            for s in worker.obs.tracer.export()
            if s["name"] == "process Double"
        }
        assert served_traces == pre_crash
        assert served_traces == {front_trace_id(front, iid)}
        # And the redelivered request did not start a second instance.
        assert (
            len(
                [
                    i
                    for i in worker.engine.navigator.instances()
                    if i.instance_id.startswith("req/")
                ]
            )
            == 1
        )

    def test_requester_crash_resends_within_the_same_trace(self, tmp_path):
        """Requester crash: the replayed poller re-sends the request.

        The server deduplicates on the request id, so the reply still
        belongs to one served instance — and that instance's trace is
        the requester's (pre-crash) trace, preserved by the journal.
        """
        bus = MessageBus()
        worker = make_worker(bus, observability=True)
        front = make_requester(
            bus,
            journal_path=str(tmp_path / "front.journal"),
            observability=True,
        )
        iid = front.engine.start_process("Front", {"N": 7})
        original_trace = front_trace_id(front, iid)
        front.engine.step()  # request sent
        front.crash()
        front.rebuild(configure_requester)
        run_cluster([front, worker], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 15

        assert front_trace_id(front, iid) == original_trace
        served_traces = {
            s["trace_id"]
            for s in worker.obs.tracer.export()
            if s["name"] == "process Double"
        }
        assert served_traces == {original_trace}


class TestDisabledNodesStayQuiet:
    def test_no_headers_and_no_spans_when_off(self):
        bus = MessageBus()
        worker = make_worker(bus)
        front = make_requester(bus)
        iid = front.engine.start_process("Front", {"N": 3})
        front.engine.step()
        # The request is sitting in the worker's inbox with no trace
        # headers attached.
        message = bus.receive_with_headers("node:worker")
        assert message is not None
        msg_id, __, headers = message
        assert headers == {}
        bus.nack("node:worker", msg_id)  # put it back
        run_cluster([front, worker], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 7
        assert front.obs.tracer.export() == []
        assert worker.obs.tracer.export() == []


class TestMessageBusHeaders:
    def test_headers_round_trip_and_plain_receive(self):
        bus = MessageBus()
        bus.send("q", {"x": 1}, headers={"trace_id": "t1-000001"})
        msg_id, body, headers = bus.receive_with_headers("q")
        assert body == {"x": 1}
        assert headers == {"trace_id": "t1-000001"}
        bus.nack("q", msg_id)
        # The headers survive redelivery; receive() hides them.
        msg_id, body = bus.receive("q")
        assert body == {"x": 1}
        bus.ack("q", msg_id)

    def test_stats_track_queue_activity(self):
        bus = MessageBus()
        bus.send("q", {"n": 1})
        bus.send("q", {"n": 2})
        msg_id, __ = bus.receive("q")
        bus.nack("q", msg_id)
        msg_id, __ = bus.receive("q")
        bus.ack("q", msg_id)
        stats = bus.stats("q")
        assert stats["sent"] == 2
        assert stats["delivered"] == 2
        assert stats["acked"] == 1
        assert stats["nacked"] == 1
        assert stats["redelivered"] >= 1
