"""Unit tests for run-time data containers."""

import pytest

from repro.errors import ContainerError
from repro.wfms.containers import Container
from repro.wfms.datatypes import (
    DataType,
    StructureType,
    TypeRegistry,
    VariableDecl,
)


@pytest.fixture
def registry():
    reg = TypeRegistry()
    reg.register(
        StructureType(
            "Address",
            [VariableDecl("City", DataType.STRING), VariableDecl("Zip", DataType.LONG)],
        )
    )
    reg.register(
        StructureType(
            "Customer",
            [VariableDecl("Name", DataType.STRING), VariableDecl("Home", "Address")],
        )
    )
    return reg


@pytest.fixture
def container(registry):
    spec = [
        VariableDecl("Total", DataType.LONG),
        VariableDecl("Rate", DataType.FLOAT),
        VariableDecl("Who", "Customer"),
        VariableDecl("Items", DataType.STRING, array_size=3),
    ]
    return Container(spec, registry)


class TestScalars:
    def test_defaults(self, container):
        assert container.get("Total") == 0
        assert container.get("Rate") == 0.0
        assert container.get("Items") == ["", "", ""]

    def test_set_get_roundtrip(self, container):
        container.set("Total", 42)
        assert container.get("Total") == 42

    def test_type_checked_writes(self, container):
        with pytest.raises(ContainerError):
            container.set("Total", "not a number")

    def test_unknown_member(self, container):
        with pytest.raises(ContainerError):
            container.get("Nope")
        with pytest.raises(ContainerError):
            container.set("Nope", 1)

    def test_has(self, container):
        assert container.has("Total")
        assert not container.has("Nope")

    def test_empty_path_rejected(self, container):
        with pytest.raises(ContainerError):
            container.get("")


class TestStructures:
    def test_dotted_read_write(self, container):
        container.set("Who.Name", "Ada")
        container.set("Who.Home.City", "San Jose")
        assert container.get("Who.Name") == "Ada"
        assert container.get("Who.Home.City") == "San Jose"
        assert container.get("Who.Home.Zip") == 0

    def test_whole_structure_write(self, container):
        container.set(
            "Who", {"Name": "Bob", "Home": {"City": "SF", "Zip": 94110}}
        )
        assert container.get("Who.Home.Zip") == 94110

    def test_partial_structure_write_keeps_defaults(self, container):
        container.set("Who", {"Name": "Bob"})
        assert container.get("Who.Home.City") == ""

    def test_unknown_structure_member_rejected(self, container):
        with pytest.raises(ContainerError):
            container.set("Who.Age", 9)
        with pytest.raises(ContainerError):
            container.get("Who.Age")

    def test_structure_write_type_checked(self, container):
        with pytest.raises(ContainerError):
            container.set("Who.Home.Zip", "not-a-zip")

    def test_get_returns_copies(self, container):
        value = container.get("Who")
        value["Name"] = "mutated"
        assert container.get("Who.Name") == ""

    def test_descend_into_scalar_rejected(self, container):
        with pytest.raises(ContainerError):
            container.get("Total.x")


class TestArrays:
    def test_indexed_access(self, container):
        container.set("Items.1", "book")
        assert container.get("Items.1") == "book"
        assert container.get("Items") == ["", "book", ""]

    def test_whole_array_write_length_checked(self, container):
        with pytest.raises(ContainerError):
            container.set("Items", ["a", "b"])
        container.set("Items", ["a", "b", "c"])
        assert container.get("Items.2") == "c"

    def test_out_of_bounds(self, container):
        with pytest.raises(ContainerError):
            container.get("Items.5")

    def test_non_numeric_index(self, container):
        with pytest.raises(ContainerError):
            container.get("Items.x")


class TestReturnCode:
    def test_output_containers_carry_rc(self):
        out = Container([], output=True)
        assert out.return_code == 0
        out.return_code = 4
        assert out.get("_RC") == 4

    def test_input_containers_do_not(self):
        inp = Container([])
        assert not inp.has("_RC")
        with pytest.raises(ContainerError):
            inp.return_code = 1

    def test_duplicate_member_rejected(self):
        with pytest.raises(ContainerError):
            Container([VariableDecl("a"), VariableDecl("a")])


class TestBulkOperations:
    def test_update_from_applies_mappings(self, registry):
        src = Container([VariableDecl("X", DataType.LONG)], registry, output=True)
        src.set("X", 9)
        src.return_code = 1
        dst = Container(
            [VariableDecl("Y", DataType.LONG), VariableDecl("SrcRC", DataType.LONG)],
            registry,
        )
        dst.update_from(src, [("X", "Y"), ("_RC", "SrcRC")])
        assert dst.get("Y") == 9
        assert dst.get("SrcRC") == 1

    def test_to_dict_load_dict_roundtrip(self, container):
        container.set("Total", 5)
        container.set("Who.Name", "Ada")
        snapshot = container.to_dict()
        other_spec = [
            VariableDecl("Total", DataType.LONG),
            VariableDecl("Rate", DataType.FLOAT),
            VariableDecl("Who", "Customer"),
            VariableDecl("Items", DataType.STRING, array_size=3),
        ]
        reg = TypeRegistry()
        reg.register(
            StructureType(
                "Address",
                [VariableDecl("City", DataType.STRING), VariableDecl("Zip", DataType.LONG)],
            )
        )
        reg.register(
            StructureType(
                "Customer",
                [VariableDecl("Name", DataType.STRING), VariableDecl("Home", "Address")],
            )
        )
        clone = Container(other_spec, reg)
        clone.load_dict(snapshot)
        assert clone.get("Total") == 5
        assert clone.get("Who.Name") == "Ada"

    def test_load_dict_ignores_unknown_members(self, container):
        container.load_dict({"Ghost": 1, "Total": 3})
        assert container.get("Total") == 3

    def test_copy_is_independent(self, container):
        container.set("Total", 1)
        clone = container.copy()
        clone.set("Total", 2)
        assert container.get("Total") == 1

    def test_resolver_returns_none_for_unknown(self, container):
        assert container.resolver("Nope") is None
        assert container.resolver("Total") == 0
