"""Crash and recovery semantics of cross-activity transaction scopes.

A scope open at crash time is *torn*: recovery must roll its
transaction back (no partial scope writes survive) and the replayed
workflow must deterministically route through its rollback path.
"""

import pytest

from repro.tx import ScopeManager, SimDatabase
from repro.tx.scope import IsolationLevel
from repro.wfms import Activity, DataType, Engine, ProcessDefinition, VariableDecl
from repro.core.scoped import (
    SCOPE_SERVICE,
    install_scope_service,
    make_begin_program,
    register_scoped_saga_programs,
    translate_scoped_saga,
    workflow_scoped_outcome,
)
from repro.core.sagas import SagaSpec, SagaStep


SPEC = SagaSpec("trip", [SagaStep("t1"), SagaStep("t2"), SagaStep("t3")])


def scope_write(key, value):
    def body(scope):
        scope.write(key, value)

    return body


def build_engine(journal_path, db, manager):
    """Fresh engine over the surviving database + scope manager."""
    translation = translate_scoped_saga(SPEC)
    engine = Engine(journal_path=journal_path)
    engine.register_definition(translation.process)
    bodies = {s.name: scope_write(s.name, 1) for s in SPEC.steps}
    register_scoped_saga_programs(engine, translation, bodies, manager)
    return engine, translation


@pytest.fixture
def journal_path(tmp_path):
    return str(tmp_path / "journal.jsonl")


class TestMidScopeCrash:
    def test_crash_mid_scope_leaves_no_partial_writes(self, journal_path):
        db = SimDatabase()
        manager = ScopeManager(db)
        engine, translation = build_engine(journal_path, db, manager)
        iid = engine.start_process(translation.process.name)
        # Execute Begin and t1 only: the scope is open, t1's write
        # uncommitted.
        assert engine.navigator.step()
        assert engine.navigator.step()
        assert db.get("t1") == 1  # dirty, inside the open scope
        engine.crash()

        engine2, translation2 = build_engine(journal_path, db, manager)
        engine2.recover()
        # The torn scope was rolled back before replay resumed.
        assert db.get("t1") is None
        assert db.active_transactions() == []
        engine2.run()
        outcome = workflow_scoped_outcome(engine2, translation2, iid)
        assert outcome.rolled_back and not outcome.committed
        assert db.snapshot() == {}

    def test_crash_after_commit_keeps_writes(self, journal_path):
        db = SimDatabase()
        manager = ScopeManager(db)
        engine, translation = build_engine(journal_path, db, manager)
        iid = engine.start_process(translation.process.name)
        engine.run()
        assert db.snapshot() == {"t1": 1, "t2": 1, "t3": 1}
        engine.crash()

        engine2, translation2 = build_engine(journal_path, db, manager)
        engine2.recover()
        engine2.run()
        outcome = workflow_scoped_outcome(engine2, translation2, iid)
        assert outcome.committed
        assert db.snapshot() == {"t1": 1, "t2": 1, "t3": 1}

    def test_double_crash_converges(self, journal_path):
        db = SimDatabase()
        manager = ScopeManager(db)
        engine, translation = build_engine(journal_path, db, manager)
        iid = engine.start_process(translation.process.name)
        assert engine.navigator.step()
        engine.crash()
        engine2, __ = build_engine(journal_path, db, manager)
        engine2.recover()
        assert engine2.navigator.step()
        engine2.crash()
        engine3, translation3 = build_engine(journal_path, db, manager)
        engine3.recover()
        engine3.run()
        outcome = workflow_scoped_outcome(engine3, translation3, iid)
        # Whatever path it took, nothing is torn and the outcome is
        # one of the two legal ones.
        assert outcome.committed != outcome.rolled_back
        assert db.active_transactions() == []


class TestRootFinishSafetyNet:
    def test_leaked_scope_rolled_back_at_root_finish(self):
        """A process that begins a scope and never ends it must not
        leak the transaction past the root's termination."""
        db = SimDatabase()
        manager = ScopeManager(db)
        engine = Engine()
        install_scope_service(engine, manager)
        engine.register_program(
            "leaky_begin",
            make_begin_program(IsolationLevel.SERIALIZABLE, None),
            replace=True,
        )

        def leaky_write(ctx):
            scope = manager.get(ctx.input.get("Scope"))
            scope.write("k", 1)
            return 0

        engine.register_program("leaky_write", leaky_write, replace=True)
        defn = ProcessDefinition("Leaky")
        defn.add_activity(
            Activity(
                "Begin",
                program="leaky_begin",
                output_spec=[VariableDecl("Scope", DataType.STRING)],
            )
        )
        defn.add_activity(
            Activity(
                "Work",
                program="leaky_write",
                input_spec=[VariableDecl("Scope", DataType.STRING)],
            )
        )
        defn.connect("Begin", "Work")
        defn.map_data("Begin", "Work", [("Scope", "Scope")])
        engine.register_definition(defn)
        result = engine.run_process("Leaky")
        assert result.finished
        # The safety net rolled the abandoned scope back.
        assert db.get("k") is None
        assert db.active_transactions() == []
        assert list(manager.open_scopes()) == []


class TestServiceWiring:
    def test_recover_without_scope_service_is_fine(self, journal_path):
        engine = Engine(journal_path=journal_path)
        engine.register_program("p", lambda ctx: 0)
        defn = ProcessDefinition("P")
        defn.add_activity(Activity("A", program="p"))
        engine.register_definition(defn)
        engine.start_process("P")
        engine.crash()
        engine2 = Engine(journal_path=journal_path)
        engine2.register_program("p", lambda ctx: 0)
        engine2.register_definition(defn)
        engine2.recover()  # no tx_scopes service: no-op, no error
        engine2.run()

    def test_install_registers_service_and_programs(self):
        db = SimDatabase()
        manager = ScopeManager(db)
        engine = Engine()
        install_scope_service(engine, manager)
        assert engine.services[SCOPE_SERVICE] is manager
