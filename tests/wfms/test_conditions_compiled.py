"""Property test: closure-compiled conditions ≡ the tree-walk interpreter.

Randomized expressions over numbers, strings, ``AND``/``OR``/``NOT``,
comparisons, arithmetic, the ``RC``/``_RC`` alias and missing members
must evaluate identically through ``Condition.evaluate`` (interpreter)
and ``Condition.compiled`` (closures) — same value or the same
``ConditionError``.
"""

import random

import pytest

from repro.errors import ConditionError
from repro.wfms.conditions import ALWAYS, NEVER, parse_condition

#: Identifier pool: some resolvable, some intermittently missing, plus
#: the return-code alias pair.
IDENTIFIERS = ["A", "B", "Order.Total", "State_2", "RC", "_RC", "Missing"]


def random_expression(rng: random.Random, depth: int = 0) -> str:
    """A random (fully parenthesized) condition source string."""
    if depth >= 3 or rng.random() < 0.3:
        choice = rng.randrange(5)
        if choice == 0:
            return str(rng.randint(-5, 20))
        if choice == 1:
            return "%.2f" % (rng.uniform(-3, 3))
        if choice == 2:
            return rng.choice(["'x'", "'workflow'", '"y"', "''"])
        if choice == 3:
            return rng.choice(["TRUE", "FALSE"])
        return rng.choice(IDENTIFIERS)
    op = rng.randrange(6)
    left = random_expression(rng, depth + 1)
    right = random_expression(rng, depth + 1)
    if op == 0:
        return "(%s AND %s)" % (left, right)
    if op == 1:
        return "(%s OR %s)" % (left, right)
    if op == 2:
        return "(NOT %s)" % left
    if op == 3:
        comparator = rng.choice(["=", "<>", "<", "<=", ">", ">="])
        return "(%s %s %s)" % (left, comparator, right)
    if op == 4:
        arith = rng.choice(["+", "-", "*", "/", "%"])
        return "(%s %s %s)" % (left, arith, right)
    return "(-%s)" % left


def random_resolver(rng: random.Random) -> dict:
    mapping = {}
    if rng.random() < 0.9:
        mapping["A"] = rng.choice([0, 1, 7, -2, 3.5, "text", ""])
    if rng.random() < 0.9:
        mapping["B"] = rng.choice([0, 2, "b", 1.25, True])
    if rng.random() < 0.8:
        mapping["Order.Total"] = rng.choice([0, 100, 99.5])
    if rng.random() < 0.8:
        mapping["State_2"] = rng.choice([0, 1, 2])
    if rng.random() < 0.8:
        mapping["_RC"] = rng.choice([0, 1, 4])
    # "RC" itself is only rarely bound directly, so the _RC alias path
    # gets exercised; "Missing" is never bound.
    if rng.random() < 0.2:
        mapping["RC"] = rng.choice([0, 1])
    return mapping


def outcome(evaluate, mapping):
    try:
        return ("value", evaluate(mapping))
    except ConditionError as exc:
        return ("error", str(exc))


class TestCompiledEquivalence:
    def test_randomized_expressions(self):
        rng = random.Random(20260806)
        checked = errors = 0
        for __ in range(400):
            source = random_expression(rng)
            try:
                condition = parse_condition(source)
            except ConditionError:
                continue  # not a concern of this test
            compiled = condition.compiled
            for __ in range(4):
                mapping = random_resolver(rng)
                interpreted = outcome(condition.evaluate, dict(mapping))
                closured = outcome(compiled, dict(mapping))
                assert interpreted == closured, (
                    "diverged on %r with %r: %r vs %r"
                    % (source, mapping, interpreted, closured)
                )
                checked += 1
                if interpreted[0] == "error":
                    errors += 1
        assert checked > 1000
        # The generator must actually exercise the error paths too.
        assert 0 < errors < checked

    def test_rc_alias_resolves_through_underscore_member(self):
        condition = parse_condition("RC = 0")
        assert condition.evaluate({"_RC": 0})
        assert condition.compiled({"_RC": 0})
        assert not condition.compiled({"_RC": 3})
        # A directly-bound RC wins over the alias, both paths.
        assert not condition.evaluate({"RC": 1, "_RC": 0})
        assert not condition.compiled({"RC": 1, "_RC": 0})

    def test_missing_member_errors_match(self):
        condition = parse_condition("Ghost = 1")
        interpreted = outcome(condition.evaluate, {})
        closured = outcome(condition.compiled, {})
        assert interpreted == closured
        assert interpreted[0] == "error"
        assert "Ghost" in interpreted[1]

    def test_compiled_is_cached(self):
        condition = parse_condition("A = 1")
        assert condition.compiled is condition.compiled

    def test_constants(self):
        assert ALWAYS.is_always()
        assert ALWAYS.compiled({}) is True
        assert not NEVER.is_always()
        assert NEVER.compiled({}) is False
        assert not parse_condition("1 = 1").is_always()

    def test_callable_resolver_supported(self):
        condition = parse_condition("State_2 > 1 AND A = 'go'")
        values = {"State_2": 2, "A": "go"}
        assert condition.compiled(values.get)
        assert condition.compiled(values) == condition.evaluate(values)
