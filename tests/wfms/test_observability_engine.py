"""Engine-level observability: metrics, spans, hooks, and the
zero-overhead-when-off contract (disabled engines expose null
components and refuse hook subscriptions)."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DISABLED,
    ActivityCompleted,
    EngineCrashed,
    EngineRecovered,
    JournalSynced,
    NavigatorDispatched,
    Observability,
    ProcessFinished,
    WorklistTransition,
    resolve_observability,
)
from repro.obs.export import (
    engine_snapshot,
    span_tree_lines,
    to_prometheus_text,
    write_snapshot,
)
from repro.wfms import (
    Activity,
    DataType,
    Engine,
    ProcessDefinition,
    VariableDecl,
)
from repro.wfms.model import ActivityKind


def sequential_engine(observability=True, journal_path=None, **engine_kwargs):
    engine = Engine(
        journal_path=journal_path, observability=observability, **engine_kwargs
    )
    engine.register_program("ok", lambda ctx: 0, "no-op")
    definition = ProcessDefinition("Seq")
    definition.add_activity(Activity("A", program="ok"))
    definition.add_activity(Activity("B", program="ok"))
    definition.connect("A", "B")
    engine.register_definition(definition)
    return engine


class TestResolveObservability:
    def test_none_and_false_are_the_disabled_singleton(self):
        assert resolve_observability(None) is DISABLED
        assert resolve_observability(False) is DISABLED
        assert not DISABLED.enabled

    def test_true_builds_a_fresh_bundle(self):
        obs = resolve_observability(True)
        assert obs.enabled
        assert obs is not resolve_observability(True)

    def test_instance_passthrough(self):
        obs = Observability()
        assert resolve_observability(obs) is obs

    def test_bad_value_rejected(self):
        with pytest.raises(TypeError):
            resolve_observability("yes")


class TestDisabledEngine:
    def test_default_engine_is_disabled(self):
        engine = Engine()
        assert engine.obs is DISABLED
        assert not engine.obs.enabled

    def test_subscribe_on_disabled_engine_raises(self):
        engine = Engine()
        with pytest.raises(ObservabilityError):
            engine.obs.hooks.subscribe(NavigatorDispatched, lambda e: None)

    def test_disabled_run_collects_nothing(self):
        engine = sequential_engine(observability=None)
        engine.run_process("Seq")
        assert engine.obs.metrics.collect() == []
        assert engine.obs.tracer.export() == []


class TestEngineMetrics:
    def test_process_and_activity_counters(self):
        engine = sequential_engine()
        engine.run_process("Seq")
        metrics = engine.obs.metrics
        started = metrics.get("wfms_processes_started_total")
        assert started.labels("Seq").value == 1
        finished = metrics.get("wfms_processes_finished_total")
        assert finished.labels("Seq").value == 1
        completions = metrics.get("wfms_activity_completions_total")
        assert completions.labels("terminated").value == 2
        assert metrics.get("wfms_instances_running").value == 0
        hist = metrics.get("wfms_activity_seconds")
        assert hist.count == 2

    def test_running_gauge_tracks_open_instances(self):
        engine = sequential_engine()
        engine.start_process("Seq")
        gauge = engine.obs.metrics.get("wfms_instances_running")
        assert gauge.value == 1
        engine.run()
        assert gauge.value == 0


class TestEngineSpans:
    def test_activity_spans_parented_to_instance_span(self):
        engine = sequential_engine()
        result = engine.run_process("Seq")
        tracer = engine.obs.tracer
        [root] = tracer.spans(name="process Seq")
        assert root.finished
        assert root.attributes["instance_id"] == result.instance_id
        for activity in ("A", "B"):
            [span] = tracer.spans(name="activity %s" % activity)
            assert span.parent_id == root.span_id
            assert span.trace_id == root.trace_id
        assert tracer.open_spans() == []

    def test_block_child_instance_joins_parent_trace(self):
        engine = Engine(observability=True)
        engine.register_program("ok", lambda ctx: 0)
        child = ProcessDefinition("Child")
        child.add_activity(Activity("Inner", program="ok"))
        engine.register_definition(child)
        parent = ProcessDefinition("Parent")
        parent.add_activity(
            Activity("Call", kind=ActivityKind.PROCESS, subprocess="Child")
        )
        engine.register_definition(parent)
        engine.run_process("Parent")
        tracer = engine.obs.tracer
        [parent_span] = tracer.spans(name="process Parent")
        [call_span] = tracer.spans(name="activity Call")
        [child_span] = tracer.spans(name="process Child")
        [inner_span] = tracer.spans(name="activity Inner")
        # one trace, linked parent -> Call -> child instance -> Inner
        assert call_span.parent_id == parent_span.span_id
        assert child_span.parent_id == call_span.span_id
        assert inner_span.parent_id == child_span.span_id
        assert (
            parent_span.trace_id
            == call_span.trace_id
            == child_span.trace_id
            == inner_span.trace_id
        )

    def test_each_attempt_gets_its_own_span(self):
        engine = Engine(observability=True)
        calls = {"n": 0}

        def flaky(ctx):
            calls["n"] += 1
            ctx.set_output("Done", 1 if calls["n"] >= 3 else 0)
            return 0

        engine.register_program("flaky", flaky)
        definition = ProcessDefinition("Retry")
        definition.add_activity(
            Activity(
                "T",
                program="flaky",
                output_spec=[VariableDecl("Done", DataType.LONG)],
                exit_condition="Done = 1",
                max_iterations=10,
            )
        )
        engine.register_definition(definition)
        engine.run_process("Retry")
        spans = engine.obs.tracer.spans(name="activity T")
        assert [s.attributes["attempt"] for s in spans] == [1, 2, 3]
        completions = engine.obs.metrics.get(
            "wfms_activity_completions_total"
        )
        assert completions.labels("rescheduled").value == 2
        assert completions.labels("terminated").value == 1


class TestEngineHooks:
    def test_dispatch_completion_finish_events(self):
        engine = sequential_engine()
        events = []
        for event_type in (
            NavigatorDispatched,
            ActivityCompleted,
            ProcessFinished,
        ):
            engine.obs.hooks.subscribe(event_type, events.append)
        engine.run_process("Seq")
        kinds = [type(e).__name__ for e in events]
        assert kinds.count("NavigatorDispatched") == 2
        assert kinds.count("ActivityCompleted") == 2
        assert kinds[-1] == "ProcessFinished"

    def test_raising_subscriber_does_not_break_navigation(self):
        engine = sequential_engine()

        def bad(event):
            raise RuntimeError("dashboard bug")

        engine.obs.hooks.subscribe(NavigatorDispatched, bad)
        result = engine.run_process("Seq")
        assert result.finished
        assert len(engine.obs.hooks.failures) == 2  # one per dispatch


class TestWorklistObservability:
    def test_manual_item_transitions(self):
        from repro.wfms.model import StaffAssignment, StartMode
        from repro.wfms.organization import demo_organization

        engine = Engine(
            observability=True, organization=demo_organization()
        )
        engine.register_program("ok", lambda ctx: 0)
        definition = ProcessDefinition("ManualFlow")
        definition.add_activity(
            Activity(
                "Approve",
                program="ok",
                start_mode=StartMode.MANUAL,
                staff=StaffAssignment(roles=("clerk",)),
            )
        )
        engine.register_definition(definition)
        events = []
        engine.obs.hooks.subscribe(WorklistTransition, events.append)
        iid = engine.start_process("ManualFlow")
        engine.run()
        item = engine.worklist("bob")[0]
        engine.claim(item.item_id, "bob")
        engine.start_item(item.item_id)
        assert engine.instance_state(iid) == "finished"
        transitions = [e.transition for e in events]
        assert transitions == ["offered", "claimed", "completed"]
        assert events[1].user == "bob"
        counter = engine.obs.metrics.get("wfms_worklist_transitions_total")
        assert counter.labels("offered").value == 1
        assert counter.labels("claimed").value == 1
        assert engine.obs.metrics.get("wfms_worklist_open_items").value == 0


class TestJournalObservability:
    def test_always_sync_commits_per_append(self, tmp_path):
        engine = sequential_engine(
            journal_path=str(tmp_path / "j.jsonl")
        )
        synced = []
        engine.obs.hooks.subscribe(JournalSynced, synced.append)
        engine.run_process("Seq")
        appends = engine.obs.metrics.get("wfms_journal_appends_total")
        commits = engine.obs.metrics.get("wfms_journal_commits_total")
        assert appends.value == len(engine.journal.records())
        assert commits.labels("append").value == appends.value
        assert len(synced) == appends.value
        assert all(e.reason == "append" for e in synced)

    def test_batch_sync_reports_reasons_and_unflushed(self, tmp_path):
        engine = sequential_engine(
            journal_path=str(tmp_path / "j.jsonl"),
            journal_sync="batch",
            journal_batch_size=1000,
            journal_batch_interval=3600.0,
        )
        engine.run_process("Seq")
        unflushed = engine.obs.metrics.get("wfms_journal_unflushed")
        assert unflushed.value == len(engine.journal.records())
        engine.journal.flush()
        assert unflushed.value == 0
        commits = engine.obs.metrics.get("wfms_journal_commits_total")
        assert commits.labels("flush").value >= 1
        spans = engine.obs.tracer.spans(name="journal.commit")
        assert spans and spans[-1].attributes["reason"] == "flush"


class TestCrashRecoverObservability:
    def test_crash_and_recover_counters_and_events(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        engine = sequential_engine(journal_path=path)
        engine.run_process("Seq")
        crashes = []
        engine.obs.hooks.subscribe(EngineCrashed, crashes.append)
        engine.crash()
        assert len(crashes) == 1
        assert (
            engine.obs.metrics.get("wfms_engine_crashes_total").value == 1
        )

        fresh = sequential_engine(
            observability=True, journal_path=path
        )
        recovered = []
        fresh.obs.hooks.subscribe(EngineRecovered, recovered.append)
        replayed = fresh.recover()
        assert replayed == 2
        assert recovered[0].replayed == 2
        assert (
            fresh.obs.metrics.get("wfms_recovery_replayed_total").value == 2
        )
        [span] = fresh.obs.tracer.spans(name="recovery.replay")
        assert span.finished
        assert span.attributes["replayed"] == 2

    def test_recovered_instance_rejoins_its_trace(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        engine = sequential_engine(journal_path=path)
        iid = engine.start_process("Seq")
        [old_root] = engine.obs.tracer.spans(name="process Seq")
        trace = {
            r["instance"]: r.get("trace")
            for r in engine.journal.records()
            if r["type"] == "process_started"
        }
        assert trace[iid]["trace_id"] == old_root.trace_id
        engine.crash()

        fresh = sequential_engine(observability=True, journal_path=path)
        fresh.recover()
        fresh.run()
        assert fresh.instance_state(iid) == "finished"
        [new_root] = fresh.obs.tracer.spans(name="process Seq")
        # same trace across the crash: the journaled linkage was used
        assert new_root.trace_id == old_root.trace_id


class TestFMTMStageSpans:
    SAGA = """
    MODEL SAGA 'booking'
      STEP 's1'
      STEP 's2'
    END 'booking'
    """

    def _pipeline(self, observability=None):
        from repro.core.fmtm import FMTMPipeline
        from repro.core.saga_translator import translate_saga
        from repro.core.sagas import SagaSpec, SagaStep

        engine = Engine(observability=observability)
        translation = translate_saga(
            SagaSpec("booking", [SagaStep("s1"), SagaStep("s2")])
        )
        for name in translation.required_programs:
            engine.register_program(name, lambda ctx: 0, replace=True)
        return FMTMPipeline(engine)

    def test_report_stage_api_preserved(self):
        from repro.core.fmtm import STAGES

        report = self._pipeline().process_specification(self.SAGA)
        assert report.stage_names() == list(STAGES)
        assert all(r.seconds >= 0.0 for r in report.stages)
        assert report.stage("emit_fdl").detail

    def test_enabled_engine_gets_stage_spans_and_histogram(self):
        pipeline = self._pipeline(observability=True)
        pipeline.process_specification(self.SAGA)
        tracer = pipeline.engine.obs.tracer
        [root] = tracer.spans(name="fmtm.pipeline")
        children = [
            s
            for s in tracer.spans()
            if s.parent_id == root.span_id
        ]
        assert len(children) == 6
        hist = pipeline.engine.obs.metrics.get("fmtm_stage_seconds")
        assert hist.labels("parse_specification").count == 1

    def test_disabled_engine_keeps_spans_private(self):
        pipeline = self._pipeline()
        report = pipeline.process_specification(self.SAGA)
        assert len(report.stages) == 6
        assert pipeline.engine.obs.tracer.export() == []


class TestExportAndMonitor:
    def test_snapshot_round_trip_through_monitor(self, tmp_path):
        from repro.tools.monitor import render_snapshot

        engine = sequential_engine()
        engine.run_process("Seq")
        path = tmp_path / "snap.json"
        write_snapshot(engine, path)
        snapshot = json.loads(path.read_text())
        assert snapshot["observability_enabled"] is True
        lines = render_snapshot(snapshot)
        text = "\n".join(lines)
        assert "PROCESSES (1)" in text
        assert "wfms_processes_started_total" in text
        assert "process Seq [process]" in text

    def test_monitor_cli_commands(self, tmp_path, capsys):
        from repro.tools.monitor import main

        engine = sequential_engine()
        engine.run_process("Seq")
        path = str(tmp_path / "snap.json")
        write_snapshot(engine, path)
        assert main(["view", path]) == 0
        assert main(["prom", path]) == 0
        assert main(["spans", path]) == 0
        out = capsys.readouterr().out
        assert "wfms_processes_started_total" in out
        assert main(["view", str(tmp_path / "missing.json")]) == 1

    def test_prometheus_text_of_engine_run(self):
        engine = sequential_engine()
        engine.run_process("Seq")
        text = to_prometheus_text(engine.obs.metrics)
        assert "# TYPE wfms_processes_started_total counter" in text
        assert 'wfms_processes_started_total{definition="Seq"} 1' in text

    def test_span_tree_renders_hierarchy(self):
        engine = sequential_engine()
        engine.run_process("Seq")
        lines = span_tree_lines(engine.obs.tracer.export())
        assert lines[0].startswith("process Seq")
        assert lines[1].startswith("  activity A")

    def test_engine_snapshot_disabled_engine(self):
        engine = sequential_engine(observability=None)
        engine.run_process("Seq")
        snapshot = engine_snapshot(engine)
        assert snapshot["observability_enabled"] is False
        assert snapshot["metrics"] == []
        assert snapshot["spans"] == []
        assert len(snapshot["processes"]) == 1
