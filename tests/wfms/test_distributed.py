"""Tests for distributed workflow execution over persistent messages
(the Exotica/FMQM dimension: heterogeneous, distributed, crash-safe)."""

import pytest

from repro.errors import WorkflowError
from repro.wfms import Activity, DataType, ProcessDefinition, VariableDecl
from repro.wfms.distributed import WorkflowNode, run_cluster
from repro.wfms.messaging import MessageBus
from repro.wfms.model import PROCESS_INPUT, PROCESS_OUTPUT
from repro.workloads.distributed_demo import (
    configure_requester,
    configure_worker,
    make_requester,
    make_worker,
)


class TestMessageBus:
    def test_fifo_delivery(self):
        bus = MessageBus()
        bus.send("q", {"n": 1})
        bus.send("q", {"n": 2})
        __, first = bus.receive("q")
        assert first == {"n": 1}

    def test_in_flight_messages_hidden(self):
        bus = MessageBus()
        bus.send("q", {"n": 1})
        bus.receive("q")
        assert bus.receive("q") is None

    def test_ack_removes(self):
        bus = MessageBus()
        bus.send("q", {"n": 1})
        msg_id, __ = bus.receive("q")
        bus.ack("q", msg_id)
        assert bus.depth("q") == 0

    def test_nack_redelivers(self):
        bus = MessageBus()
        bus.send("q", {"n": 1})
        msg_id, __ = bus.receive("q")
        bus.nack("q", msg_id)
        msg_id2, body = bus.receive("q")
        assert body == {"n": 1}
        assert bus.deliveries("q", msg_id2) == 2

    def test_ack_requires_in_flight(self):
        bus = MessageBus()
        bus.send("q", {"n": 1})
        with pytest.raises(WorkflowError):
            bus.ack("q", "m000000")

    def test_recover_in_flight(self):
        bus = MessageBus()
        bus.send("q", {"n": 1})
        bus.send("q", {"n": 2})
        bus.receive("q")
        bus.receive("q")
        assert bus.recover_in_flight("q") == 2
        assert bus.receive("q") is not None

    def test_unknown_message_rejected(self):
        bus = MessageBus()
        with pytest.raises(WorkflowError):
            bus.nack("q", "ghost")


class TestRemoteExecution:
    def test_remote_subprocess_round_trip(self):
        bus = MessageBus()
        worker = make_worker(bus)
        front = make_requester(bus)
        iid = front.engine.start_process("Front", {"N": 21})
        run_cluster([front, worker], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 43  # 21*2 + 1

    def test_multiple_concurrent_remote_calls(self):
        bus = MessageBus()
        worker = make_worker(bus)
        front = make_requester(bus)
        ids = [
            front.engine.start_process("Front", {"N": n})
            for n in (1, 2, 3, 4)
        ]
        run_cluster([front, worker], watch=[(front, i) for i in ids])
        results = [front.engine.output(i)["Result"] for i in ids]
        assert results == [3, 5, 7, 9]

    def test_three_node_chain(self):
        # front -> middle (serves Front's remote) -> worker
        bus = MessageBus()
        worker = make_worker(bus)
        middle = make_requester(bus, name="middle", worker="worker")
        middle.serve(middle.engine.definition("Front"))
        front = WorkflowNode("front2", bus)
        remote = front.remote_activity(
            "CallFront",
            process="Front",
            node="middle",
            input_spec=[VariableDecl("N", DataType.LONG)],
            output_spec=[VariableDecl("Result", DataType.LONG)],
        )
        defn = ProcessDefinition(
            "Outer",
            input_spec=[VariableDecl("N", DataType.LONG)],
            output_spec=[VariableDecl("Result", DataType.LONG)],
        )
        defn.add_activity(remote)
        defn.map_data(PROCESS_INPUT, "CallFront", [("N", "N")])
        defn.map_data(
            "CallFront", PROCESS_OUTPUT, [("Result", "Result")]
        )
        front.engine.register_definition(defn)
        iid = front.engine.start_process("Outer", {"N": 5})
        run_cluster([front, middle, worker], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 11

    def test_unserved_process_is_an_error(self):
        bus = MessageBus()
        worker = WorkflowNode("worker", bus)
        front = make_requester(bus)
        front.engine.start_process("Front", {"N": 1})
        with pytest.raises(WorkflowError, match="does not serve"):
            run_cluster([front, worker], max_rounds=10)

    def test_duplicate_requests_deduplicated(self):
        bus = MessageBus()
        worker = make_worker(bus)
        front = make_requester(bus)
        iid = front.engine.start_process("Front", {"N": 10})
        run_cluster([front, worker], watch=[(front, iid)])
        # Manually resend the same request: the worker must not run a
        # second instance, just reply again.
        request_id = "front/%s/CallDouble" % iid
        bus.send(
            "node:worker",
            {
                "type": "request",
                "request_id": request_id,
                "process": "Double",
                "input": {"In": 10},
                "reply_to": "replies:front",
            },
        )
        instances_before = len(worker.engine.navigator.instances())
        worker.pump()
        assert len(worker.engine.navigator.instances()) == instances_before
        assert bus.depth("replies:front") == 1  # reply re-sent


class TestCrashSafety:
    def test_requester_crash_and_rebuild(self, tmp_path):
        bus = MessageBus()
        worker = make_worker(bus)
        front = make_requester(
            bus, journal_path=str(tmp_path / "front.journal")
        )
        iid = front.engine.start_process("Front", {"N": 7})
        front.engine.step()  # poll attempt 1: request sent
        front.crash()

        front.rebuild(
            configure_requester
        )
        run_cluster([front, worker], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 15

    def test_worker_crash_before_processing(self, tmp_path):
        bus = MessageBus()
        worker = make_worker(
            bus, journal_path=str(tmp_path / "worker.journal")
        )
        front = make_requester(bus)
        iid = front.engine.start_process("Front", {"N": 3})
        front.engine.step()  # request is on the worker's inbox
        worker.crash()
        worker.rebuild(configure_worker)
        run_cluster([front, worker], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 7

    def test_worker_crash_after_processing_before_ack(self, tmp_path):
        bus = MessageBus()
        worker = make_worker(
            bus, journal_path=str(tmp_path / "worker.journal")
        )
        front = make_requester(bus)
        iid = front.engine.start_process("Front", {"N": 4})
        front.engine.step()
        # Simulate: the worker receives the request (in flight) and
        # crashes before acking.
        bus.receive("node:worker")
        worker.crash()  # recover_in_flight requeues it
        worker.rebuild(configure_worker)
        run_cluster([front, worker], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 9


