"""Direct unit tests for the run-time instance objects."""

import pytest

from repro.errors import NavigationError
from repro.wfms.instance import (
    ActivityInstance,
    ActivityState,
    ProcessInstance,
    ProcessState,
    connector_key,
)
from repro.wfms.model import Activity, ProcessDefinition, StartCondition


def definition():
    d = ProcessDefinition("P")
    d.add_activity(Activity("A", program="p"))
    d.add_activity(Activity("B", program="p"))
    d.add_activity(
        Activity("J", program="p", start_condition=StartCondition.ANY)
    )
    d.connect("A", "J")
    d.connect("B", "J")
    return d


class TestActivityInstance:
    def make(self, condition=StartCondition.ALL):
        ai = ActivityInstance(
            Activity("J", program="p", start_condition=condition)
        )
        ai.incoming = {"A->J": None, "B->J": None}
        return ai

    def test_and_join_needs_all_true(self):
        ai = self.make()
        assert not ai.start_condition_met()
        ai.incoming["A->J"] = True
        assert not ai.start_condition_met()
        ai.incoming["B->J"] = True
        assert ai.start_condition_met()

    def test_and_join_dead_on_first_false(self):
        ai = self.make()
        ai.incoming["A->J"] = False
        assert ai.start_condition_dead()

    def test_or_join_fires_on_first_true(self):
        ai = self.make(StartCondition.ANY)
        ai.incoming["A->J"] = True
        assert ai.start_condition_met()

    def test_or_join_dead_only_when_all_false(self):
        ai = self.make(StartCondition.ANY)
        ai.incoming["A->J"] = False
        assert not ai.start_condition_dead()
        ai.incoming["B->J"] = False
        assert ai.start_condition_dead()

    def test_executed_requires_real_termination(self):
        ai = self.make()
        assert not ai.executed
        ai.state = ActivityState.TERMINATED
        assert ai.executed
        ai.dead = True
        assert not ai.executed


class TestProcessInstance:
    def test_incoming_map_prepopulated(self):
        instance = ProcessInstance("pi-1", definition())
        assert instance.activity("J").incoming == {
            connector_key("A", "J"): None,
            connector_key("B", "J"): None,
        }
        assert instance.activity("A").incoming == {}

    def test_unknown_activity_rejected(self):
        instance = ProcessInstance("pi-1", definition())
        with pytest.raises(NavigationError):
            instance.activity("Ghost")

    def test_states_view_marks_dead(self):
        instance = ProcessInstance("pi-1", definition())
        instance.activity("A").state = ActivityState.TERMINATED
        instance.activity("B").state = ActivityState.TERMINATED
        instance.activity("B").dead = True
        states = instance.states()
        assert states["A"] == "terminated"
        assert states["B"] == "dead"
        assert states["J"] == "waiting"

    def test_all_terminated(self):
        instance = ProcessInstance("pi-1", definition())
        assert not instance.all_terminated()
        for name in ("A", "B", "J"):
            instance.activity(name).state = ActivityState.TERMINATED
        assert instance.all_terminated()

    def test_root_flag_and_repr(self):
        root = ProcessInstance("pi-1", definition())
        child = ProcessInstance(
            "pi-1/Blk@1",
            definition(),
            parent_instance="pi-1",
            parent_activity="Blk",
        )
        assert root.is_root and not child.is_root
        assert "pi-1" in repr(root)
        assert root.state is ProcessState.RUNNING
