"""Journal sync policies: group commit, flush barriers, and the
write-then-append durability fix."""

import pytest

from repro.errors import RecoveryError
from repro.wfms.engine import Engine
from repro.wfms.journal import Journal, load_journal
from repro.wfms.model import Activity, ProcessDefinition


def record(n: int) -> dict:
    return {"type": "process_finished", "instance": "pi-%04d" % n}


class TestSyncPolicyValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Journal(sync="sometimes")

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            Journal(sync="batch", batch_size=0)

    def test_default_is_always(self, tmp_path):
        journal = Journal(tmp_path / "j.log")
        assert journal.sync == "always"
        engine = Engine(tmp_path / "e.log")
        assert engine.journal.sync == "always"


class TestAlwaysPolicy:
    def test_every_append_is_durable(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(path)
        for n in range(3):
            journal.append(record(n))
            assert len(load_journal(path)) == n + 1
        assert journal.unflushed() == 0


class TestGroupCommit:
    def test_batch_defers_until_size_threshold(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(path, sync="batch", batch_size=5, batch_interval=3600)
        for n in range(4):
            journal.append(record(n))
        assert load_journal(path) == []          # nothing durable yet
        assert journal.unflushed() == 4
        assert len(journal.records()) == 4       # volatile view complete
        journal.append(record(4))                # hits the threshold
        assert len(load_journal(path)) == 5
        assert journal.unflushed() == 0

    def test_interval_elapse_commits(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(
            path, sync="batch", batch_size=1000, batch_interval=0.0
        )
        journal.append(record(0))
        assert len(load_journal(path)) == 1

    def test_flush_is_the_durability_barrier(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(path, sync="batch", batch_size=100, batch_interval=3600)
        for n in range(7):
            journal.append(record(n))
        assert load_journal(path) == []
        journal.flush()
        assert len(load_journal(path)) == 7
        assert journal.unflushed() == 0

    def test_close_commits_the_tail(self, tmp_path):
        path = tmp_path / "j.log"
        with Journal(path, sync="batch", batch_size=100, batch_interval=3600) as journal:
            journal.append(record(0))
        assert len(load_journal(path)) == 1

    def test_hard_crash_loses_at_most_the_unflushed_suffix(self, tmp_path):
        """The durable file is always a prefix of the volatile record
        list; a hard crash (no flush) loses exactly the buffered tail."""
        path = tmp_path / "j.log"
        journal = Journal(path, sync="batch", batch_size=3, batch_interval=3600)
        for n in range(8):
            journal.append(record(n))
        durable = load_journal(path)         # simulated hard crash: read
        volatile = journal.records()         # what the engine believed
        assert len(durable) == 6             # two full batches of 3
        assert durable == volatile[: len(durable)]
        assert journal.unflushed() == len(volatile) - len(durable) == 2

    def test_never_policy_defers_to_flush(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(path, sync="never")
        journal.append(record(0))
        journal.flush()
        assert len(load_journal(path)) == 1


def register_chain(engine):
    engine.register_program("p", lambda ctx: 0)
    d = ProcessDefinition("Chain")
    d.add_activity(Activity("A", program="p"))
    d.add_activity(Activity("B", program="p"))
    d.add_activity(Activity("C", program="p"))
    d.connect("A", "B")
    d.connect("B", "C")
    engine.register_definition(d)


class TestEngineIntegration:
    def test_batch_engine_recovers_from_durable_prefix(self, tmp_path):
        """A hard-crashed group-commit engine recovers the consistent
        durable prefix; the lost suffix is simply re-executed work."""
        path = tmp_path / "e.log"
        engine = Engine(
            path,
            journal_sync="batch",
            journal_batch_size=3,
            journal_batch_interval=3600,
        )
        register_chain(engine)
        iid = engine.start_process("Chain")
        engine.run()
        total = len(engine.journal.records())
        lost = engine.journal.unflushed()
        assert lost > 0                       # a suffix really is volatile
        del engine                            # hard crash: no flush/close

        durable = load_journal(path)
        assert len(durable) == total - lost

        fresh = Engine(path)
        register_chain(fresh)
        fresh.recover()
        # The durable prefix replays cleanly; interrupted work is ready
        # to be re-executed, after which the instance finishes again.
        fresh.run()
        assert fresh.instance_state(iid) == "finished"

    def test_always_engine_loses_nothing(self, tmp_path):
        path = tmp_path / "e.log"
        engine = Engine(path)                  # default sync="always"
        register_chain(engine)
        iid = engine.start_process("Chain")
        engine.run()
        total = len(engine.journal.records())
        assert engine.journal.unflushed() == 0
        del engine                             # hard crash

        assert len(load_journal(path)) == total
        fresh = Engine(path)
        register_chain(fresh)
        replayed = fresh.recover()
        assert replayed == 3                   # A, B, C completions
        assert fresh.instance_state(iid) == "finished"

    def test_orderly_crash_flushes_batch_tail(self, tmp_path):
        path = tmp_path / "e.log"
        engine = Engine(
            path,
            journal_sync="batch",
            journal_batch_size=1000,
            journal_batch_interval=3600,
        )
        register_chain(engine)
        iid = engine.start_process("Chain")
        engine.run()
        total = len(engine.journal.records())
        engine.crash()                         # orderly: flush + close
        assert len(load_journal(path)) == total
        fresh = Engine(path)
        register_chain(fresh)
        fresh.recover()
        assert fresh.instance_state(iid) == "finished"


class _FailingFile:
    """File stand-in whose write always fails (disk full)."""

    def write(self, data):
        raise OSError("disk full")

    def flush(self):
        raise AssertionError("flush should not be reached")

    def fileno(self):
        raise AssertionError("fsync should not be reached")

    def close(self):
        pass


class TestWriteThenAppend:
    def test_failed_disk_write_does_not_corrupt_memory(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(path)
        journal.append(record(0))
        journal._file = _FailingFile()         # simulate disk failure
        with pytest.raises(OSError):
            journal.append(record(1))
        # Memory must not claim the record that never became durable.
        assert journal.records() == [record(0)]
        assert len(journal) == 1

    def test_illegal_record_type_still_rejected_before_any_write(self):
        journal = Journal()
        with pytest.raises(RecoveryError):
            journal.append({"type": "bogus"})
        assert journal.records() == []


class TestCorruptionDetection:
    """A decode error is a clean crash signature only on the *last*
    non-empty line; mid-file corruption is flagged, never skipped."""

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.log"
        journal = Journal(path)
        journal.append(record(0))
        journal.append(record(1))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "process_fin')  # crash mid-append
        assert load_journal(path) == [record(0), record(1)]

    def test_midfile_corruption_raises(self, tmp_path):
        """Regression: a corrupted record *followed by durable data*
        used to be silently swallowed, replaying a journal that lies."""
        path = tmp_path / "j.log"
        journal = Journal(path)
        for n in range(3):
            journal.append(record(n))
        journal.close()
        lines = path.read_text(encoding="utf-8").splitlines(True)
        lines[1] = lines[1][: len(lines[1]) // 2] + "\n"  # torn mid-file
        path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(RecoveryError, match="followed by durable data"):
            load_journal(path)

    def test_trailing_blank_lines_do_not_hide_corruption(self, tmp_path):
        path = tmp_path / "j.log"
        path.write_text('{"type": "proc\n\n\n', encoding="utf-8")
        # the torn record *is* the last non-empty line: clean signature
        assert load_journal(path) == []

    def test_non_object_record_rejected(self, tmp_path):
        path = tmp_path / "j.log"
        path.write_text('[1, 2]\n{"type": "process_finished"}\n')
        with pytest.raises(RecoveryError, match="malformed journal record"):
            load_journal(path)
