"""Tests for block activities, subprocess activities and nesting (§3.2:
"Process activities are used for nesting and modular design", and exit
conditions on blocks give loops)."""

import pytest

from repro.wfms import (
    Activity,
    ActivityKind,
    DataType,
    Engine,
    ProcessDefinition,
    VariableDecl,
)
from repro.wfms.model import PROCESS_INPUT, PROCESS_OUTPUT


def make_engine(**programs):
    engine = Engine()
    engine.register_program("ok", lambda ctx: 0)
    for name, program in programs.items():
        engine.register_program(name, program)
    return engine


def inner_producing(value):
    """An inner definition writing ``X = value`` to its output."""
    inner = ProcessDefinition(
        "Inner", output_spec=[VariableDecl("X", DataType.LONG)]
    )
    inner.add_activity(
        Activity(
            "S",
            program="emit",
            output_spec=[VariableDecl("X", DataType.LONG)],
        )
    )
    inner.map_data("S", PROCESS_OUTPUT, [("X", "X")])
    return inner


class TestBlocks:
    def test_block_executes_embedded_definition(self):
        engine = make_engine(emit=lambda ctx: (ctx.set_output("X", 5), 0)[1])
        outer = ProcessDefinition("Outer")
        outer.add_activity(
            Activity(
                "Blk",
                kind=ActivityKind.BLOCK,
                block=inner_producing(5),
                output_spec=[VariableDecl("X", DataType.LONG)],
            )
        )
        engine.register_definition(outer)
        result = engine.run_process("Outer")
        assert result.finished
        assert engine.execution_order(result.instance_id) == ["S"]

    def test_block_output_propagates_to_parent(self):
        engine = make_engine(emit=lambda ctx: (ctx.set_output("X", 5), 0)[1])
        outer = ProcessDefinition(
            "Outer", output_spec=[VariableDecl("X", DataType.LONG)]
        )
        outer.add_activity(
            Activity(
                "Blk",
                kind=ActivityKind.BLOCK,
                block=inner_producing(5),
                output_spec=[VariableDecl("X", DataType.LONG)],
            )
        )
        outer.map_data("Blk", PROCESS_OUTPUT, [("X", "X")])
        engine.register_definition(outer)
        result = engine.run_process("Outer")
        assert result.output["X"] == 5

    def test_block_input_flows_into_child(self):
        received = {}

        def consume(ctx):
            received["n"] = ctx.get_input("N")
            return 0

        engine = make_engine(consume=consume)
        inner = ProcessDefinition(
            "Inner", input_spec=[VariableDecl("N", DataType.LONG)]
        )
        inner.add_activity(
            Activity(
                "C",
                program="consume",
                input_spec=[VariableDecl("N", DataType.LONG)],
            )
        )
        inner.map_data(PROCESS_INPUT, "C", [("N", "N")])
        outer = ProcessDefinition(
            "Outer", input_spec=[VariableDecl("N", DataType.LONG)]
        )
        outer.add_activity(
            Activity(
                "Blk",
                kind=ActivityKind.BLOCK,
                block=inner,
                input_spec=[VariableDecl("N", DataType.LONG)],
            )
        )
        outer.map_data(PROCESS_INPUT, "Blk", [("N", "N")])
        engine.register_definition(outer)
        engine.run_process("Outer", {"N": 13})
        assert received["n"] == 13

    def test_block_exit_condition_reruns_whole_block(self):
        attempts = []

        def emit(ctx):
            attempts.append(1)
            ctx.set_output("X", len(attempts))
            return 0

        engine = make_engine(emit=emit)
        inner = ProcessDefinition(
            "Inner", output_spec=[VariableDecl("X", DataType.LONG)]
        )
        inner.add_activity(
            Activity(
                "S",
                program="emit",
                output_spec=[VariableDecl("X", DataType.LONG)],
            )
        )
        inner.map_data("S", PROCESS_OUTPUT, [("X", "X")])
        outer = ProcessDefinition("Outer")
        outer.add_activity(
            Activity(
                "Blk",
                kind=ActivityKind.BLOCK,
                block=inner,
                output_spec=[VariableDecl("X", DataType.LONG)],
                exit_condition="X >= 3",
                max_iterations=10,
            )
        )
        engine.register_definition(outer)
        result = engine.run_process("Outer")
        assert result.finished
        assert len(attempts) == 3  # the block looped until X >= 3

    def test_block_rc_visible_to_transition_conditions(self):
        # Figure 2: the forward block's RC_FB gates the compensation
        # block; an inner activity maps its RC to the block output RC.
        ran = []

        def record(ctx):
            ran.append(ctx.activity)
            return 0

        engine = make_engine(
            failing=lambda ctx: 3, record=record
        )
        inner = ProcessDefinition("Inner")
        inner.add_activity(Activity("F", program="failing"))
        inner.map_data("F", PROCESS_OUTPUT, [("_RC", "_RC")])
        outer = ProcessDefinition("Outer")
        outer.add_activity(
            Activity("Blk", kind=ActivityKind.BLOCK, block=inner)
        )
        outer.add_activity(Activity("OnFail", program="record"))
        outer.add_activity(Activity("OnOk", program="record"))
        outer.connect("Blk", "OnFail", "RC <> 0")
        outer.connect("Blk", "OnOk", "RC = 0")
        engine.register_definition(outer)
        result = engine.run_process("Outer")
        assert ran == ["OnFail"]
        assert "OnOk" in result.dead_activities


class TestSubprocesses:
    def test_process_activity_runs_named_definition(self):
        engine = make_engine()
        child = ProcessDefinition("Child")
        child.add_activity(Activity("Inner", program="ok"))
        parent = ProcessDefinition("Parent")
        parent.add_activity(
            Activity("CallChild", kind=ActivityKind.PROCESS, subprocess="Child")
        )
        engine.register_definition(child)
        engine.register_definition(parent)
        result = engine.run_process("Parent")
        assert result.finished
        assert engine.execution_order(result.instance_id) == ["Inner"]

    def test_missing_subprocess_caught_at_start(self):
        engine = make_engine()
        parent = ProcessDefinition("Parent")
        parent.add_activity(
            Activity("CallChild", kind=ActivityKind.PROCESS, subprocess="Ghost")
        )
        engine.register_definition(parent)
        with pytest.raises(Exception, match="Ghost"):
            engine.start_process("Parent")

    def test_three_level_nesting(self):
        engine = make_engine()
        leaf = ProcessDefinition("Leaf")
        leaf.add_activity(Activity("Work", program="ok"))
        mid = ProcessDefinition("Mid")
        mid.add_activity(
            Activity("CallLeaf", kind=ActivityKind.PROCESS, subprocess="Leaf")
        )
        top = ProcessDefinition("Top")
        top.add_activity(
            Activity("CallMid", kind=ActivityKind.PROCESS, subprocess="Mid")
        )
        for d in (leaf, mid, top):
            engine.register_definition(d)
        result = engine.run_process("Top")
        assert result.finished
        assert engine.execution_order(result.instance_id) == ["Work"]

    def test_child_instance_ids_are_hierarchical(self):
        engine = make_engine()
        child = ProcessDefinition("Child")
        child.add_activity(Activity("Inner", program="ok"))
        parent = ProcessDefinition("Parent")
        parent.add_activity(
            Activity("Call", kind=ActivityKind.PROCESS, subprocess="Child")
        )
        engine.register_definition(child)
        engine.register_definition(parent)
        iid = engine.start_process("Parent")
        engine.run()
        children = [
            pi.instance_id
            for pi in engine.navigator.instances()
            if pi.parent_instance == iid
        ]
        assert children == ["%s/Call@1" % iid]

    def test_two_blocks_in_sequence(self):
        engine = make_engine()
        b1 = ProcessDefinition("B1")
        b1.add_activity(Activity("X1", program="ok"))
        b2 = ProcessDefinition("B2")
        b2.add_activity(Activity("X2", program="ok"))
        outer = ProcessDefinition("Outer")
        outer.add_activity(Activity("First", kind=ActivityKind.BLOCK, block=b1))
        outer.add_activity(Activity("Second", kind=ActivityKind.BLOCK, block=b2))
        outer.connect("First", "Second")
        engine.register_definition(outer)
        result = engine.run_process("Outer")
        assert engine.execution_order(result.instance_id) == ["X1", "X2"]
