"""Tests for the engine's monitoring API (§3.3)."""

from repro.wfms import Activity, ActivityKind, Engine, ProcessDefinition
from repro.wfms.model import StaffAssignment, StartMode
from repro.wfms.organization import demo_organization


def build_engine():
    engine = Engine(organization=demo_organization())
    engine.register_program("ok", lambda ctx: 0)
    engine.register_program("fail", lambda ctx: 1)
    d = ProcessDefinition("P")
    d.add_activity(Activity("A", program="ok"))
    d.add_activity(Activity("B", program="fail"))
    d.add_activity(Activity("C", program="ok"))
    d.connect("A", "B")
    d.connect("B", "C", "RC = 0")
    engine.register_definition(d)
    return engine


class TestProcessList:
    def test_lists_all_instances(self):
        engine = build_engine()
        i1 = engine.start_process("P", starter="ada")
        i2 = engine.start_process("P", starter="bob")
        engine.run()
        rows = engine.process_list()
        assert {r["instance"] for r in rows} == {i1, i2}
        assert all(r["state"] == "finished" for r in rows)
        assert rows[0]["definition"] == "P"

    def test_activity_state_counts(self):
        engine = build_engine()
        engine.start_process("P")
        engine.run()
        row = engine.process_list()[0]
        assert row["activities"] == {"terminated": 2, "dead": 1}

    def test_children_carry_parent_link(self):
        engine = Engine()
        engine.register_program("ok", lambda ctx: 0)
        inner = ProcessDefinition("Inner")
        inner.add_activity(Activity("X", program="ok"))
        outer = ProcessDefinition("Outer")
        outer.add_activity(
            Activity("Blk", kind=ActivityKind.BLOCK, block=inner)
        )
        engine.register_definition(outer)
        iid = engine.start_process("Outer")
        engine.run()
        rows = engine.process_list()
        children = [r for r in rows if r["parent"] == iid]
        assert len(children) == 1
        assert children[0]["definition"] == "Inner"


class TestMonitor:
    def test_detail_view(self):
        engine = build_engine()
        iid = engine.start_process("P", starter="ada")
        engine.run()
        detail = engine.monitor(iid)
        assert detail["state"] == "finished"
        assert detail["starter"] == "ada"
        assert detail["activities"]["A"]["attempts"] == 1
        assert detail["activities"]["A"]["rc"] == 0
        assert detail["activities"]["B"]["rc"] == 1
        assert detail["activities"]["C"]["state"] == "dead"
        assert detail["audit_records"] > 0

    def test_open_work_item_visible(self):
        engine = Engine(organization=demo_organization())
        engine.register_program("ok", lambda ctx: 0)
        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "M",
                program="ok",
                start_mode=StartMode.MANUAL,
                staff=StaffAssignment(roles=("clerk",)),
            )
        )
        engine.register_definition(d)
        iid = engine.start_process("P", starter="ada")
        engine.run()
        detail = engine.monitor(iid)
        assert detail["activities"]["M"]["state"] == "ready"
        assert detail["activities"]["M"]["work_item"].startswith("wi-")
        item = engine.worklist("bob")[0]
        engine.claim(item.item_id, "bob")
        engine.start_item(item.item_id)
        detail = engine.monitor(iid)
        assert detail["activities"]["M"]["claimed_by"] == "bob"
        assert detail["activities"]["M"]["work_item"] == ""
