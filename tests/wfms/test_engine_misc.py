"""Engine facade edge cases and conveniences not covered elsewhere."""

import pytest

from repro.errors import NavigationError, ProgramError
from repro.wfms import Activity, ActivityKind, Engine, ProcessDefinition
from repro.wfms.programs import (
    InvocationContext,
    ProgramRegistry,
    null_program,
    program_from_callable,
)
from repro.wfms.containers import Container


def simple_engine():
    engine = Engine()
    engine.register_program("ok", lambda ctx: 0)
    d = ProcessDefinition("P")
    d.add_activity(Activity("A", program="ok"))
    engine.register_definition(d)
    return engine


class TestEngineFacade:
    def test_definitions_listing(self):
        engine = simple_engine()
        assert engine.definitions() == ["P"]

    def test_result_repr_and_flags(self):
        engine = simple_engine()
        result = engine.run_process("P")
        assert result.finished
        assert "P" in repr(result)
        assert result.dead_activities == []

    def test_clock_moves_forward_only(self):
        engine = simple_engine()
        engine.advance_clock(5.0)
        assert engine.clock == 5.0
        with pytest.raises(NavigationError):
            engine.advance_clock(-1.0)

    def test_run_process_convenience_equals_manual(self):
        engine = simple_engine()
        result = engine.run_process("P")
        iid2 = engine.start_process("P")
        engine.run()
        assert engine.instance_state(iid2) == result.state == "finished"

    def test_execution_order_without_children(self):
        engine = simple_engine()
        result = engine.run_process("P")
        assert engine.execution_order(
            result.instance_id, include_children=False
        ) == ["A"]

    def test_verify_executable_checks_nested_subprocesses(self):
        engine = Engine()
        engine.register_program("ok", lambda ctx: 0)
        child = ProcessDefinition("Child")
        child.add_activity(Activity("X", program="missing_prog"))
        parent = ProcessDefinition("Parent")
        parent.add_activity(
            Activity("Call", kind=ActivityKind.PROCESS, subprocess="Child")
        )
        engine.register_definition(child)
        engine.register_definition(parent)
        with pytest.raises(ProgramError, match="missing_prog"):
            engine.verify_executable("Parent")

    def test_program_raising_is_a_program_error(self):
        engine = Engine()

        def boom(ctx):
            raise RuntimeError("kaput")

        engine.register_program("boom", boom)
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="boom"))
        engine.register_definition(d)
        engine.start_process("P")
        with pytest.raises(ProgramError, match="kaput"):
            engine.run()


class TestProgramRegistry:
    def test_duplicate_registration_needs_replace(self):
        registry = ProgramRegistry()
        registry.register("p", lambda ctx: 0)
        with pytest.raises(ProgramError):
            registry.register("p", lambda ctx: 1)
        registry.register("p", lambda ctx: 1, replace=True)

    def test_empty_name_rejected(self):
        with pytest.raises(ProgramError):
            ProgramRegistry().register("", lambda ctx: 0)

    def test_names_sorted(self):
        registry = ProgramRegistry()
        registry.register("b", lambda ctx: 0)
        registry.register("a", lambda ctx: 0)
        assert registry.names() == ["a", "b"]
        assert "a" in registry

    def test_invoke_stores_return_code(self):
        registry = ProgramRegistry()
        registry.register("p", lambda ctx: 7)
        ctx = InvocationContext(
            "A", "P", "pi-1", Container([]), Container([], output=True)
        )
        assert registry.invoke("p", ctx) == 7
        assert ctx.output.return_code == 7

    def test_none_return_means_zero(self):
        registry = ProgramRegistry()
        registry.register("p", lambda ctx: None)
        ctx = InvocationContext(
            "A", "P", "pi-1", Container([]), Container([], output=True)
        )
        assert registry.invoke("p", ctx) == 0

    def test_program_from_zero_arg_callable(self):
        adapted = program_from_callable(lambda: 3)
        ctx = InvocationContext(
            "A", "P", "pi-1", Container([]), Container([], output=True)
        )
        assert adapted(ctx) == 3

    def test_program_from_ctx_callable(self):
        adapted = program_from_callable(lambda ctx: 4)
        ctx = InvocationContext(
            "A", "P", "pi-1", Container([]), Container([], output=True)
        )
        assert adapted(ctx) == 4

    def test_null_program(self):
        ctx = InvocationContext(
            "A", "P", "pi-1", Container([]), Container([], output=True)
        )
        assert null_program(ctx) == 0

    def test_unknown_program(self):
        with pytest.raises(ProgramError):
            ProgramRegistry().get("ghost")


class TestServices:
    def test_services_reach_programs(self):
        engine = Engine()
        engine.services["db"] = {"answer": 42}
        seen = {}

        def reader(ctx):
            seen["db"] = ctx.services["db"]["answer"]
            return 0

        engine.register_program("reader", reader)
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="reader"))
        engine.register_definition(d)
        engine.run_process("P")
        assert seen["db"] == 42
