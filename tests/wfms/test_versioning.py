"""Tests for versioned process definitions (§3.2: a process has "a
name, version number, ...")."""

import pytest

from repro.errors import DefinitionError
from repro.wfms import Activity, Engine, ProcessDefinition
from repro.wfms.registry import DefinitionRegistry


def make(version, activity="A"):
    d = ProcessDefinition("P", version=version)
    d.add_activity(Activity(activity, program="ok"))
    return d


class TestRegistry:
    def test_latest_version_wins_by_default(self):
        registry = DefinitionRegistry()
        registry.register(make("1"))
        registry.register(make("2"))
        registry.register(make("10"))  # numeric: 10 > 2
        assert registry.get("P").version == "10"

    def test_explicit_version(self):
        registry = DefinitionRegistry()
        registry.register(make("1"))
        registry.register(make("2"))
        assert registry.get("P", "1").version == "1"

    def test_unknown_version_rejected(self):
        registry = DefinitionRegistry()
        registry.register(make("1"))
        with pytest.raises(DefinitionError, match="version"):
            registry.get("P", "9")

    def test_unknown_name_rejected(self):
        with pytest.raises(DefinitionError):
            DefinitionRegistry().get("Ghost")
        with pytest.raises(DefinitionError):
            DefinitionRegistry().versions("Ghost")

    def test_duplicate_name_version_rejected(self):
        registry = DefinitionRegistry()
        registry.register(make("1"))
        with pytest.raises(DefinitionError, match="already"):
            registry.register(make("1", activity="B"))

    def test_identical_name_version_is_idempotent(self):
        registry = DefinitionRegistry()
        first = make("1")
        registry.register(first)
        registry.register(make("1"))  # structurally identical: no-op
        assert registry.get("P", "1") is first

    def test_versions_sorted_numerically(self):
        registry = DefinitionRegistry()
        for v in ("10", "2", "1"):
            registry.register(make(v))
        assert registry.versions("P") == ["1", "2", "10"]

    def test_dotted_versions(self):
        registry = DefinitionRegistry()
        for v in ("1.2", "1.10", "1.9"):
            registry.register(make(v))
        assert registry.versions("P") == ["1.2", "1.9", "1.10"]

    def test_names_and_contains(self):
        registry = DefinitionRegistry()
        registry.register(make("1"))
        assert registry.names() == ["P"]
        assert "P" in registry
        assert "Q" not in registry


class TestEngineVersioning:
    def build_engine(self):
        engine = Engine()
        engine.register_program("ok", lambda ctx: 0)
        engine.register_program("ok2", lambda ctx: 0)
        v1 = ProcessDefinition("P", version="1")
        v1.add_activity(Activity("Old", program="ok"))
        v2 = ProcessDefinition("P", version="2")
        v2.add_activity(Activity("New", program="ok2"))
        engine.register_definition(v1)
        engine.register_definition(v2)
        return engine

    def test_new_instances_use_latest(self):
        engine = self.build_engine()
        result = engine.run_process("P")
        assert result.execution_order == ["New"]

    def test_pinned_version(self):
        engine = self.build_engine()
        iid = engine.start_process("P", version="1")
        engine.run()
        assert engine.audit.execution_order(iid) == ["Old"]

    def test_version_listing(self):
        engine = self.build_engine()
        assert engine.definition_versions("P") == ["1", "2"]
        assert engine.definition("P").version == "2"
        assert engine.definition("P", "1").version == "1"

    def test_running_instance_unaffected_by_new_version(self):
        engine = Engine()
        engine.register_program("ok", lambda ctx: 0)
        v1 = ProcessDefinition("P", version="1")
        v1.add_activity(Activity("Step1", program="ok"))
        v1.add_activity(Activity("Step2", program="ok"))
        v1.connect("Step1", "Step2")
        engine.register_definition(v1)
        iid = engine.start_process("P")
        engine.step()  # Step1 done, Step2 pending
        v2 = ProcessDefinition("P", version="2")
        v2.add_activity(Activity("Other", program="ok"))
        engine.register_definition(v2)
        engine.run()
        assert engine.audit.execution_order(iid) == ["Step1", "Step2"]

    def test_recovery_replays_recorded_version(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        engine = Engine(journal_path=journal)
        engine.register_program("ok", lambda ctx: 0)
        v1 = ProcessDefinition("P", version="1")
        v1.add_activity(Activity("Old", program="ok"))
        v1.add_activity(Activity("Tail", program="ok"))
        v1.connect("Old", "Tail")
        engine.register_definition(v1)
        iid = engine.start_process("P", version="1")
        engine.step()
        engine.crash()

        # Recover into an engine that ALSO has a newer version: the
        # instance must continue on version 1.
        engine2 = Engine(journal_path=journal)
        engine2.register_program("ok", lambda ctx: 0)
        v1b = ProcessDefinition("P", version="1")
        v1b.add_activity(Activity("Old", program="ok"))
        v1b.add_activity(Activity("Tail", program="ok"))
        v1b.connect("Old", "Tail")
        v2 = ProcessDefinition("P", version="2")
        v2.add_activity(Activity("Different", program="ok"))
        engine2.register_definition(v1b)
        engine2.register_definition(v2)
        engine2.recover()
        engine2.run()
        assert engine2.instance_state(iid) == "finished"
        assert engine2.audit.execution_order(iid) == ["Old", "Tail"]
