"""Tests for the indexed scheduling core: heap ready-queue dispatch
order, worklist index consistency, memoized semantic checks, and the
journal replay round-trip through the new queue."""

import pytest

from repro.errors import DefinitionError, NavigationError, WorklistError
from repro.wfms import (
    Activity,
    ActivityKind,
    DataType,
    Engine,
    ProcessDefinition,
    VariableDecl,
)
from repro.wfms.model import StaffAssignment, StartMode
from repro.wfms.organization import demo_organization
from repro.wfms.worklist import WorkItemState, WorklistManager


def recording_engine(**kwargs):
    engine = Engine(**kwargs)
    order = []

    def record(ctx):
        order.append((ctx.instance_id, ctx.activity))
        return 0

    engine.register_program("record", record)
    return engine, order


class TestDispatchDeterminism:
    def test_equal_priorities_dispatch_fifo(self):
        engine, order = recording_engine()
        d = ProcessDefinition("P")
        for name in ("A", "B", "C", "D"):
            d.add_activity(Activity(name, program="record"))
        engine.register_definition(d)
        iid = engine.start_process("P")
        engine.run()
        assert order == [(iid, n) for n in ("A", "B", "C", "D")]

    def test_priority_beats_arrival_ties_stay_fifo(self):
        engine, order = recording_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("LowFirst", program="record", priority=1))
        d.add_activity(Activity("HighA", program="record", priority=5))
        d.add_activity(Activity("LowSecond", program="record", priority=1))
        d.add_activity(Activity("HighB", program="record", priority=5))
        engine.register_definition(d)
        iid = engine.start_process("P")
        engine.run()
        assert [a for __, a in order] == [
            "HighA", "HighB", "LowFirst", "LowSecond",
        ]

    def test_two_instances_interleave_by_arrival(self):
        engine, order = recording_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="record"))
        d.add_activity(Activity("B", program="record"))
        engine.register_definition(d)
        i1 = engine.start_process("P")
        i2 = engine.start_process("P")
        engine.run()
        assert order == [(i1, "A"), (i1, "B"), (i2, "A"), (i2, "B")]

    def test_suspend_resume_requeues_as_fresh_arrival(self):
        # Work left ready while suspended re-enters the queue at resume
        # time: activities of the other instance that were queued while
        # it ran keep their earlier arrival slots.
        engine, order = recording_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="record"))
        d.add_activity(Activity("B", program="record"))
        d.connect("A", "B")
        engine.register_definition(d)
        i1 = engine.start_process("P")
        engine.suspend(i1)
        i2 = engine.start_process("P")
        engine.run()  # drains i2 entirely; i1 suspended throughout
        assert engine.instance_state(i2) == "finished"
        assert order == [(i2, "A"), (i2, "B")]
        engine.resume(i1)
        engine.run()
        assert engine.instance_state(i1) == "finished"
        assert order == [(i2, "A"), (i2, "B"), (i1, "A"), (i1, "B")]

    def test_suspend_resume_preserves_priority_order(self):
        engine, order = recording_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("Low", program="record", priority=1))
        d.add_activity(Activity("High", program="record", priority=9))
        engine.register_definition(d)
        iid = engine.start_process("P")
        engine.suspend(iid)
        engine.run()
        engine.resume(iid)
        engine.run()
        assert [a for __, a in order] == ["High", "Low"]
        # Each activity ran exactly once despite the resume re-queue.
        assert engine.audit.attempts(iid, "High") == 1
        assert engine.audit.attempts(iid, "Low") == 1

    def test_run_max_steps_not_consumed_by_stale_slots(self):
        # A run() with a tight-but-sufficient limit succeeds: the limit
        # counts executed activities, and quiescing exactly at the
        # limit is not a failure.
        engine, order = recording_engine()
        d = ProcessDefinition("P")
        for name in ("A", "B", "C"):
            d.add_activity(Activity(name, program="record"))
        engine.register_definition(d)
        # A suspended sibling instance contributes only dead slots.
        stale = engine.start_process("P")
        engine.suspend(stale)
        engine.start_process("P")
        assert engine.run(max_steps=3) == 3
        assert len(order) == 3

    def test_run_max_steps_still_guards_runaway_loops(self):
        engine = Engine()
        engine.register_program("loop", lambda ctx: 1)
        d = ProcessDefinition("P")
        d.add_activity(Activity("T", program="loop", exit_condition="RC = 0"))
        engine.register_definition(d)
        engine.start_process("P")
        with pytest.raises(NavigationError, match="quiesce"):
            engine.run(max_steps=10)

    def test_has_ready_work_discards_stale_slots(self):
        engine, __ = recording_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="record"))
        engine.register_definition(d)
        iid = engine.start_process("P")
        assert engine.navigator.has_ready_work()
        engine.suspend(iid)
        assert not engine.navigator.has_ready_work()
        engine.resume(iid)
        assert engine.navigator.has_ready_work()
        engine.run()
        assert not engine.navigator.has_ready_work()


class TestWorklistIndexes:
    def offer_one(self, wm, activity="Act", eligible=("bob", "cleo")):
        return wm.offer("pi-1", activity, "P", list(eligible), now=0.0)

    def test_claim_release_withdraw_sequence(self):
        wm = WorklistManager()
        item = self.offer_one(wm)

        wm.claim(item.item_id, "bob")
        assert wm.worklist("bob") == []
        assert wm.worklist("cleo") == []
        assert wm.open_item_for("pi-1", "Act") is item

        wm.release(item.item_id)
        assert [i.item_id for i in wm.worklist("bob")] == [item.item_id]
        assert [i.item_id for i in wm.worklist("cleo")] == [item.item_id]
        assert wm.open_item_for("pi-1", "Act") is item

        wm.withdraw("pi-1", "Act")
        assert item.state is WorkItemState.WITHDRAWN
        assert wm.worklist("bob") == []
        assert wm.worklist("cleo") == []
        assert wm.open_item_for("pi-1", "Act") is None
        # History survives the withdrawal; claiming a withdrawn item fails.
        assert wm.items_for_instance("pi-1") == [item]
        with pytest.raises(WorklistError):
            wm.claim(item.item_id, "bob")

    def test_withdraw_of_claimed_item(self):
        wm = WorklistManager()
        item = self.offer_one(wm)
        wm.claim(item.item_id, "bob")
        wm.withdraw("pi-1", "Act")
        assert item.state is WorkItemState.WITHDRAWN
        assert wm.open_item_for("pi-1", "Act") is None
        with pytest.raises(WorklistError):
            wm.release(item.item_id)

    def test_completed_item_leaves_open_index_keeps_history(self):
        wm = WorklistManager()
        item = self.offer_one(wm)
        wm.claim(item.item_id, "bob")
        wm.complete(item.item_id)
        assert wm.open_item_for("pi-1", "Act") is None
        assert wm.items_for_instance("pi-1") == [item]
        assert wm.item(item.item_id) is item

    def test_per_slot_index_isolates_activities(self):
        wm = WorklistManager()
        first = self.offer_one(wm, activity="One")
        second = self.offer_one(wm, activity="Two")
        wm.withdraw("pi-1", "One")
        assert first.state is WorkItemState.WITHDRAWN
        assert second.state is WorkItemState.OFFERED
        assert wm.open_item_for("pi-1", "Two") is second
        assert [i.item_id for i in wm.worklist("bob")] == [second.item_id]

    def test_deadline_watch_follows_claim_and_release(self):
        wm = WorklistManager()
        item = wm.offer(
            "pi-1", "Act", "P", ["bob"], now=0.0,
            notify_after=5.0, notify_role="",
        )
        wm.claim(item.item_id, "bob")
        # Claimed items do not escalate.
        assert wm.check_deadlines(10.0, lambda r: []) == []
        wm.release(item.item_id)
        raised = wm.check_deadlines(10.0, lambda r: [])
        assert [n.item_id for n in raised] == [item.item_id]
        # Never raised twice.
        assert wm.check_deadlines(20.0, lambda r: []) == []

    def test_items_for_instance_keeps_offer_order(self):
        wm = WorklistManager()
        first = self.offer_one(wm, activity="One")
        second = self.offer_one(wm, activity="Two")
        wm.claim(second.item_id, "bob")
        wm.complete(second.item_id)
        assert wm.items_for_instance("pi-1") == [first, second]
        assert wm.items_for_instance("pi-ghost") == []

    def test_claim_release_withdraw_end_to_end(self):
        engine = Engine(organization=demo_organization())
        engine.register_program("noop", lambda ctx: 0)
        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "M",
                program="noop",
                start_mode=StartMode.MANUAL,
                staff=StaffAssignment(roles=("clerk",)),
            )
        )
        engine.register_definition(d)
        iid = engine.start_process("P", starter="ada")
        engine.run()
        item = engine.worklist("bob")[0]
        engine.claim(item.item_id, "bob")
        engine.worklists.release(item.item_id)
        assert len(engine.worklist("cleo")) == 1
        engine.force_finish(iid, "M", return_code=0, user="ada")
        assert engine.worklist("bob") == []
        assert engine.worklist("cleo") == []
        assert item.state is WorkItemState.WITHDRAWN
        assert engine.instance_state(iid) == "finished"


class TestVerifyMemoization:
    def build(self):
        engine = Engine()
        engine.register_program("ok", lambda ctx: 0)
        child = ProcessDefinition("Child")
        child.add_activity(Activity("X", program="ok"))
        parent = ProcessDefinition("Parent")
        parent.add_activity(
            Activity("Call", kind=ActivityKind.PROCESS, subprocess="Child")
        )
        engine.register_definition(child)
        engine.register_definition(parent)
        return engine

    def test_verify_marks_whole_subtree(self):
        engine = self.build()
        engine.verify_executable("Parent")
        registry = engine._definitions
        assert registry.is_verified(("Parent", "1"))
        assert registry.is_verified(("Child", "1"))

    def test_definition_registration_invalidates(self):
        engine = self.build()
        engine.verify_executable("Parent")
        # A new Child version referencing a missing program must be
        # caught on the next start even though Parent verified before.
        bad = ProcessDefinition("Child", version="2")
        bad.add_activity(Activity("X", program="missing"))
        engine.register_definition(bad)
        assert not engine._definitions.is_verified(("Parent", "1"))
        with pytest.raises(Exception, match="missing"):
            engine.start_process("Parent")

    def test_program_registration_invalidates(self):
        engine = self.build()
        engine.verify_executable("Parent")
        engine.register_program("other", lambda ctx: 0)
        assert not engine._definitions.is_verified(("Parent", "1"))
        # Re-verification repopulates the memo.
        engine.verify_executable("Parent")
        assert engine._definitions.is_verified(("Parent", "1"))

    def test_repeated_starts_hit_the_memo(self):
        engine = self.build()
        calls = {"n": 0}
        original = engine._definitions.mark_verified

        def counting(key):
            calls["n"] += 1
            original(key)

        engine._definitions.mark_verified = counting
        for __ in range(5):
            engine.start_process("Parent")
        engine.run()
        assert calls["n"] == 2  # Parent + Child, once each


class TestSubprocessCycles:
    def test_self_reference_detected(self):
        engine = Engine()
        engine.register_program("ok", lambda ctx: 0)
        d = ProcessDefinition("Loop")
        d.add_activity(
            Activity("Again", kind=ActivityKind.PROCESS, subprocess="Loop")
        )
        engine.register_definition(d)
        with pytest.raises(DefinitionError, match="Loop -> Loop"):
            engine.verify_executable("Loop")

    def test_mutual_reference_detected(self):
        engine = Engine()
        a = ProcessDefinition("A")
        a.add_activity(
            Activity("CallB", kind=ActivityKind.PROCESS, subprocess="B")
        )
        b = ProcessDefinition("B")
        b.add_activity(
            Activity("CallA", kind=ActivityKind.PROCESS, subprocess="A")
        )
        engine.register_definition(a)
        engine.register_definition(b)
        with pytest.raises(DefinitionError, match="cyclic subprocess"):
            engine.verify_executable("A")

    def test_diamond_sharing_is_not_a_cycle(self):
        # Two parents referencing the same leaf subprocess is fine.
        engine = Engine()
        engine.register_program("ok", lambda ctx: 0)
        leaf = ProcessDefinition("Leaf")
        leaf.add_activity(Activity("X", program="ok"))
        mid1 = ProcessDefinition("Mid1")
        mid1.add_activity(
            Activity("C", kind=ActivityKind.PROCESS, subprocess="Leaf")
        )
        mid2 = ProcessDefinition("Mid2")
        mid2.add_activity(
            Activity("C", kind=ActivityKind.PROCESS, subprocess="Leaf")
        )
        top = ProcessDefinition("Top")
        top.add_activity(
            Activity("C1", kind=ActivityKind.PROCESS, subprocess="Mid1")
        )
        top.add_activity(
            Activity("C2", kind=ActivityKind.PROCESS, subprocess="Mid2")
        )
        for definition in (leaf, mid1, mid2, top):
            engine.register_definition(definition)
        engine.verify_executable("Top")  # must not raise


class TestReplayRoundTrip:
    def build(self, journal_path, calls):
        """Mixed-priority process with a loop and parallel branches."""
        engine = Engine(journal_path=journal_path)

        def make(name, flaky=False):
            def program(ctx):
                calls.append(name)
                if flaky and ctx.attempt < 3:
                    return 1
                ctx.set_output("X", ctx.attempt)
                return 0

            return program

        engine.register_program("pSplit", make("Split"))
        engine.register_program("pHigh", make("High"))
        engine.register_program("pLow", make("Low", flaky=True))
        engine.register_program("pJoin", make("Join"))
        d = ProcessDefinition("P")
        spec = [VariableDecl("X", DataType.LONG)]
        d.add_activity(Activity("Split", program="pSplit", output_spec=spec))
        d.add_activity(
            Activity("High", program="pHigh", priority=9, output_spec=spec)
        )
        d.add_activity(
            Activity(
                "Low",
                program="pLow",
                priority=1,
                output_spec=spec,
                exit_condition="RC = 0",
            )
        )
        d.add_activity(Activity("Join", program="pJoin", output_spec=spec))
        d.connect("Split", "High")
        d.connect("Split", "Low")
        d.connect("High", "Join")
        d.connect("Low", "Join")
        engine.register_definition(d)
        return engine

    def test_crash_replay_preserves_dispatch_order(self, tmp_path):
        # Reference run, no crash.
        ref_calls = []
        ref = self.build(str(tmp_path / "ref.jsonl"), ref_calls)
        ref_result = ref.run_process("P")
        assert ref_result.finished

        # Crashed run: stop halfway, recover into a fresh engine.
        calls = []
        path = str(tmp_path / "crash.jsonl")
        engine = self.build(path, calls)
        iid = engine.start_process("P")
        engine.step()  # Split
        engine.step()  # High (priority 9 dispatches before Low)
        assert calls == ["Split", "High"]
        engine.crash()

        replayed_calls = []
        engine2 = self.build(path, replayed_calls)
        engine2.recover()
        engine2.run()
        assert engine2.instance_state(iid) == "finished"
        # Post-recovery execution = the not-yet-durable tail only.
        assert replayed_calls == ["Low", "Low", "Low", "Join"]
        # The audited termination order is identical to the reference.
        assert (
            engine2.execution_order(iid)
            == ref.execution_order(ref_result.instance_id)
        )
        assert engine2.output(iid) == ref.output(ref_result.instance_id)

    def test_priorities_respected_after_recovery(self, tmp_path):
        calls = []
        path = str(tmp_path / "j.jsonl")
        engine = self.build(path, calls)
        iid = engine.start_process("P")
        engine.step()  # Split only
        engine.crash()

        post_calls = []
        engine2 = self.build(path, post_calls)
        engine2.recover()
        engine2.run()
        assert engine2.instance_state(iid) == "finished"
        # High (priority 9) dispatches before Low after the replayed
        # queue is rebuilt.
        assert post_calls[0] == "High"
