"""Property tests: indexed audit queries == naive full-scan filters.

The secondary indexes added to :class:`AuditTrail` are an optimisation
only — every query answer must stay bit-for-bit identical (same record
objects, same sequence order) to the naive filter over the full trail.
"""

import random

import pytest

from repro.wfms.audit import AuditEvent, AuditRecord, AuditTrail

EVENTS = list(AuditEvent)
INSTANCES = ["pi-0001", "pi-0002", "pi-0003", "req/front/pi-0001/Call", ""]
ACTIVITIES = ["", "A", "B", "Book"]


def naive_records(trail, instance_id=None, event=None, activity=None):
    """The pre-index semantics: one pass over the whole trail."""
    out = []
    for record in trail:
        if instance_id is not None and record.instance_id != instance_id:
            continue
        if event is not None and record.event != event:
            continue
        if activity is not None and record.activity != activity:
            continue
        out.append(record)
    return out


def random_trail(seed, size=400):
    rng = random.Random(seed)
    trail = AuditTrail()
    for __ in range(size):
        trail.record(
            rng.uniform(0.0, 100.0),
            rng.choice(EVENTS),
            rng.choice(INSTANCES),
            activity=rng.choice(ACTIVITIES),
            attempt=rng.randint(1, 3),
        )
    return trail


@pytest.mark.parametrize("seed", range(5))
class TestIndexedQueriesMatchNaiveScan:
    def test_records_all_filter_combinations(self, seed):
        trail = random_trail(seed)
        for instance_id in INSTANCES + [None, "pi-absent"]:
            for event in [None, *EVENTS[:6]]:
                for activity in [None, *ACTIVITIES]:
                    indexed = trail.records(
                        instance_id, event=event, activity=activity
                    )
                    naive = naive_records(
                        trail, instance_id, event, activity
                    )
                    # Same record *objects* in the same order: the
                    # indexes never copy, reorder or rebuild records.
                    assert indexed == naive
                    assert all(
                        a is b for a, b in zip(indexed, naive)
                    )

    def test_count_matches_len_of_naive_filter(self, seed):
        trail = random_trail(seed)
        for instance_id in INSTANCES + ["pi-absent"]:
            assert trail.count(instance_id) == len(
                naive_records(trail, instance_id)
            )
            for event in EVENTS:
                assert trail.count(instance_id, event) == len(
                    naive_records(trail, instance_id, event)
                )

    def test_derived_helpers_match_naive_scan(self, seed):
        trail = random_trail(seed)
        for instance_id in INSTANCES:
            assert trail.execution_order(instance_id) == [
                r.activity
                for r in naive_records(
                    trail, instance_id, AuditEvent.ACTIVITY_TERMINATED
                )
            ]
            for activity in ACTIVITIES:
                assert trail.attempts(instance_id, activity) == len(
                    naive_records(
                        trail,
                        instance_id,
                        AuditEvent.ACTIVITY_STARTED,
                        activity,
                    )
                )


class TestSequenceOrderInvariants:
    def test_sequence_numbers_are_dense_and_ordered(self):
        trail = random_trail(99, size=50)
        assert [r.sequence for r in trail] == list(range(50))
        for instance_id in INSTANCES:
            picked = trail.records(instance_id)
            assert [r.sequence for r in picked] == sorted(
                r.sequence for r in picked
            )

    def test_record_returns_the_stored_record(self):
        trail = AuditTrail()
        record = trail.record(
            1.0, AuditEvent.PROCESS_STARTED, "pi-0001", attempt=1
        )
        assert isinstance(record, AuditRecord)
        assert trail.records("pi-0001") == [record]
        assert trail.count("pi-0001") == 1
        assert trail.count("pi-0001", AuditEvent.PROCESS_STARTED) == 1
        assert trail.count("pi-0001", AuditEvent.PROCESS_FINISHED) == 0

    def test_len_and_iter(self):
        trail = random_trail(7, size=20)
        assert len(trail) == 20
        assert len(list(trail)) == 20
