"""Compiled navigation plans: structure, caching and invalidation."""

import pytest

from repro.errors import DefinitionError
from repro.wfms.engine import Engine
from repro.wfms.model import Activity, ProcessDefinition
from repro.wfms.plan import compile_plan
from repro.wfms.registry import DefinitionRegistry
from repro.wfms.datatypes import DataType, VariableDecl


def diamond():
    d = ProcessDefinition("Diamond")
    d.add_activity(Activity("A", program="p"))
    d.add_activity(Activity("B", program="p"))
    d.add_activity(Activity("C", program="p", exit_condition="RC = 0"))
    d.add_activity(
        Activity(
            "J",
            program="p",
            input_spec=[VariableDecl("Rc", DataType.LONG)],
        )
    )
    d.connect("A", "B", condition="RC = 0")
    d.connect("A", "C")
    d.connect("B", "J")
    d.connect("C", "J")
    d.map_data("A", "J", [("_RC", "Rc")])
    return d


class TestCompilePlan:
    def test_adjacency_matches_definition(self):
        d = diamond()
        plan = compile_plan(d)
        assert plan.starting == ("A",)
        assert [c.target for c in plan.outgoing["A"]] == ["B", "C"]
        assert [c.target for c in plan.outgoing["J"]] == []
        assert plan.incoming_keys["J"] == ("B->J", "C->J")
        assert plan.incoming_keys["A"] == ()

    def test_trivial_conditions_compile_to_none(self):
        d = diamond()
        plan = compile_plan(d)
        by_target = {c.target: c for c in plan.outgoing["A"]}
        assert by_target["C"].evaluate is None          # default TRUE
        assert by_target["B"].evaluate is not None      # RC = 0
        assert by_target["B"].evaluate({"_RC": 0}) is True
        assert by_target["B"].evaluate({"_RC": 1}) is False
        assert plan.exit_conditions["A"] is None
        assert plan.exit_conditions["C"] is not None

    def test_data_connectors_indexed_by_target(self):
        d = diamond()
        plan = compile_plan(d)
        assert [c.source for c in plan.data_into["J"]] == ["A"]
        assert "A" not in plan.data_into
        assert plan.output_mappings == {}

    def test_container_prototypes_are_fresh_per_call(self):
        d = ProcessDefinition(
            "P", input_spec=[VariableDecl("N", DataType.LONG)]
        )
        d.add_activity(
            Activity(
                "A",
                program="p",
                output_spec=[VariableDecl("Out", DataType.STRING)],
            )
        )
        plan = compile_plan(d)
        first = plan.output_container("A")
        first.set("Out", "changed")
        second = plan.output_container("A")
        assert second.get("Out") == ""
        assert second.return_code == 0
        process_input = plan.process_input_container()
        assert process_input.get("N") == 0
        assert plan.input_names == frozenset({"N"})


class TestPlanCache:
    def test_plan_is_cached_per_definition_object(self):
        registry = DefinitionRegistry()
        d = diamond()
        registry.register(d)
        assert registry.plan_for(d) is registry.plan_for(d)

    def test_definition_registration_invalidates_plans(self):
        registry = DefinitionRegistry()
        d = diamond()
        registry.register(d)
        before = registry.plan_for(d)
        other = ProcessDefinition("Other")
        other.add_activity(Activity("X", program="p"))
        registry.register(other)
        assert registry.plan_for(d) is not before

    def test_program_registration_invalidates_plans(self):
        engine = Engine()
        engine.register_program("p", lambda ctx: 0)
        d = diamond()
        engine.register_definition(d)
        before = engine._definitions.plan_for(d)
        engine.register_program("q", lambda ctx: 0)
        assert engine._definitions.plan_for(d) is not before

    def test_identical_duplicate_is_a_cache_preserving_noop(self):
        # Re-registering a byte-identical definition (same name/version,
        # e.g. a decorated flow on module re-import) is a no-op: the
        # first object stays canonical and cached plans stay warm.
        registry = DefinitionRegistry()
        first = diamond()
        registry.register(first)
        plan = registry.plan_for(first)
        registry.register(diamond())
        assert registry.get("Diamond") is first
        assert registry.plan_for(first) is plan

    def test_changed_duplicate_name_version_still_rejected(self):
        registry = DefinitionRegistry()
        registry.register(diamond())
        changed = diamond()
        changed.connect("B", "C", condition="RC = 0")
        with pytest.raises(DefinitionError):
            registry.register(changed)


class TestStalePlansNeverUsed:
    """A new version of a definition must navigate on its own plan."""

    def build_engine(self):
        engine = Engine()
        engine.register_program("p", lambda ctx: 0)
        v1 = ProcessDefinition("Proc", version="1")
        v1.add_activity(Activity("A", program="p"))
        v1.add_activity(Activity("B", program="p"))
        v1.connect("A", "B", condition="RC = 0")
        engine.register_definition(v1)
        return engine

    def test_new_version_navigates_on_its_own_plan(self):
        engine = self.build_engine()
        first = engine.run_process("Proc")
        assert engine.activity_states(first.instance_id)["B"] == "terminated"

        # Same name, new version: B is now dead-path eliminated.
        v2 = ProcessDefinition("Proc", version="2")
        v2.add_activity(Activity("A", program="p"))
        v2.add_activity(Activity("B", program="p"))
        v2.connect("A", "B", condition="RC <> 0")
        engine.register_definition(v2)

        second = engine.run_process("Proc")  # latest version is 2
        assert engine.activity_states(second.instance_id)["B"] == "dead"
        # Pinning version 1 still runs the old template's plan.
        iid = engine.start_process("Proc", version="1")
        engine.run()
        assert engine.activity_states(iid)["B"] == "terminated"

    def test_block_children_get_plans(self):
        from repro.wfms.model import ActivityKind

        engine = Engine()
        engine.register_program("p", lambda ctx: 0)
        inner = ProcessDefinition("Inner")
        inner.add_activity(Activity("I", program="p"))
        outer = ProcessDefinition("Outer")
        outer.add_activity(
            Activity("Blk", kind=ActivityKind.BLOCK, block=inner)
        )
        engine.register_definition(outer)
        result = engine.run_process("Outer")
        assert result.finished
        child = engine.navigator.instance("%s/Blk@1" % result.instance_id)
        assert child.plan is not None
        assert child.plan.definition is inner
