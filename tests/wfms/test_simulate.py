"""Tests for the process simulator (§3.3's simulation feature)."""

import pytest

from repro.errors import DefinitionError
from repro.wfms import Activity, ProcessDefinition, StartCondition
from repro.wfms.simulate import ActivityProfile, simulate


def chain(n=3):
    d = ProcessDefinition("Chain")
    names = ["a%d" % i for i in range(n)]
    for name in names:
        d.add_activity(Activity(name, program="p"))
    for left, right in zip(names, names[1:]):
        d.connect(left, right, "RC = 0")
    return d


def diamond():
    d = ProcessDefinition("Diamond")
    for name in ("s", "l", "r", "j"):
        d.add_activity(Activity(name, program="p"))
    d.connect("s", "l")
    d.connect("s", "r")
    d.connect("l", "j")
    d.connect("r", "j")
    return d


class TestProfiles:
    def test_bounds_checked(self):
        with pytest.raises(DefinitionError):
            ActivityProfile(duration=-1)
        with pytest.raises(DefinitionError):
            ActivityProfile(success_probability=1.5)

    def test_runs_bound(self):
        with pytest.raises(DefinitionError):
            simulate(chain(), runs=0)


class TestDeterministicTiming:
    def test_chain_makespan_is_sum(self):
        report = simulate(
            chain(3),
            {name: ActivityProfile(duration=2.0) for name in ("a0", "a1", "a2")},
            runs=5,
        )
        assert report.mean_makespan == 6.0
        assert report.completion_rate == 1.0

    def test_parallel_branches_overlap(self):
        # Critical path: s(1) + max(l=5, r=2) + j(1) = 7, not 9.
        profiles = {
            "s": ActivityProfile(duration=1.0),
            "l": ActivityProfile(duration=5.0),
            "r": ActivityProfile(duration=2.0),
            "j": ActivityProfile(duration=1.0),
        }
        report = simulate(diamond(), profiles, runs=3)
        assert report.mean_makespan == 7.0

    def test_all_activities_counted(self):
        report = simulate(diamond(), runs=2)
        assert report.mean_executed == 4.0


class TestFailuresAndDeadPaths:
    def test_failure_kills_downstream(self):
        profiles = {
            "a0": ActivityProfile(success_probability=0.0),
        }
        report = simulate(chain(3), profiles, runs=10)
        assert report.completion_rate == 0.0
        # a0 runs; a1 and a2 die.
        assert report.mean_executed == 1.0
        assert all(r.dead == 2 for r in report.runs)

    def test_or_join_survives_one_dead_branch(self):
        d = ProcessDefinition("OrJoin")
        for name in ("s", "l", "r"):
            d.add_activity(Activity(name, program="p"))
        d.add_activity(
            Activity("j", program="p", start_condition=StartCondition.ANY)
        )
        d.connect("s", "l", "RC = 0")
        d.connect("s", "r")
        d.connect("l", "j", "RC = 0")
        d.connect("r", "j", "RC = 0")
        # s always fails its success gate toward l, but the ungated
        # edge toward r keeps the right branch alive.
        profiles = {"s": ActivityProfile(success_probability=0.0)}
        report = simulate(d, profiles, runs=5)
        assert all(r.executed >= 3 for r in report.runs)  # s, r, j ran

    def test_completion_rate_tracks_probability(self):
        profiles = {
            "a0": ActivityProfile(success_probability=0.5),
        }
        report = simulate(chain(2), profiles, runs=400, seed=7)
        assert 0.35 < report.completion_rate < 0.65

    def test_retriable_activity_extends_duration(self):
        d = ProcessDefinition("Retry")
        d.add_activity(
            Activity(
                "t", program="p", exit_condition="RC = 0", max_iterations=50
            )
        )
        profiles = {
            "t": ActivityProfile(duration=1.0, success_probability=0.5)
        }
        report = simulate(d, profiles, runs=300, seed=3)
        # Geometric retries: mean total duration ~ 1/p = 2.
        assert 1.6 < report.mean_makespan < 2.5
        assert report.completion_rate > 0.99


class TestReproducibility:
    def test_same_seed_same_report(self):
        profiles = {"a0": ActivityProfile(success_probability=0.5)}
        a = simulate(chain(3), profiles, runs=50, seed=9)
        b = simulate(chain(3), profiles, runs=50, seed=9)
        assert [r.makespan for r in a.runs] == [r.makespan for r in b.runs]

    def test_different_seed_differs(self):
        profiles = {"a0": ActivityProfile(success_probability=0.5)}
        a = simulate(chain(3), profiles, runs=50, seed=1)
        b = simulate(chain(3), profiles, runs=50, seed=2)
        assert [r.succeeded_all for r in a.runs] != [
            r.succeeded_all for r in b.runs
        ]

    def test_percentiles_ordered(self):
        profiles = {
            "a0": ActivityProfile(duration=1.0, success_probability=0.7)
        }
        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "a0", program="p", exit_condition="RC = 0",
            )
        )
        report = simulate(d, profiles, runs=200, seed=5)
        assert (
            report.percentile_makespan(0.5)
            <= report.percentile_makespan(0.9)
            <= report.percentile_makespan(0.99)
        )
