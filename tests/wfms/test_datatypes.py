"""Unit tests for container types and the type registry."""

import pytest

from repro.errors import ContainerError, DefinitionError
from repro.wfms.datatypes import (
    DataType,
    StructureType,
    TypeRegistry,
    VariableDecl,
)


class TestDataType:
    def test_defaults(self):
        assert DataType.LONG.default() == 0
        assert DataType.FLOAT.default() == 0.0
        assert DataType.STRING.default() == ""
        assert DataType.BINARY.default() == b""

    def test_long_accepts_int_not_bool(self):
        assert DataType.LONG.accepts(5)
        assert not DataType.LONG.accepts(True)
        assert not DataType.LONG.accepts(1.5)

    def test_float_accepts_int_and_float(self):
        assert DataType.FLOAT.accepts(5)
        assert DataType.FLOAT.accepts(5.5)
        assert DataType.FLOAT.coerce(5) == 5.0
        assert isinstance(DataType.FLOAT.coerce(5), float)

    def test_string_and_binary(self):
        assert DataType.STRING.accepts("x")
        assert not DataType.STRING.accepts(b"x")
        assert DataType.BINARY.coerce(bytearray(b"ab")) == b"ab"

    def test_coerce_rejects_mismatch(self):
        with pytest.raises(ContainerError):
            DataType.LONG.coerce("nope")


class TestVariableDecl:
    def test_rejects_bad_names(self):
        for bad in ("", "1x", "a-b", "a b"):
            with pytest.raises(DefinitionError):
                VariableDecl(bad)

    def test_accepts_underscore_names(self):
        assert VariableDecl("_RC", DataType.LONG).name == "_RC"

    def test_array_flags(self):
        decl = VariableDecl("Xs", DataType.LONG, array_size=3)
        assert decl.is_array and not decl.is_structure

    def test_negative_array_size_rejected(self):
        with pytest.raises(DefinitionError):
            VariableDecl("Xs", DataType.LONG, array_size=-1)

    def test_structure_reference(self):
        decl = VariableDecl("Order", "OrderType")
        assert decl.is_structure


class TestStructureType:
    def test_duplicate_members_rejected(self):
        with pytest.raises(DefinitionError):
            StructureType("S", [VariableDecl("a"), VariableDecl("a")])

    def test_member_lookup(self):
        s = StructureType("S", [VariableDecl("a", DataType.LONG)])
        assert s.member("a").type is DataType.LONG
        with pytest.raises(ContainerError):
            s.member("b")


class TestTypeRegistry:
    def test_register_and_get(self):
        reg = TypeRegistry()
        s = StructureType("S", [VariableDecl("a", DataType.LONG)])
        reg.register(s)
        assert reg.get("S") is s
        assert "S" in reg
        assert reg.names() == ["S"]

    def test_duplicate_registration_rejected(self):
        reg = TypeRegistry()
        reg.register(StructureType("S"))
        with pytest.raises(DefinitionError):
            reg.register(StructureType("S"))

    def test_unknown_member_structure_rejected(self):
        reg = TypeRegistry()
        with pytest.raises(DefinitionError):
            reg.register(StructureType("S", [VariableDecl("x", "Missing")]))

    def test_direct_self_reference_rejected(self):
        reg = TypeRegistry()
        with pytest.raises(DefinitionError):
            reg.register(StructureType("S", [VariableDecl("x", "S")]))

    def test_indirect_cycle_rejected(self):
        reg = TypeRegistry()
        reg.register(StructureType("A", [VariableDecl("x", DataType.LONG)]))
        reg.register(StructureType("B", [VariableDecl("a", "A")]))
        # C -> B is fine; a cycle C -> C via later edits is impossible
        # because structures are immutable once registered; the check
        # that *would* catch it is exercised directly:
        with pytest.raises(DefinitionError):
            reg.register(StructureType("C", [VariableDecl("c", "C")]))

    def test_default_value_nested(self):
        reg = TypeRegistry()
        reg.register(
            StructureType(
                "Point",
                [VariableDecl("x", DataType.LONG), VariableDecl("y", DataType.LONG)],
            )
        )
        reg.register(StructureType("Line", [VariableDecl("p", "Point")]))
        value = reg.default_value(VariableDecl("l", "Line"))
        assert value == {"p": {"x": 0, "y": 0}}

    def test_default_value_array(self):
        reg = TypeRegistry()
        value = reg.default_value(VariableDecl("xs", DataType.LONG, array_size=3))
        assert value == [0, 0, 0]

    def test_default_value_array_of_structures(self):
        reg = TypeRegistry()
        reg.register(StructureType("P", [VariableDecl("x", DataType.LONG)]))
        value = reg.default_value(VariableDecl("ps", "P", array_size=2))
        assert value == [{"x": 0}, {"x": 0}]
        value[0]["x"] = 9
        assert value[1]["x"] == 0  # no shared references

    def test_get_unknown_raises(self):
        with pytest.raises(DefinitionError):
            TypeRegistry().get("Nope")
