"""Edge cases of the navigator and manual-work plumbing."""

import pytest

from repro.errors import NavigationError, WorkflowError
from repro.wfms import Activity, Engine, ProcessDefinition
from repro.wfms.model import StaffAssignment, StartMode
from repro.wfms.organization import demo_organization


def manual_engine():
    engine = Engine(organization=demo_organization())
    engine.register_program("ok", lambda ctx: 0)
    d = ProcessDefinition("P")
    d.add_activity(
        Activity(
            "M",
            program="ok",
            start_mode=StartMode.MANUAL,
            staff=StaffAssignment(roles=("clerk",)),
        )
    )
    engine.register_definition(d)
    return engine


class TestManualPlumbing:
    def test_start_unclaimed_item_rejected(self):
        engine = manual_engine()
        engine.start_process("P", starter="ada")
        engine.run()
        item = engine.worklist("bob")[0]
        with pytest.raises(WorkflowError, match="claimed"):
            engine.start_item(item.item_id)

    def test_release_returns_to_all_worklists(self):
        engine = manual_engine()
        engine.start_process("P", starter="ada")
        engine.run()
        item = engine.worklist("bob")[0]
        engine.claim(item.item_id, "bob")
        engine.worklists.release(item.item_id)
        assert len(engine.worklist("cleo")) == 1

    def test_force_finish_withdraws_item(self):
        engine = manual_engine()
        iid = engine.start_process("P", starter="ada")
        engine.run()
        assert len(engine.worklist("bob")) == 1
        engine.force_finish(iid, "M", return_code=0, user="ada")
        assert engine.worklist("bob") == []
        assert engine.instance_state(iid) == "finished"

    def test_forced_output_values_flow_on(self):
        engine = Engine(organization=demo_organization())
        received = {}

        def consumer(ctx):
            received["v"] = ctx.get_input("V")
            return 0

        engine.register_program("ok", lambda ctx: 0)
        engine.register_program("consumer", consumer)
        from repro.wfms import DataType, VariableDecl

        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "M",
                program="ok",
                start_mode=StartMode.MANUAL,
                staff=StaffAssignment(roles=("clerk",)),
                output_spec=[VariableDecl("X", DataType.LONG)],
            )
        )
        d.add_activity(
            Activity(
                "C",
                program="consumer",
                input_spec=[VariableDecl("V", DataType.LONG)],
            )
        )
        d.connect("M", "C", "RC = 0")
        d.map_data("M", "C", [("X", "V")])
        engine.register_definition(d)
        iid = engine.start_process("P", starter="ada")
        engine.run()
        engine.force_finish(
            iid, "M", return_code=0, output_values={"X": 99}, user="ada"
        )
        assert received["v"] == 99


class TestSchedulingEdges:
    def test_run_max_steps_guard(self):
        engine = Engine()
        engine.register_program("loop", lambda ctx: 1)
        d = ProcessDefinition("P")
        d.add_activity(
            Activity("T", program="loop", exit_condition="RC = 0")
        )
        engine.register_definition(d)
        engine.start_process("P")
        with pytest.raises(NavigationError, match="quiesce"):
            engine.run(max_steps=10)

    def test_has_ready_work_tracks_queue(self):
        engine = Engine()
        engine.register_program("ok", lambda ctx: 0)
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="ok"))
        engine.register_definition(d)
        assert not engine.navigator.has_ready_work()
        engine.start_process("P")
        assert engine.navigator.has_ready_work()
        engine.run()
        assert not engine.navigator.has_ready_work()

    def test_stale_queue_entry_after_force_finish(self):
        engine = Engine()
        engine.register_program("ok", lambda ctx: 0)
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="ok"))
        d.add_activity(Activity("B", program="ok"))
        engine.register_definition(d)
        iid = engine.start_process("P")
        # A and B are both queued; force-finish A before stepping.
        engine.navigator.force_finish(iid, "A", return_code=0)
        engine.run()
        assert engine.instance_state(iid) == "finished"
        # A executed zero times (forced), B once.
        assert engine.audit.attempts(iid, "B") == 1

    def test_clock_visible_in_audit(self):
        engine = Engine()
        engine.register_program("ok", lambda ctx: 0)
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="ok"))
        engine.register_definition(d)
        engine.advance_clock(42.0)
        iid = engine.start_process("P")
        engine.run()
        records = engine.audit.records(iid)
        assert all(r.at == 42.0 for r in records)
