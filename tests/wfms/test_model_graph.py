"""Unit tests for the static metamodel and graph validation."""

import pytest

from repro.errors import DefinitionError
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.graph import (
    reachable_activities,
    topological_order,
    unreachable_activities,
    validate_definition,
)
from repro.wfms.model import (
    PROCESS_INPUT,
    PROCESS_OUTPUT,
    Activity,
    ActivityKind,
    ProcessDefinition,
    StartCondition,
    StartMode,
)


def simple_definition():
    d = ProcessDefinition("P")
    d.add_activity(Activity("A", program="pa"))
    d.add_activity(Activity("B", program="pb"))
    d.connect("A", "B")
    return d


class TestActivity:
    def test_program_activity_requires_program(self):
        with pytest.raises(DefinitionError):
            Activity("A")

    def test_process_activity_requires_subprocess(self):
        with pytest.raises(DefinitionError):
            Activity("A", kind=ActivityKind.PROCESS)

    def test_block_requires_embedded_definition(self):
        with pytest.raises(DefinitionError):
            Activity("A", kind=ActivityKind.BLOCK)

    def test_exit_condition_parsed_from_string(self):
        a = Activity("A", program="p", exit_condition="RC = 0")
        assert a.exit_condition.source == "RC = 0"

    def test_duplicate_container_members_rejected(self):
        with pytest.raises(DefinitionError):
            Activity(
                "A",
                program="p",
                input_spec=[VariableDecl("x"), VariableDecl("x")],
            )

    def test_manual_flag(self):
        assert Activity("A", program="p", start_mode=StartMode.MANUAL).is_manual
        assert not Activity("A", program="p").is_manual


class TestProcessDefinition:
    def test_duplicate_activity_rejected(self):
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="p"))
        with pytest.raises(DefinitionError):
            d.add_activity(Activity("A", program="p"))

    def test_reserved_names_rejected(self):
        d = ProcessDefinition("P")
        with pytest.raises(DefinitionError):
            d.add_activity(Activity(PROCESS_INPUT, program="p"))

    def test_duplicate_connector_rejected(self):
        d = simple_definition()
        with pytest.raises(DefinitionError):
            d.connect("A", "B")

    def test_self_loop_rejected(self):
        d = simple_definition()
        with pytest.raises(DefinitionError):
            d.connect("A", "A")

    def test_starting_activities(self):
        d = simple_definition()
        d.add_activity(Activity("C", program="pc"))
        assert sorted(d.starting_activities()) == ["A", "C"]

    def test_incoming_outgoing(self):
        d = simple_definition()
        assert [c.target for c in d.outgoing("A")] == ["B"]
        assert [c.source for c in d.incoming("B")] == ["A"]

    def test_program_names_recurse_into_blocks(self):
        inner = ProcessDefinition("Inner")
        inner.add_activity(Activity("I", program="pi"))
        d = simple_definition()
        d.add_activity(Activity("Blk", kind=ActivityKind.BLOCK, block=inner))
        assert d.program_names() == {"pa", "pb", "pi"}

    def test_subprocess_names(self):
        d = simple_definition()
        d.add_activity(Activity("Sub", kind=ActivityKind.PROCESS, subprocess="Q"))
        assert d.subprocess_names() == {"Q"}

    def test_empty_data_connector_rejected(self):
        d = simple_definition()
        with pytest.raises(DefinitionError):
            d.map_data("A", "B", [])

    def test_process_output_cannot_be_source(self):
        d = simple_definition()
        with pytest.raises(DefinitionError):
            d.map_data(PROCESS_OUTPUT, "B", [("x", "y")])


class TestGraphValidation:
    def test_valid_definition_passes(self):
        validate_definition(simple_definition())

    def test_empty_definition_rejected(self):
        with pytest.raises(DefinitionError):
            validate_definition(ProcessDefinition("P"))

    def test_cycle_rejected(self):
        d = ProcessDefinition("P")
        for name in "ABC":
            d.add_activity(Activity(name, program="p"))
        d.connect("A", "B")
        d.connect("B", "C")
        d.connect("C", "A")
        with pytest.raises(DefinitionError, match="cycle"):
            validate_definition(d)

    def test_unknown_connector_endpoint_rejected(self):
        d = simple_definition()
        d.control_connectors.append(
            type(d.control_connectors[0])("B", "Ghost")
        )
        with pytest.raises(DefinitionError, match="Ghost"):
            validate_definition(d)

    def test_topological_order_respects_edges(self):
        d = ProcessDefinition("P")
        for name in "ABCD":
            d.add_activity(Activity(name, program="p"))
        d.connect("A", "C")
        d.connect("B", "C")
        d.connect("C", "D")
        order = topological_order(d)
        assert order.index("A") < order.index("C") < order.index("D")
        assert order.index("B") < order.index("C")

    def test_data_connector_unknown_source_member(self):
        d = simple_definition()
        d.activity("A").output_spec.append(VariableDecl("X", DataType.LONG))
        d.map_data("A", "B", [("Ghost", "Y")])
        with pytest.raises(DefinitionError, match="Ghost"):
            validate_definition(d)

    def test_data_connector_unknown_target_member(self):
        d = simple_definition()
        d.activity("A").output_spec.append(VariableDecl("X", DataType.LONG))
        d.map_data("A", "B", [("X", "Ghost")])
        with pytest.raises(DefinitionError, match="Ghost"):
            validate_definition(d)

    def test_data_connector_rc_is_predefined_source(self):
        d = simple_definition()
        d.activity("B").input_spec.append(VariableDecl("PrevRC", DataType.LONG))
        d.map_data("A", "B", [("_RC", "PrevRC")])
        validate_definition(d)

    def test_transition_condition_must_read_source_output(self):
        d = simple_definition()
        d.control_connectors[0] = type(d.control_connectors[0])(
            "A", "B", "Ghost = 1"
        )
        with pytest.raises(DefinitionError, match="Ghost"):
            validate_definition(d)

    def test_transition_condition_rc_allowed(self):
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="p"))
        d.add_activity(Activity("B", program="p"))
        d.connect("A", "B", "RC = 0")
        validate_definition(d)

    def test_exit_condition_must_read_own_output(self):
        d = ProcessDefinition("P")
        d.add_activity(
            Activity("A", program="p", exit_condition="Ghost = 1")
        )
        with pytest.raises(DefinitionError, match="Ghost"):
            validate_definition(d)

    def test_exit_condition_declared_member_allowed(self):
        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "A",
                program="p",
                output_spec=[VariableDecl("Done", DataType.LONG)],
                exit_condition="Done = 1",
            )
        )
        validate_definition(d)

    def test_nested_block_validated(self):
        bad_inner = ProcessDefinition("Inner")
        bad_inner.add_activity(Activity("X", program="p"))
        bad_inner.add_activity(Activity("Y", program="p"))
        bad_inner.connect("X", "Y")
        bad_inner.connect("Y", "X")  # cycle inside the block
        d = ProcessDefinition("P")
        d.add_activity(Activity("Blk", kind=ActivityKind.BLOCK, block=bad_inner))
        with pytest.raises(DefinitionError, match="cycle"):
            validate_definition(d)

    def test_reachability_helpers(self):
        d = ProcessDefinition("P")
        for name in "ABC":
            d.add_activity(Activity(name, program="p"))
        d.connect("A", "B")
        # C has no incoming connector: it is itself a starting activity.
        assert reachable_activities(d) == {"A", "B", "C"}
        assert unreachable_activities(d) == set()

    def test_start_condition_enum_values(self):
        a = Activity("A", program="p", start_condition=StartCondition.ANY)
        assert a.start_condition is StartCondition.ANY
