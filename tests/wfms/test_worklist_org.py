"""Tests for the organization model, staff resolution and worklists
(§3.3 — the features "not found in any transaction model")."""

import pytest

from repro.errors import (
    DefinitionError,
    StaffResolutionError,
    WorklistError,
)
from repro.wfms import Activity, Engine, ProcessDefinition
from repro.wfms.model import StaffAssignment, StartMode
from repro.wfms.organization import Organization, demo_organization
from repro.wfms.worklist import WorkItemState, WorklistManager


class TestOrganization:
    def test_person_with_several_roles(self):
        org = demo_organization()
        assert org.person("cleo").roles == {"clerk", "dba"}

    def test_role_with_several_persons(self):
        org = demo_organization()
        assert org.members_of("clerk") == ["bob", "cleo"]

    def test_unknown_role_rejected(self):
        org = Organization()
        with pytest.raises(DefinitionError):
            org.add_person("x", roles=("ghost",))
        with pytest.raises(DefinitionError):
            org.members_of("ghost")

    def test_duplicate_person_rejected(self):
        org = demo_organization()
        with pytest.raises(DefinitionError):
            org.add_person("ada")

    def test_absent_persons_excluded(self):
        org = demo_organization()
        org.set_absent("bob")
        assert org.members_of("clerk") == ["cleo"]

    def test_chain_of_command(self):
        org = demo_organization()
        assert org.chain_of_command("bob") == ["ada"]
        assert org.chain_of_command("ada") == []

    def test_assign_role_later(self):
        org = demo_organization()
        org.assign_role("bob", "dba")
        assert "bob" in org.members_of("dba")

    def test_resolve_by_role(self):
        org = demo_organization()
        users = org.resolve(StaffAssignment(roles=("clerk",)))
        assert users == ["bob", "cleo"]

    def test_resolve_by_explicit_users(self):
        org = demo_organization()
        assert org.resolve(StaffAssignment(users=("dan",))) == ["dan"]

    def test_resolve_users_win_over_roles(self):
        org = demo_organization()
        assignment = StaffAssignment(roles=("clerk",), users=("dan",))
        assert org.resolve(assignment) == ["dan"]

    def test_resolve_falls_back_to_starter(self):
        org = demo_organization()
        assert org.resolve(StaffAssignment(), starter="ada") == ["ada"]

    def test_resolve_nobody_raises(self):
        org = demo_organization()
        org.set_absent("dan")
        with pytest.raises(StaffResolutionError):
            org.resolve(StaffAssignment(users=("dan",)))

    def test_resolve_multi_role_deduplicates(self):
        org = demo_organization()
        users = org.resolve(StaffAssignment(roles=("clerk", "dba")))
        assert users == ["bob", "cleo", "dan"]


class TestWorklistManager:
    def make_item(self, wm, eligible=("bob", "cleo")):
        return wm.offer("pi-1", "Act", "P", list(eligible), now=0.0)

    def test_item_visible_on_all_eligible_worklists(self):
        wm = WorklistManager()
        item = self.make_item(wm)
        assert [i.item_id for i in wm.worklist("bob")] == [item.item_id]
        assert [i.item_id for i in wm.worklist("cleo")] == [item.item_id]
        assert wm.worklist("dan") == []

    def test_claim_removes_from_other_worklists(self):
        # §3.3: "as soon as a user selects that activity for execution,
        # it disappears from all other worklists".
        wm = WorklistManager()
        item = self.make_item(wm)
        wm.claim(item.item_id, "bob")
        assert wm.worklist("cleo") == []
        assert wm.worklist("bob") == []  # claimed items leave the list too
        assert item.claimed_by == "bob"

    def test_double_claim_rejected(self):
        wm = WorklistManager()
        item = self.make_item(wm)
        wm.claim(item.item_id, "bob")
        with pytest.raises(WorklistError):
            wm.claim(item.item_id, "cleo")

    def test_ineligible_claim_rejected(self):
        wm = WorklistManager()
        item = self.make_item(wm)
        with pytest.raises(WorklistError):
            wm.claim(item.item_id, "dan")

    def test_release_returns_item_to_worklists(self):
        wm = WorklistManager()
        item = self.make_item(wm)
        wm.claim(item.item_id, "bob")
        wm.release(item.item_id)
        assert len(wm.worklist("cleo")) == 1

    def test_withdraw_marks_item(self):
        wm = WorklistManager()
        item = self.make_item(wm)
        wm.withdraw("pi-1", "Act")
        assert item.state is WorkItemState.WITHDRAWN
        assert wm.worklist("bob") == []

    def test_priority_ordering(self):
        wm = WorklistManager()
        low = wm.offer("pi-1", "Low", "P", ["bob"], now=0.0, priority=1)
        high = wm.offer("pi-1", "High", "P", ["bob"], now=1.0, priority=9)
        ids = [i.item_id for i in wm.worklist("bob")]
        assert ids == [high.item_id, low.item_id]

    def test_deadline_notification_raised_once(self):
        wm = WorklistManager()
        wm.offer(
            "pi-1", "Act", "P", ["bob"], now=0.0,
            notify_after=5.0, notify_role="manager",
        )
        assert wm.check_deadlines(1.0, lambda r: ["ada"]) == []
        raised = wm.check_deadlines(6.0, lambda r: ["ada"])
        assert len(raised) == 1
        assert raised[0].recipients == ("ada",)
        assert wm.check_deadlines(9.0, lambda r: ["ada"]) == []

    def test_unknown_item(self):
        wm = WorklistManager()
        with pytest.raises(WorklistError):
            wm.claim("wi-999999", "bob")


class TestManualActivitiesEndToEnd:
    def build(self):
        engine = Engine(organization=demo_organization())
        ran = []

        def record(ctx):
            ran.append((ctx.activity, ctx.user))
            return 0

        engine.register_program("record", record)
        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "Approve",
                program="record",
                start_mode=StartMode.MANUAL,
                staff=StaffAssignment(roles=("clerk",)),
            )
        )
        d.add_activity(Activity("Ship", program="record"))
        d.connect("Approve", "Ship", "RC = 0")
        engine.register_definition(d)
        return engine, ran

    def test_manual_activity_waits_for_user(self):
        engine, ran = self.build()
        iid = engine.start_process("P", starter="ada")
        engine.run()
        assert engine.instance_state(iid) == "running"
        assert ran == []
        assert len(engine.worklist("bob")) == 1
        assert len(engine.worklist("cleo")) == 1

    def test_claim_and_start_executes_as_user(self):
        engine, ran = self.build()
        iid = engine.start_process("P", starter="ada")
        engine.run()
        item = engine.worklist("bob")[0]
        engine.claim(item.item_id, "bob")
        assert engine.worklist("cleo") == []  # load balancing
        engine.start_item(item.item_id)
        assert engine.instance_state(iid) == "finished"
        assert ran == [("Approve", "bob"), ("Ship", "")]

    def test_dead_path_withdraws_offered_items(self):
        engine = Engine(organization=demo_organization())
        engine.register_program("fail", lambda ctx: 1)
        engine.register_program("noop", lambda ctx: 0)
        d = ProcessDefinition("P")
        d.add_activity(Activity("Gate", program="fail"))
        d.add_activity(
            Activity(
                "Manual",
                program="noop",
                start_mode=StartMode.MANUAL,
                staff=StaffAssignment(roles=("clerk",)),
            )
        )
        d.connect("Gate", "Manual", "RC = 0")
        engine.register_definition(d)
        iid = engine.start_process("P", starter="ada")
        engine.run()
        assert engine.instance_state(iid) == "finished"
        assert engine.worklist("bob") == []

    def test_notification_escalates_to_role(self):
        engine = Engine(organization=demo_organization())
        engine.register_program("noop", lambda ctx: 0)
        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "Slow",
                program="noop",
                start_mode=StartMode.MANUAL,
                staff=StaffAssignment(
                    roles=("clerk",), notify_after=10.0, notify_role="manager"
                ),
            )
        )
        engine.register_definition(d)
        engine.start_process("P", starter="ada")
        engine.run()
        assert engine.advance_clock(5.0) == []
        notifications = engine.advance_clock(6.0)
        assert len(notifications) == 1
        assert notifications[0].recipients == ("ada",)

    def test_engine_without_org_runs_manual_as_automatic(self):
        # Engines used purely as transaction-model substrates have no
        # organization; manual activities fall back to automatic.
        engine = Engine()
        engine.register_program("noop", lambda ctx: 0)
        d = ProcessDefinition("P")
        d.add_activity(
            Activity("M", program="noop", start_mode=StartMode.MANUAL)
        )
        engine.register_definition(d)
        result = engine.run_process("P")
        assert result.finished
