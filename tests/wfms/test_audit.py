"""Unit tests for the audit trail."""

from repro.wfms.audit import (
    AuditEvent,
    AuditRecord,
    AuditTrail,
    merge_orders,
)


def make_trail():
    trail = AuditTrail()
    trail.record(0.0, AuditEvent.PROCESS_STARTED, "pi-1")
    trail.record(1.0, AuditEvent.ACTIVITY_READY, "pi-1", "A")
    trail.record(2.0, AuditEvent.ACTIVITY_STARTED, "pi-1", "A", attempt=1)
    trail.record(3.0, AuditEvent.ACTIVITY_FINISHED, "pi-1", "A", rc=0)
    trail.record(4.0, AuditEvent.ACTIVITY_TERMINATED, "pi-1", "A", rc=0)
    trail.record(5.0, AuditEvent.ACTIVITY_DEAD, "pi-1", "B")
    trail.record(6.0, AuditEvent.PROCESS_STARTED, "pi-2")
    trail.record(7.0, AuditEvent.ACTIVITY_STARTED, "pi-2", "A", attempt=1)
    trail.record(8.0, AuditEvent.ACTIVITY_STARTED, "pi-2", "A", attempt=2)
    trail.record(9.0, AuditEvent.PROCESS_FINISHED, "pi-1")
    return trail


class TestAuditTrail:
    def test_records_are_sequenced(self):
        trail = make_trail()
        sequences = [r.sequence for r in trail]
        assert sequences == sorted(sequences)
        assert len(trail) == 10

    def test_filter_by_instance(self):
        trail = make_trail()
        assert all(
            r.instance_id == "pi-2" for r in trail.records("pi-2")
        )
        assert len(trail.records("pi-2")) == 3

    def test_filter_by_event(self):
        trail = make_trail()
        starts = trail.records(event=AuditEvent.PROCESS_STARTED)
        assert [r.instance_id for r in starts] == ["pi-1", "pi-2"]

    def test_filter_by_activity(self):
        trail = make_trail()
        records = trail.records("pi-1", activity="A")
        assert {r.event for r in records} == {
            AuditEvent.ACTIVITY_READY,
            AuditEvent.ACTIVITY_STARTED,
            AuditEvent.ACTIVITY_FINISHED,
            AuditEvent.ACTIVITY_TERMINATED,
        }

    def test_execution_order_excludes_dead(self):
        trail = make_trail()
        assert trail.execution_order("pi-1") == ["A"]
        assert trail.dead_activities("pi-1") == ["B"]

    def test_attempts_counts_starts(self):
        trail = make_trail()
        assert trail.attempts("pi-2", "A") == 2
        assert trail.attempts("pi-1", "A") == 1
        assert trail.attempts("pi-1", "Z") == 0

    def test_started_order(self):
        trail = make_trail()
        assert trail.started_order("pi-2") == ["A", "A"]

    def test_record_to_dict(self):
        record = AuditRecord(
            3, 1.5, AuditEvent.ACTIVITY_FINISHED, "pi-1", "A", {"rc": 0}
        )
        data = record.to_dict()
        assert data == {
            "sequence": 3,
            "at": 1.5,
            "event": "activity_finished",
            "instance_id": "pi-1",
            "activity": "A",
            "detail": {"rc": 0},
        }

    def test_merge_orders(self):
        assert merge_orders([["a", "b"], [], ["c"]]) == ["a", "b", "c"]
