"""Redelivery bookkeeping on the message bus: nack, crash recovery,
delivery counters and dead-letter semantics."""

import pytest

from repro.errors import WorkflowError
from repro.wfms.messaging import MessageBus, dlq_name


class TestNackRedelivery:
    def test_nack_returns_message_for_redelivery(self):
        bus = MessageBus()
        msg_id = bus.send("q", {"n": 1})
        assert bus.receive("q")[0] == msg_id
        assert bus.receive("q") is None  # in flight: not deliverable
        bus.nack("q", msg_id)
        again = bus.receive("q")
        assert again[0] == msg_id and again[1] == {"n": 1}

    def test_deliveries_counts_every_delivery(self):
        bus = MessageBus()
        msg_id = bus.send("q", {"n": 1})
        assert bus.deliveries("q", msg_id) == 0
        bus.receive("q")
        assert bus.deliveries("q", msg_id) == 1
        bus.nack("q", msg_id)
        bus.receive("q")
        assert bus.deliveries("q", msg_id) == 2

    def test_nack_of_unknown_message_raises(self):
        bus = MessageBus()
        with pytest.raises(WorkflowError, match="unknown message"):
            bus.nack("q", "m999999")

    def test_stats_track_the_redelivery_loop(self):
        bus = MessageBus()
        a = bus.send("q", {"n": 1})
        b = bus.send("q", {"n": 2})
        bus.receive("q")
        bus.receive("q")
        bus.ack("q", a)
        bus.nack("q", b)
        bus.receive("q")  # b again
        bus.ack("q", b)
        stats = bus.stats("q")
        assert stats["sent"] == 2
        assert stats["delivered"] == 3
        assert stats["acked"] == 2
        assert stats["nacked"] == 1
        assert stats["redelivered"] == 1

    def test_stats_of_unknown_queue_are_all_zero(self):
        stats = MessageBus().stats("nowhere")
        assert set(stats.values()) == {0}


class TestCrashRecovery:
    def test_recover_in_flight_restores_deliverability(self):
        bus = MessageBus()
        bus.send("q", {"n": 1})
        bus.send("q", {"n": 2})
        bus.receive("q")
        bus.receive("q")
        assert bus.receive("q") is None
        assert bus.recover_in_flight("q") == 2
        assert bus.receive("q")[1] == {"n": 1}  # original order kept

    def test_recover_all_queues(self):
        bus = MessageBus()
        bus.send("a", {"n": 1})
        bus.send("b", {"n": 2})
        bus.receive("a")
        bus.receive("b")
        assert bus.recover_in_flight() == 2

    def test_recovered_message_counts_as_redelivered(self):
        bus = MessageBus()
        msg_id = bus.send("q", {"n": 1})
        bus.receive("q")
        bus.recover_in_flight("q")
        bus.receive("q")
        assert bus.deliveries("q", msg_id) == 2
        assert bus.stats("q")["redelivered"] == 1


class TestDeadLetter:
    def test_dead_letter_moves_in_flight_message(self):
        bus = MessageBus()
        msg_id = bus.send("q", {"n": 1}, headers={"h": "v"})
        bus.receive("q")
        target = bus.dead_letter("q", msg_id, "poison")
        assert target == dlq_name("q") == "dlq:q"
        assert bus.depth("q") == 0
        assert bus.depth("dlq:q") == 1
        taken = bus.receive_with_headers("dlq:q")
        assert taken[0] == msg_id
        assert taken[1] == {"n": 1}
        assert taken[2]["h"] == "v"
        assert taken[2]["dead-letter-reason"] == "poison"
        assert bus.stats("q")["dead_lettered"] == 1
        assert bus.stats("dlq:q")["sent"] == 1

    def test_dead_letter_requires_in_flight(self):
        bus = MessageBus()
        msg_id = bus.send("q", {"n": 1})
        with pytest.raises(WorkflowError, match="not in flight"):
            bus.dead_letter("q", msg_id, "r")
        with pytest.raises(WorkflowError, match="unknown message"):
            bus.dead_letter("q", "m999999", "r")


class TestPerQueueStats:
    """Counters must be attributed to the queue the event happened on,
    even when several queues are being routed through one bus — the
    sharded engine's monitoring view depends on this."""

    def _route(self, bus):
        """Two queues with different fates: alpha's message is nacked
        and redelivered, beta's is poisoned into its DLQ."""
        a = bus.send("alpha", {"n": 1})
        b = bus.send("beta", {"n": 2})
        bus.receive("alpha")
        bus.nack("alpha", a)
        bus.receive("alpha")
        bus.ack("alpha", a)
        bus.receive("beta")
        bus.dead_letter("beta", b, "poison")
        return a, b

    def test_redelivered_counts_stay_per_queue(self):
        bus = MessageBus()
        self._route(bus)
        assert bus.stats("alpha")["redelivered"] == 1
        assert bus.stats("beta")["redelivered"] == 0

    def test_dead_lettered_counts_stay_per_queue(self):
        bus = MessageBus()
        self._route(bus)
        assert bus.stats("beta")["dead_lettered"] == 1
        assert bus.stats("alpha")["dead_lettered"] == 0
        assert bus.stats(dlq_name("beta"))["sent"] == 1
        assert dlq_name("alpha") not in bus.stats()

    def test_all_queues_view_is_keyed_by_name(self):
        bus = MessageBus()
        self._route(bus)
        stats = bus.stats()
        assert {"alpha", "beta", dlq_name("beta")} <= set(stats)
        assert stats["alpha"]["redelivered"] == 1
        assert stats["beta"]["dead_lettered"] == 1

    def test_global_recover_in_flight_attributes_per_queue(self):
        bus = MessageBus()
        bus.send("alpha", {"n": 1})
        bus.send("beta", {"n": 2})
        bus.receive("alpha")
        bus.receive("beta")
        assert bus.recover_in_flight() == 2
        bus.receive("alpha")
        bus.receive("beta")
        assert bus.stats("alpha")["redelivered"] == 1
        assert bus.stats("beta")["redelivered"] == 1
        assert bus.stats("alpha")["sent"] == 1
        assert bus.stats("beta")["sent"] == 1
