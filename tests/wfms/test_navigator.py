"""Integration tests for the navigator state machine (§3.2 semantics)."""

import pytest

from repro.errors import NavigationError
from repro.wfms import (
    Activity,
    ActivityKind,
    DataType,
    Engine,
    ProcessDefinition,
    StartCondition,
    VariableDecl,
)
from repro.wfms.audit import AuditEvent
from repro.wfms.model import PROCESS_INPUT, PROCESS_OUTPUT


def make_engine(**programs):
    engine = Engine()
    engine.register_program("ok", lambda ctx: 0)
    engine.register_program("fail", lambda ctx: 1)
    for name, program in programs.items():
        engine.register_program(name, program)
    return engine


class TestSequencing:
    def test_linear_sequence_runs_in_order(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        for name in "ABC":
            d.add_activity(Activity(name, program="ok"))
        d.connect("A", "B")
        d.connect("B", "C")
        engine.register_definition(d)
        result = engine.run_process("P")
        assert result.finished
        assert result.execution_order == ["A", "B", "C"]

    def test_parallel_branches_both_execute(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        for name in ("Split", "Left", "Right", "Join"):
            d.add_activity(Activity(name, program="ok"))
        d.connect("Split", "Left")
        d.connect("Split", "Right")
        d.connect("Left", "Join")
        d.connect("Right", "Join")
        engine.register_definition(d)
        result = engine.run_process("P")
        assert result.finished
        assert set(result.execution_order) == {"Split", "Left", "Right", "Join"}
        assert result.execution_order[-1] == "Join"

    def test_multiple_starting_activities(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="ok"))
        d.add_activity(Activity("B", program="ok"))
        engine.register_definition(d)
        result = engine.run_process("P")
        assert set(result.execution_order) == {"A", "B"}


class TestJoins:
    def build_join(self, start_condition, left_rc=0, right_rc=0):
        engine = make_engine(
            left=lambda ctx: left_rc, right=lambda ctx: right_rc
        )
        d = ProcessDefinition("P")
        d.add_activity(Activity("L", program="left"))
        d.add_activity(Activity("R", program="right"))
        d.add_activity(
            Activity("J", program="ok", start_condition=start_condition)
        )
        d.connect("L", "J", "RC = 0")
        d.connect("R", "J", "RC = 0")
        engine.register_definition(d)
        return engine, engine.run_process("P")

    def test_and_join_fires_when_all_true(self):
        __, result = self.build_join(StartCondition.ALL)
        assert "J" in result.execution_order

    def test_and_join_dead_when_any_false(self):
        __, result = self.build_join(StartCondition.ALL, left_rc=1)
        assert "J" in result.dead_activities
        assert result.finished

    def test_or_join_fires_on_first_true(self):
        __, result = self.build_join(StartCondition.ANY, left_rc=1)
        assert "J" in result.execution_order

    def test_or_join_dead_when_all_false(self):
        __, result = self.build_join(
            StartCondition.ANY, left_rc=1, right_rc=1
        )
        assert "J" in result.dead_activities

    def test_or_join_executes_once_despite_two_trues(self):
        engine, result = self.build_join(StartCondition.ANY)
        assert result.execution_order.count("J") == 1
        assert engine.audit.attempts(result.instance_id, "J") == 1


class TestDeadPathElimination:
    def test_dead_path_cascades(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        for name in "ABCD":
            d.add_activity(Activity(name, program="ok"))
        d.activities["A"].program = "fail"
        d.connect("A", "B", "RC = 0")
        d.connect("B", "C")
        d.connect("C", "D")
        engine.register_definition(d)
        result = engine.run_process("P")
        assert result.finished
        assert result.execution_order == ["A"]
        assert result.dead_activities == ["B", "C", "D"]

    def test_dead_branch_still_lets_or_join_fire(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="fail"))
        d.add_activity(Activity("B", program="ok"))
        d.add_activity(
            Activity("J", program="ok", start_condition=StartCondition.ANY)
        )
        d.connect("A", "J", "RC = 0")
        d.connect("B", "J", "RC = 0")
        engine.register_definition(d)
        result = engine.run_process("P")
        assert "J" in result.execution_order

    def test_process_finishes_with_all_paths_dead(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="fail"))
        d.add_activity(Activity("B", program="ok"))
        d.connect("A", "B", "RC = 0")
        engine.register_definition(d)
        result = engine.run_process("P")
        assert result.finished


class TestExitConditions:
    def test_loop_until_exit_condition_holds(self):
        attempts = []

        def flaky(ctx):
            attempts.append(ctx.attempt)
            return 0 if ctx.attempt >= 4 else 1

        engine = make_engine(flaky=flaky)
        d = ProcessDefinition("P")
        d.add_activity(
            Activity("T", program="flaky", exit_condition="RC = 0")
        )
        engine.register_definition(d)
        result = engine.run_process("P")
        assert result.finished
        assert attempts == [1, 2, 3, 4]
        rescheduled = engine.audit.records(
            result.instance_id, AuditEvent.ACTIVITY_RESCHEDULED
        )
        assert len(rescheduled) == 3

    def test_max_iterations_guard(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "T", program="fail", exit_condition="RC = 0", max_iterations=5
            )
        )
        engine.register_definition(d)
        engine.start_process("P")
        with pytest.raises(NavigationError, match="5 iterations"):
            engine.run()

    def test_exit_condition_over_output_member(self):
        def produce(ctx):
            ctx.set_output("Done", 1 if ctx.attempt >= 2 else 0)
            return 0

        engine = make_engine(produce=produce)
        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "T",
                program="produce",
                output_spec=[VariableDecl("Done", DataType.LONG)],
                exit_condition="Done = 1",
            )
        )
        engine.register_definition(d)
        result = engine.run_process("P")
        assert result.finished
        assert engine.audit.attempts(result.instance_id, "T") == 2


class TestDataFlow:
    def test_output_to_input_mapping(self):
        def producer(ctx):
            ctx.set_output("X", 41)
            return 0

        received = {}

        def consumer(ctx):
            received["x"] = ctx.get_input("Seed")
            return 0

        engine = make_engine(producer=producer, consumer=consumer)
        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "A",
                program="producer",
                output_spec=[VariableDecl("X", DataType.LONG)],
            )
        )
        d.add_activity(
            Activity(
                "B",
                program="consumer",
                input_spec=[VariableDecl("Seed", DataType.LONG)],
            )
        )
        d.connect("A", "B")
        d.map_data("A", "B", [("X", "Seed")])
        engine.register_definition(d)
        engine.run_process("P")
        assert received["x"] == 41

    def test_process_input_and_output_containers(self):
        def doubler(ctx):
            ctx.set_output("Out", ctx.get_input("In") * 2)
            return 0

        engine = make_engine(doubler=doubler)
        d = ProcessDefinition(
            "P",
            input_spec=[VariableDecl("N", DataType.LONG)],
            output_spec=[VariableDecl("Result", DataType.LONG)],
        )
        d.add_activity(
            Activity(
                "D",
                program="doubler",
                input_spec=[VariableDecl("In", DataType.LONG)],
                output_spec=[VariableDecl("Out", DataType.LONG)],
            )
        )
        d.map_data(PROCESS_INPUT, "D", [("N", "In")])
        d.map_data("D", PROCESS_OUTPUT, [("Out", "Result")])
        engine.register_definition(d)
        result = engine.run_process("P", {"N": 21})
        assert result.output["Result"] == 42

    def test_mapping_from_dead_source_leaves_defaults(self):
        received = {}

        def consumer(ctx):
            received["seed"] = ctx.get_input("Seed")
            return 0

        engine = make_engine(consumer=consumer)
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="fail"))
        d.add_activity(
            Activity(
                "Dead",
                program="ok",
                output_spec=[VariableDecl("X", DataType.LONG)],
            )
        )
        d.add_activity(
            Activity(
                "B",
                program="consumer",
                input_spec=[VariableDecl("Seed", DataType.LONG)],
                start_condition=StartCondition.ANY,
            )
        )
        d.connect("A", "Dead", "RC = 0")   # Dead is eliminated
        d.connect("A", "B", "RC = 1")      # B still runs
        d.connect("Dead", "B")
        d.map_data("Dead", "B", [("X", "Seed")])
        engine.register_definition(d)
        result = engine.run_process("P")
        assert result.finished
        assert received["seed"] == 0  # default: Dead never produced

    def test_rc_mappable_to_downstream_input(self):
        received = {}

        def consumer(ctx):
            received["rc"] = ctx.get_input("PrevRC")
            return 0

        engine = make_engine(consumer=consumer)
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="fail"))
        d.add_activity(
            Activity(
                "B",
                program="consumer",
                input_spec=[VariableDecl("PrevRC", DataType.LONG)],
            )
        )
        d.connect("A", "B")  # unconditional
        d.map_data("A", "B", [("_RC", "PrevRC")])
        engine.register_definition(d)
        engine.run_process("P")
        assert received["rc"] == 1


class TestUserOperations:
    def test_force_finish_skips_program(self):
        ran = []

        def record(ctx):
            ran.append(ctx.activity)
            return 0

        engine = make_engine(record=record)
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="record"))
        d.add_activity(Activity("B", program="record"))
        d.connect("A", "B", "RC = 0")
        engine.register_definition(d)
        iid = engine.start_process("P")
        engine.force_finish(iid, "A", return_code=0, user="ada")
        assert engine.instance_state(iid) == "finished"
        assert ran == ["B"]
        forced = engine.audit.records(iid, AuditEvent.ACTIVITY_FORCED)
        assert len(forced) == 1 and forced[0].detail["user"] == "ada"

    def test_force_finish_requires_ready_or_running(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="ok"))
        engine.register_definition(d)
        iid = engine.start_process("P")
        engine.run()
        with pytest.raises(NavigationError):
            engine.force_finish(iid, "A")

    def test_suspend_blocks_and_resume_continues(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="ok"))
        d.add_activity(Activity("B", program="ok"))
        d.connect("A", "B")
        engine.register_definition(d)
        iid = engine.start_process("P")
        engine.suspend(iid)
        engine.run()
        assert engine.instance_state(iid) == "suspended"
        assert engine.activity_states(iid)["A"] == "ready"
        engine.resume(iid)
        engine.run()
        assert engine.instance_state(iid) == "finished"

    def test_suspend_finished_instance_rejected(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="ok"))
        engine.register_definition(d)
        result = engine.run_process("P")
        with pytest.raises(NavigationError):
            engine.suspend(result.instance_id)


class TestScheduling:
    def test_priority_order(self):
        order = []

        def record(ctx):
            order.append(ctx.activity)
            return 0

        engine = make_engine(record=record)
        d = ProcessDefinition("P")
        d.add_activity(Activity("Low", program="record", priority=1))
        d.add_activity(Activity("High", program="record", priority=9))
        d.add_activity(Activity("Mid", program="record", priority=5))
        engine.register_definition(d)
        engine.run_process("P")
        assert order == ["High", "Mid", "Low"]

    def test_step_returns_false_when_idle(self):
        engine = make_engine()
        assert engine.step() is False

    def test_two_instances_interleave_independently(self):
        engine = make_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="ok"))
        engine.register_definition(d)
        i1 = engine.start_process("P")
        i2 = engine.start_process("P")
        engine.run()
        assert engine.instance_state(i1) == "finished"
        assert engine.instance_state(i2) == "finished"
        assert i1 != i2


class TestEngineChecks:
    def test_unknown_definition(self):
        engine = make_engine()
        with pytest.raises(Exception):
            engine.start_process("Ghost")

    def test_unregistered_program_caught_at_start(self):
        engine = Engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="missing"))
        engine.register_definition(d)
        with pytest.raises(Exception, match="missing"):
            engine.start_process("P")

    def test_duplicate_definition_rejected(self):
        # A *different* body under the same name/version is rejected;
        # a byte-identical one is an idempotent no-op (see the
        # registry tests for the full contract).
        engine = make_engine()
        d = ProcessDefinition("P")
        d.add_activity(Activity("A", program="ok"))
        engine.register_definition(d)
        d2 = ProcessDefinition("P")
        d2.add_activity(Activity("A", program="ok", priority=3))
        with pytest.raises(Exception):
            engine.register_definition(d2)
        identical = ProcessDefinition("P")
        identical.add_activity(Activity("A", program="ok"))
        engine.register_definition(identical)  # no-op
        assert engine.definition("P") is d
