"""Engine + DurableStore integration: checkpointed recovery replays
only the suffix, equals full-journal replay bit for bit, survives torn
snapshots, and archives finished roots out of live memory."""

import pytest

from repro.errors import JournalError, NavigationError, WorkflowError
from repro.resilience import FaultInjector, FaultRule
from repro.store import DurableStore
from repro.wfms import (
    Activity,
    DataType,
    Engine,
    ProcessDefinition,
    VariableDecl,
)
from repro.wfms.model import StaffAssignment, StartMode
from repro.wfms.organization import Organization


def make_org():
    org = Organization()
    org.add_role("clerk")
    org.add_person("ada", roles=("clerk",))
    return org


def register(engine, calls=None):
    def program(ctx):
        if calls is not None:
            calls.append(ctx.activity)
        ctx.set_output("X", len(calls) if calls is not None else 0)
        return 0

    engine.register_program("p", program)
    d = ProcessDefinition("Flow")
    for name in ("A", "B", "C"):
        d.add_activity(
            Activity(
                name,
                program="p",
                output_spec=[VariableDecl("X", DataType.LONG)],
            )
        )
    d.connect("A", "B")
    d.connect("B", "C")
    engine.register_definition(d)
    manual = ProcessDefinition("Manual")
    manual.add_activity(
        Activity(
            "Approve",
            program="p",
            start_mode=StartMode.MANUAL,
            staff=StaffAssignment(roles=("clerk",)),
            output_spec=[VariableDecl("X", DataType.LONG)],
        )
    )
    engine.register_definition(manual)
    return engine


def build(directory, *, every=3, injector=None, calls=None, **kwargs):
    store = DurableStore(directory, checkpoint_every_records=every, **kwargs)
    engine = Engine(
        organization=make_org(), fault_injector=injector, store=store
    )
    return register(engine, calls)


class TestCheckpointedRecovery:
    def test_recovery_replays_only_the_suffix(self, tmp_path):
        """The acceptance gate: after N completed instances, recovery
        consumes only the records past the last checkpoint — counted,
        not assumed."""
        engine = build(tmp_path, every=4)
        for __ in range(5):
            engine.start_process("Flow")
            engine.run()
        total = engine.store.journal.next_index
        covered = engine.store.status()["last_checkpoint_offset"]
        assert covered is not None and 0 < covered <= total
        engine.crash()

        rebuilt = build(tmp_path, every=4)
        rebuilt.recover()
        summary = rebuilt.store.last_recovery
        assert summary["checkpoint"] is not None
        assert summary["offset"] == covered
        assert summary["suffix_records"] == total - covered
        assert summary["suffix_records"] < total

    def test_recovered_state_equals_full_replay(self, tmp_path):
        """Checkpoint + suffix must reconstruct exactly what a plain
        full-journal engine reconstructs from the same history."""
        store_calls, plain_calls = [], []
        store_engine = build(tmp_path / "s", every=2, calls=store_calls)
        plain = Engine(
            journal_path=str(tmp_path / "plain.jsonl"),
            organization=make_org(),
        )
        register(plain, plain_calls)

        ids = []
        for engine in (store_engine, plain):
            for __ in range(3):
                iid = engine.start_process("Flow")
                engine.run()
            mid = engine.start_process("Manual", starter="ada")
            engine.run()
            ids.append(mid)
        assert ids[0] == ids[1]
        store_engine.crash()
        plain.crash()

        recovered = build(tmp_path / "s", every=2)
        recovered.recover()
        plain2 = Engine(
            journal_path=str(tmp_path / "plain.jsonl"),
            organization=make_org(),
        )
        register(plain2)
        plain2.recover()

        for n in range(1, 4):
            iid = "pi-%04d" % n
            assert recovered.instance_state(iid) == "finished"
            assert recovered.instance_state(iid) == plain2.instance_state(iid)
            assert recovered.output(iid) == plain2.output(iid)
            assert recovered.execution_order(iid) == plain2.execution_order(
                iid
            )
        mid = ids[0]
        assert recovered.instance_state(mid) == "running"
        assert recovered.activity_states(mid) == plain2.activity_states(mid)
        # the offered manual item survives in both worlds
        assert [i.item_id for i in recovered.worklist("ada")] == [
            i.item_id for i in plain2.worklist("ada")
        ]
        # and both engines finish the flow identically
        for engine in (recovered, plain2):
            item = engine.worklist("ada")[0]
            engine.claim(item.item_id, "ada")
            engine.start_item(item.item_id)
        assert recovered.instance_state(mid) == "finished"
        assert recovered.output(mid) == plain2.output(mid)

    def test_fresh_starts_never_collide_with_archived_ids(self, tmp_path):
        """Roots started *and* archived after the last checkpoint have
        no surviving journal records; the id sequence must still
        advance past them on recovery."""
        engine = build(tmp_path, every=1000)  # no automatic checkpoints
        engine.start_process("Flow")
        engine.run()
        engine.checkpoint()
        archived = []
        for __ in range(2):  # started + archived entirely post-checkpoint
            iid = engine.start_process("Flow")
            engine.run()
            archived.append(iid)
        engine.crash()

        rebuilt = build(tmp_path, every=1000)
        rebuilt.recover()
        fresh = rebuilt.start_process("Flow")
        assert fresh not in set(archived) | {"pi-0001"}
        rebuilt.run()
        assert rebuilt.instance_state(fresh) == "finished"
        for iid in archived:
            assert rebuilt.instance_state(iid) == "finished"

    def test_torn_snapshot_falls_back_to_previous(self, tmp_path):
        """A crash *during* snapshot write leaves a torn checkpoint
        file; recovery skips it and replays more from the previous one
        — longer replay, never wrong state."""
        injector = FaultInjector(
            [FaultRule("snapshot.write", schedule={2})], seed=1
        )
        engine = build(tmp_path, every=2, injector=injector)
        with pytest.raises(JournalError):
            # first checkpoint lands, the second tears mid-write
            engine.start_process("Flow")
            engine.run()
        assert engine.crashed

        rebuilt = build(tmp_path, every=2)
        rebuilt.recover()
        summary = rebuilt.store.last_recovery
        assert summary["skipped_checkpoints"] == 1  # the torn one
        assert summary["offset"] == 2  # back on the first checkpoint
        assert summary["suffix_records"] > 0  # longer replay, by count
        # pi-0001 finished and archived *before* the torn checkpoint;
        # the archive wins over the stale mid-flight copy in the older
        # snapshot, so the longer replay lands on the right answer
        assert summary["archived_skipped"] == 1
        assert rebuilt.instance_state("pi-0001") == "finished"
        assert rebuilt.output("pi-0001")["_RC"] == 0
        # and fresh work proceeds with a non-colliding id
        fresh = rebuilt.start_process("Flow")
        assert fresh != "pi-0001"
        rebuilt.run()
        assert rebuilt.instance_state(fresh) == "finished"

    def test_crash_during_compaction_preserves_journal(self, tmp_path):
        """An aborted compaction (pre-manifest-commit crash) must leave
        the full pre-compaction journal readable."""
        injector = FaultInjector([FaultRule("compact", schedule={1})], seed=1)
        engine = build(tmp_path, every=2, injector=injector)
        with pytest.raises(JournalError):
            engine.start_process("Flow")
            engine.run()  # checkpoint OK, its compaction dies
        assert engine.crashed

        rebuilt = build(tmp_path, every=2)
        rebuilt.recover()
        # the checkpoint itself was durable before the compaction died
        assert rebuilt.store.last_recovery["checkpoint"] is not None
        assert rebuilt.instance_state("pi-0001") == "running"
        rebuilt.run()
        assert rebuilt.instance_state("pi-0001") == "finished"


class TestArchiveIntegration:
    def test_finished_roots_leave_live_memory(self, tmp_path):
        engine = build(tmp_path)
        iid = engine.start_process("Flow")
        engine.run()
        with pytest.raises(NavigationError):
            engine.navigator.instance(iid)
        assert engine.audit.count(iid) == 0  # pruned with the archive
        # ...but every engine query still answers from the archive
        assert engine.instance_state(iid) == "finished"
        assert engine.output(iid)["_RC"] == 0
        assert engine.execution_order(iid) == ["A", "B", "C"]
        result = engine.result(iid)
        assert result.state == "finished"
        assert result.execution_order == ["A", "B", "C"]
        view = engine.monitor(iid)
        assert view["archived"] is True
        assert view["state"] == "finished"

    def test_archive_queries_back_monitoring(self, tmp_path):
        engine = build(tmp_path)
        for __ in range(3):
            engine.start_process("Flow")
            engine.run()
        archive = engine.store.archive
        assert len(archive) == 3
        assert archive.outcomes("Flow") == {0: 3}
        assert len(archive.by_definition("Flow")) == 3
        status = engine.store_status()
        assert status["archived_roots"] == 3
        assert status["archived_instances"] == 3

    def test_running_instances_stay_live(self, tmp_path):
        engine = build(tmp_path)
        iid = engine.start_process("Manual", starter="ada")
        engine.run()
        assert engine.instance_state(iid) == "running"
        assert iid not in engine.store.archive.ids()


class TestEngineStoreApi:
    def test_store_and_journal_path_mutually_exclusive(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        with pytest.raises(WorkflowError):
            Engine(journal_path=str(tmp_path / "j.jsonl"), store=store)

    def test_store_object_is_single_use(self, tmp_path):
        store = DurableStore(tmp_path / "s")
        register(Engine(store=store))
        with pytest.raises(WorkflowError):
            Engine(store=store)

    def test_manual_checkpoint_requires_store(self, tmp_path):
        engine = Engine(journal_path=str(tmp_path / "j.jsonl"))
        with pytest.raises(WorkflowError):
            engine.checkpoint()
        assert engine.store_status() == {"enabled": False}

    def test_checkpoint_every_validation(self, tmp_path):
        with pytest.raises(WorkflowError):
            DurableStore(tmp_path, checkpoint_every_records=0)
        store = DurableStore(tmp_path)
        store.checkpoint_every(5, interval=10.0)
        assert store._every_records == 5

    def test_interval_policy_checkpoints_on_clock(self, tmp_path):
        store = DurableStore(tmp_path, checkpoint_interval=10.0)
        engine = register(Engine(organization=make_org(), store=store))
        engine.start_process("Flow")
        engine.run()
        assert engine.store_status()["checkpoints"] == 0
        engine.advance_clock(11.0)
        engine.start_process("Flow")
        engine.run()
        assert engine.store_status()["checkpoints"] == 1

    def test_store_metrics_emitted(self, tmp_path):
        store = DurableStore(tmp_path, checkpoint_every_records=2)
        engine = register(
            Engine(organization=make_org(), store=store, observability=True)
        )
        engine.start_process("Flow")
        engine.run()
        names = {
            family["name"]: family
            for family in engine.obs.metrics.collect()
        }
        assert names["wfms_store_checkpoints_total"]["samples"][0]["value"] >= 1
        assert names["wfms_store_segments_live"]["samples"][0]["value"] >= 1
        assert names["wfms_store_archive_size"]["samples"][0]["value"] == 1
        assert any(
            span["name"] == "store.checkpoint"
            for span in engine.obs.tracer.export()
        )
