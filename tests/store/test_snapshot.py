"""Checkpoint capture/restore: round-trip fidelity, atomic writes,
and corruption falling back to "replay more", never "wrong state"."""

import json
import os

import pytest

from repro.errors import RecoveryError
from repro.store.snapshot import (
    FORMAT_VERSION,
    Checkpoint,
    capture_state,
    load_checkpoint,
    restore_state,
    write_checkpoint,
)
from repro.wfms import Activity, DataType, Engine, ProcessDefinition, VariableDecl
from repro.wfms.model import StaffAssignment, StartMode
from repro.wfms.organization import Organization


def build_engine():
    """A -> Approve(manual) -> C so execution pauses mid-process."""
    org = Organization()
    org.add_role("clerk")
    org.add_person("ada", roles=("clerk",))
    engine = Engine(organization=org)
    engine.register_program("p", lambda ctx: (ctx.set_output("X", 7), 0)[1])
    d = ProcessDefinition("P")
    d.add_activity(
        Activity("A", program="p", output_spec=[VariableDecl("X", DataType.LONG)])
    )
    d.add_activity(
        Activity(
            "Approve",
            program="p",
            start_mode=StartMode.MANUAL,
            staff=StaffAssignment(roles=("clerk",)),
        )
    )
    d.add_activity(Activity("C", program="p"))
    d.connect("A", "Approve")
    d.connect("Approve", "C")
    engine.register_definition(d)
    return engine


def fresh_like(engine):
    rebuilt = Engine(organization=engine.organization)
    rebuilt.register_program("p", lambda ctx: (ctx.set_output("X", 7), 0)[1])
    rebuilt.register_definition(engine.definition("P"))
    return rebuilt


class TestRoundTrip:
    def test_mid_execution_state_survives(self):
        engine = build_engine()
        iid = engine.start_process("P", starter="ada")
        engine.run()  # A done, Approve offered, C untouched
        assert engine.instance_state(iid) == "running"

        state = capture_state(engine.navigator, offset=5)
        rebuilt = fresh_like(engine)
        restored = restore_state(rebuilt.navigator, state)
        assert restored == 1

        assert rebuilt.instance_state(iid) == "running"
        assert rebuilt.activity_states(iid) == engine.activity_states(iid)
        instance = rebuilt.navigator.instance(iid)
        original = engine.navigator.instance(iid)
        assert instance.starter == original.starter
        ai = instance.activities["A"]
        assert ai.attempt == 1
        assert ai.output.get("X") == 7
        assert instance.activities["C"].attempt == 0
        assert rebuilt.navigator.clock == engine.navigator.clock

    def test_audit_and_sequence_survive(self):
        engine = build_engine()
        iid = engine.start_process("P", starter="ada")
        engine.run()
        state = capture_state(engine.navigator, offset=0)
        rebuilt = fresh_like(engine)
        restore_state(rebuilt.navigator, state)
        assert rebuilt.audit.count(iid) == engine.audit.count(iid)
        assert rebuilt.audit.next_sequence == engine.audit.next_sequence
        # the instance-id sequence continues, never collides
        next_id = rebuilt.start_process("P", starter="ada")
        assert next_id != iid

    def test_state_is_json_serializable(self):
        engine = build_engine()
        engine.start_process("P", starter="ada")
        engine.run()
        state = capture_state(engine.navigator, offset=3)
        json.dumps(state)  # must not raise

    def test_restore_requires_fresh_navigator(self):
        engine = build_engine()
        engine.start_process("P", starter="ada")
        engine.run()
        state = capture_state(engine.navigator, offset=0)
        with pytest.raises(RecoveryError):
            restore_state(engine.navigator, state)  # not fresh


class TestCheckpointFile:
    def _state(self):
        engine = build_engine()
        engine.start_process("P", starter="ada")
        engine.run()
        return capture_state(engine.navigator, offset=9)

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        state = self._state()
        write_checkpoint(path, state)
        assert load_checkpoint(path) == state
        checkpoint = Checkpoint.load(path)
        assert checkpoint.offset == 9
        assert checkpoint.instance_count == 1

    def test_write_is_atomic_no_temp_left(self, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(path, self._state())
        assert os.listdir(tmp_path) == ["ckpt.json"]

    def test_truncated_file_is_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(path, self._state())
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert load_checkpoint(path) is None

    def test_bitflip_fails_checksum(self, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(path, self._state())
        text = path.read_text(encoding="utf-8")
        assert '"clock": ' in text
        path.write_text(
            text.replace('"clock": ', '"clock": 1e9 + ', 1), encoding="utf-8"
        )
        assert load_checkpoint(path) is None

    def test_unknown_format_version_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(path, self._state())
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["format"] == FORMAT_VERSION
        document["format"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(document), encoding="utf-8")
        assert load_checkpoint(path) is None

    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.json") is None

    def test_corrupt_checkpoint_never_restores(self, tmp_path):
        """The contract: a damaged snapshot means *longer replay*,
        never silently wrong state — load yields None, not garbage."""
        path = tmp_path / "ckpt.json"
        write_checkpoint(path, self._state())
        path.write_text('{"format": 1, "state": "oops"}', encoding="utf-8")
        assert Checkpoint.load(path) is None
