"""Segmented journal: rotation, crash-safe manifests, compaction."""

import json
import os

import pytest

from repro.errors import RecoveryError
from repro.store.segments import MANIFEST_NAME, SegmentedJournal


def record(n, instance="pi-0001"):
    return {
        "type": "activity_completed",
        "instance": instance,
        "activity": "A%d" % n,
        "attempt": 1,
    }


def fill(journal, count, instance="pi-0001"):
    for n in range(count):
        journal.append(record(n, instance))


class TestSegments:
    def test_rotation_seals_and_indices_are_global(self, tmp_path):
        journal = SegmentedJournal(tmp_path)
        fill(journal, 3)
        journal.rotate()
        fill(journal, 2)
        assert journal.next_index == 5
        assert journal.segments_live == 2
        manifest = journal.manifest()
        sealed, active = manifest["segments"]
        assert sealed["first"] == 0 and sealed["count"] == 3
        assert active["first"] == 3 and active["count"] is None
        journal.close()

        reloaded = SegmentedJournal(tmp_path)
        assert reloaded.next_index == 5
        assert reloaded.records() == [record(n) for n in range(3)] + [
            record(n) for n in range(2)
        ]
        reloaded.close()

    def test_suffix_is_offset_aware(self, tmp_path):
        journal = SegmentedJournal(tmp_path)
        fill(journal, 6)
        journal.rotate()
        fill(journal, 2)
        assert journal.suffix(6) == [record(0), record(1)]
        assert journal.suffix(0) == journal.records()
        assert journal.suffix(99) == []
        journal.close()

    def test_empty_rotation_is_noop(self, tmp_path):
        journal = SegmentedJournal(tmp_path)
        journal.rotate()
        assert journal.segments_live == 1
        journal.close()

    def test_auto_rotation_at_segment_max(self, tmp_path):
        journal = SegmentedJournal(tmp_path, segment_max_records=2)
        fill(journal, 5)
        assert journal.segments_live == 3  # 2 + 2 + active(1)
        journal.close()

    def test_torn_active_tail_tolerated(self, tmp_path):
        journal = SegmentedJournal(tmp_path)
        fill(journal, 2)
        active = journal.manifest()["segments"][-1]["file"]
        journal.abandon()
        with open(tmp_path / active, "a", encoding="utf-8") as handle:
            handle.write('{"type": "activity_co')  # crash mid-append
        reloaded = SegmentedJournal(tmp_path)
        assert reloaded.next_index == 2
        reloaded.close()

    def test_corrupt_sealed_segment_raises(self, tmp_path):
        journal = SegmentedJournal(tmp_path)
        fill(journal, 3)
        journal.rotate()
        sealed = journal.manifest()["segments"][0]["file"]
        journal.close()
        path = tmp_path / sealed
        lines = path.read_text(encoding="utf-8").splitlines(True)
        lines[1] = lines[1][:10] + "\n"
        path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(RecoveryError):
            SegmentedJournal(tmp_path)

    def test_sealed_count_mismatch_raises(self, tmp_path):
        journal = SegmentedJournal(tmp_path)
        fill(journal, 3)
        journal.rotate()
        sealed = journal.manifest()["segments"][0]["file"]
        journal.close()
        path = tmp_path / sealed
        lines = path.read_text(encoding="utf-8").splitlines(True)
        path.write_text("".join(lines[:-1]), encoding="utf-8")  # lost record
        with pytest.raises(RecoveryError, match="count"):
            SegmentedJournal(tmp_path)

    def test_corrupt_manifest_raises(self, tmp_path):
        journal = SegmentedJournal(tmp_path)
        fill(journal, 1)
        journal.close()
        (tmp_path / MANIFEST_NAME).write_text('{"format": 99}')
        with pytest.raises(RecoveryError):
            SegmentedJournal(tmp_path)


class TestCompaction:
    def build(self, tmp_path):
        """Three sealed segments (0-2, 3-5, 6-8) + active (9-10),
        instance pi-0002's records interleaved in the second."""
        journal = SegmentedJournal(tmp_path)
        fill(journal, 3, "pi-0001")
        journal.rotate()
        journal.append(record(3, "pi-0001"))
        journal.append(record(4, "pi-0002"))
        journal.append(record(5, "pi-0002"))
        journal.rotate()
        fill(journal, 3, "pi-0003")
        journal.rotate()
        fill(journal, 2, "pi-0004")
        return journal

    def test_whole_segments_dropped(self, tmp_path):
        journal = self.build(tmp_path)
        stats = journal.compact(6)
        assert stats["segments_dropped"] == 2
        assert stats["records_dropped"] == 6
        assert journal.suffix(6) == journal.records()
        assert journal.next_index == 11
        journal.close()
        reloaded = SegmentedJournal(tmp_path)
        assert len(reloaded.records()) == 5
        assert reloaded.suffix(6)[0] == record(0, "pi-0003")
        reloaded.close()

    def test_straddler_rewritten_sparse(self, tmp_path):
        journal = self.build(tmp_path)
        # offset 4 straddles the second segment: index 3 is covered,
        # 4-5 live; pi-0002 is archived so its records drop too
        stats = journal.compact(4, drop_instances={"pi-0002"})
        assert stats["segments_dropped"] == 1
        assert stats["rewritten"] == 1
        # all of segment 2's records were covered or archived
        assert [r["instance"] for r in journal.records()] == [
            "pi-0003",
            "pi-0003",
            "pi-0003",
            "pi-0004",
            "pi-0004",
        ]
        journal.close()
        reloaded = SegmentedJournal(tmp_path)
        assert reloaded.records() == journal.records()
        assert reloaded.next_index == 11
        reloaded.close()

    def test_sparse_segment_round_trips(self, tmp_path):
        journal = self.build(tmp_path)
        journal.compact(4)  # keeps 4-5 in a sparse rewrite
        kept = journal.records()
        assert [r["instance"] for r in kept[:2]] == ["pi-0002", "pi-0002"]
        journal.close()
        reloaded = SegmentedJournal(tmp_path)
        assert reloaded.records() == kept
        assert reloaded.suffix(5)[0] == record(5, "pi-0002")
        # appending continues from the same global index
        reloaded.append(record(99))
        assert reloaded.next_index == 12
        reloaded.close()

    def test_compact_is_crash_safe_manifest_last(self, tmp_path):
        """A compaction that dies before the manifest commit leaves the
        old manifest pointing at intact old files: reload sees the
        pre-compaction journal (plus a harmless orphan rewrite)."""
        journal = self.build(tmp_path)
        before = journal.records()
        journal.close()
        # simulate the crash by hand: write the rewrite file an aborted
        # compaction would have left, but never touch the manifest
        orphan = tmp_path / "segment-00000001.c1.jsonl"
        orphan.write_text(
            json.dumps({"i": 4, "r": record(4, "pi-0002")}) + "\n",
            encoding="utf-8",
        )
        reloaded = SegmentedJournal(tmp_path)
        assert reloaded.records() == before
        reloaded.close()

    def test_compact_removes_dropped_files(self, tmp_path):
        journal = self.build(tmp_path)
        journal.compact(6)
        files = sorted(os.listdir(tmp_path))
        assert "segment-00000000.jsonl" not in files
        assert "segment-00000001.jsonl" not in files
        journal.close()

    def test_noop_compact(self, tmp_path):
        journal = self.build(tmp_path)
        stats = journal.compact(0)
        assert stats["segments_dropped"] == 0
        assert stats["rewritten"] == 0
        journal.close()

    def test_active_segment_never_compacted(self, tmp_path):
        journal = self.build(tmp_path)
        stats = journal.compact(10**6)
        assert journal.segments_live >= 1
        assert journal.records()[-1] == record(1, "pi-0004")
        journal.close()
