"""Store-backed workflow nodes: archived served instances still answer
duplicate requests, and rebuild() recovers through the store."""

from repro.store import DurableStore
from repro.wfms.distributed import run_cluster
from repro.wfms.messaging import MessageBus
from repro.workloads.distributed_demo import (
    configure_requester,
    configure_worker,
    make_requester,
    make_worker,
)


def store_factory(directory):
    return lambda: DurableStore(directory, checkpoint_every_records=3)


class TestStoreBackedNodes:
    def test_cluster_converges_and_archives_served_roots(self, tmp_path):
        bus = MessageBus()
        worker = make_worker(
            bus, store_factory=store_factory(str(tmp_path / "worker"))
        )
        front = make_requester(
            bus, store_factory=store_factory(str(tmp_path / "front"))
        )
        iid = front.engine.start_process("Front", {"N": 7})
        run_cluster([worker, front], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 15
        # the served instance finished => archived on the worker, yet
        # still queryable (that is what answers duplicate requests)
        served = "req/front/%s/CallDouble" % iid
        assert served in worker.engine.store.archive.ids()
        assert worker.engine.instance_state(served) == "finished"

    def test_rebuild_recovers_through_the_store(self, tmp_path):
        bus = MessageBus()
        worker = make_worker(
            bus, store_factory=store_factory(str(tmp_path / "worker"))
        )
        front = make_requester(
            bus, store_factory=store_factory(str(tmp_path / "front"))
        )
        first = front.engine.start_process("Front", {"N": 3})
        run_cluster([worker, front], watch=[(front, first)])
        assert front.engine.output(first)["Result"] == 7

        # crash both nodes; rebuild goes through checkpointed recovery
        worker.crash()
        front.crash()
        worker.rebuild(configure_worker)
        front.rebuild(configure_requester)
        assert front.engine.store.last_recovery is not None
        assert front.engine.output(first)["Result"] == 7

        second = front.engine.start_process("Front", {"N": 10})
        run_cluster([worker, front], watch=[(front, second)])
        assert front.engine.output(second)["Result"] == 21
        assert second != first
