"""The store operator CLI: inspect, checkpoint, compact, archive-query."""

import io

from repro.store import DurableStore
from repro.tools.store import main
from repro.wfms import Activity, Engine, ProcessDefinition


def build_store_dir(tmp_path, instances=5):
    directory = str(tmp_path / "store")
    store = DurableStore(
        directory, checkpoint_every_records=4, compact_on_checkpoint=False
    )
    engine = Engine(store=store)
    engine.register_program("p", lambda ctx: 0)
    d = ProcessDefinition("Flow")
    d.add_activity(Activity("A", program="p"))
    d.add_activity(Activity("B", program="p"))
    d.connect("A", "B")
    engine.register_definition(d)
    for __ in range(instances):
        engine.start_process("Flow")
        engine.run()
    engine.close()
    return directory


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_inspect(self, tmp_path):
        directory = build_store_dir(tmp_path)
        code, text = run_cli("inspect", directory)
        assert code == 0
        assert "journal:" in text
        assert "checkpoints:" in text
        assert "replay debt:" in text
        assert "archive: 5 roots" in text

    def test_checkpoint_validates_files(self, tmp_path):
        directory = build_store_dir(tmp_path)
        code, text = run_cli("checkpoint", directory)
        assert code == 0
        assert "VALID" in text
        # corrupt every checkpoint: the command reports failure
        import glob
        import os

        for path in glob.glob(os.path.join(directory, "checkpoint-*.json")):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("{ torn")
        code, text = run_cli("checkpoint", directory)
        assert code == 1
        assert "CORRUPT" in text

    def test_compact_drops_covered_segments(self, tmp_path):
        directory = build_store_dir(tmp_path)
        code, text = run_cli("compact", directory)
        assert code == 0
        assert "compacted to offset" in text
        # a second compact finds nothing more to drop
        code, text = run_cli("compact", directory)
        assert code == 0
        assert "dropped 0 segment(s)" in text

    def test_compact_without_checkpoint_fails_cleanly(self, tmp_path):
        directory = str(tmp_path / "store")
        store = DurableStore(directory)
        store.attach()
        store.close()
        code, text = run_cli("compact", directory)
        assert code == 1
        assert "no durable checkpoint" in text

    def test_archive_query_listing_and_filters(self, tmp_path):
        directory = build_store_dir(tmp_path, instances=3)
        code, text = run_cli("archive-query", directory)
        assert code == 0
        assert text.count("Flow") == 3
        code, text = run_cli(
            "archive-query", directory, "--definition", "Flow"
        )
        assert text.count("rc=0") == 3
        code, text = run_cli(
            "archive-query", directory, "--definition", "Nope"
        )
        assert text == ""
        code, text = run_cli("archive-query", directory, "--outcomes")
        assert code == 0
        assert '"0": 3' in text

    def test_archive_query_by_id(self, tmp_path):
        directory = build_store_dir(tmp_path, instances=1)
        code, text = run_cli("archive-query", directory, "--id", "pi-0001")
        assert code == 0
        assert '"root": "pi-0001"' in text
        code, text = run_cli("archive-query", directory, "--id", "pi-9999")
        assert code == 1
        assert "not archived" in text

    def test_bad_directory_fails_cleanly(self, tmp_path):
        (tmp_path / "store" / "journal").mkdir(parents=True)
        (tmp_path / "store" / "journal" / "MANIFEST.json").write_text("{nope")
        code, text = run_cli("inspect", str(tmp_path / "store"))
        assert code == 1
        assert "error:" in text
