"""Instance archive: append-only durability, idempotent adds, queries."""

import pytest

from repro.errors import RecoveryError
from repro.store.archive import InstanceArchive, build_archive_entry
from repro.wfms import Activity, Engine, ProcessDefinition
from repro.wfms.model import ActivityKind


def entry(root, definition="P", rc=0, finished_at=0.0, children=()):
    instances = {root: {"definition": definition, "state": "finished"}}
    for child in children:
        instances[child] = {"definition": definition, "state": "finished"}
    return {
        "format": 1,
        "root": root,
        "definition": definition,
        "version": "1",
        "starter": "",
        "finished_at": finished_at,
        "rc": rc,
        "output": {"_RC": rc},
        "order": ["A"],
        "instances": instances,
        "audit": [],
    }


class TestArchive:
    def test_add_and_query_round_trip(self, tmp_path):
        path = tmp_path / "archive.jsonl"
        archive = InstanceArchive(path)
        assert archive.add(entry("pi-0001", "Pay", rc=0, finished_at=1.0))
        assert archive.add(
            entry("pi-0002", "Pay", rc=2, finished_at=3.0,
                  children=("pi-0002.Sub-1",))
        )
        assert archive.add(entry("pi-0003", "Ship", rc=0, finished_at=5.0))
        archive.close()

        reloaded = InstanceArchive(path)
        assert len(reloaded) == 3
        assert reloaded.instance_count() == 4
        assert reloaded.roots() == ["pi-0001", "pi-0002", "pi-0003"]
        assert "pi-0002.Sub-1" in reloaded
        assert reloaded.by_id("pi-0001")["rc"] == 0
        child = reloaded.by_id("pi-0002.Sub-1")
        assert child["root"] == "pi-0002"
        assert child["finished_at"] == 3.0
        assert [e["root"] for e in reloaded.by_definition("Pay")] == [
            "pi-0001",
            "pi-0002",
        ]
        assert [e["root"] for e in reloaded.finished_between(2.0, 5.0)] == [
            "pi-0002",
            "pi-0003",
        ]
        assert reloaded.outcomes() == {0: 2, 2: 1}
        assert reloaded.outcomes("Pay") == {0: 1, 2: 1}
        assert reloaded.by_id("pi-9999") is None
        reloaded.close()

    def test_duplicate_add_is_idempotent(self, tmp_path):
        path = tmp_path / "archive.jsonl"
        archive = InstanceArchive(path)
        assert archive.add(entry("pi-0001"))
        assert not archive.add(entry("pi-0001"))
        archive.close()
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1

    def test_torn_tail_tolerated_and_healed(self, tmp_path):
        """A crash mid-append loses the last entry; the journal still
        holds the instance's records, so replay re-finishes it and the
        re-archive heals the file."""
        path = tmp_path / "archive.jsonl"
        archive = InstanceArchive(path)
        archive.add(entry("pi-0001"))
        archive.add(entry("pi-0002"))
        archive.close()
        data = path.read_text(encoding="utf-8")
        path.write_text(data[: len(data) - 20], encoding="utf-8")

        reloaded = InstanceArchive(path)
        assert reloaded.roots() == ["pi-0001"]
        assert reloaded.add(entry("pi-0002"))  # the heal
        reloaded.close()
        healed = InstanceArchive(path)
        assert healed.roots() == ["pi-0001", "pi-0002"]
        healed.close()

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "archive.jsonl"
        path.write_text('{"format": 1, "no_root": true}\n{"x": 1}\n')
        with pytest.raises(RecoveryError, match="malformed archive entry"):
            InstanceArchive(path)

    def test_closed_archive_rejects_writes(self, tmp_path):
        archive = InstanceArchive(tmp_path / "archive.jsonl")
        archive.close()
        with pytest.raises(RecoveryError):
            archive.add(entry("pi-0001"))
        archive.reopen()
        assert archive.add(entry("pi-0001"))
        archive.close()


class TestBuildEntry:
    def test_entry_captures_subtree(self):
        engine = Engine()
        engine.register_program("p", lambda ctx: 0)
        child = ProcessDefinition("Child")
        child.add_activity(Activity("Work", program="p"))
        engine.register_definition(child)
        parent = ProcessDefinition("Parent")
        parent.add_activity(
            Activity("Delegate", kind=ActivityKind.PROCESS, subprocess="Child")
        )
        parent.add_activity(Activity("Wrap", program="p"))
        parent.connect("Delegate", "Wrap")
        engine.register_definition(parent)
        iid = engine.start_process("Parent", starter="ada")
        engine.run()
        assert engine.instance_state(iid) == "finished"

        instance = engine.navigator.instance(iid)
        built = build_archive_entry(engine.navigator, instance)
        assert built["root"] == iid
        assert built["definition"] == "Parent"
        assert built["starter"] == "ada"
        assert len(built["instances"]) == 2  # root + subprocess child
        assert built["order"] == ["Work", "Wrap"]  # deep order
        child_id = next(i for i in built["instances"] if i != iid)
        member = built["instances"][child_id]
        assert member["parent_instance"] == iid
        assert member["execution_order"] == ["Work"]
        assert built["audit"]  # the subtree's audit slice rides along
