"""Grand-tour integration tests: every layer at once.

The scenario the paper implies but never spells out: a saga expressed
in the FMTM language, translated through the full Figure 5 pipeline,
executing against real (simulated) resource managers under a
persistent journal — crashing at the worst possible moments and
recovering with the saga guarantee intact and **every subtransaction
and compensation executed exactly once**.

The resource managers survive the engine crash (they are separate
systems); the engine's journal is what prevents double execution.
"""

import pytest

from repro.tx import AbortScript, SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms.engine import Engine
from repro.core.bindings import (
    register_saga_programs,
    workflow_saga_outcome,
)
from repro.core.fmtm import FMTMPipeline
from repro.core.sagas import verify_saga_guarantee
from repro.core.saga_translator import translate_saga
from repro.core.speclang import parse_spec

SPEC_TEXT = """
MODEL SAGA 'tour'
  STEP 't1'
  STEP 't2'
  STEP 't3'
END 'tour'
"""


class CountingSubtransaction(Subtransaction):
    """Counts executions in a dict that survives engine crashes."""

    def __init__(self, name, database, body, counters, policy=None):
        super().__init__(name, database, body)
        if policy is not None:
            self.policy = policy
        self._counters = counters

    def execute(self):
        self._counters[self.name] = self._counters.get(self.name, 0) + 1
        return super().execute()


def build_engine(journal_path, database, counters, *, abort_t3=True):
    """Fresh engine + pipeline over the shared database/counters."""
    engine = Engine(journal_path=journal_path)
    spec = parse_spec(SPEC_TEXT)
    translation = translate_saga(spec)
    actions = {}
    compensations = {}
    for step in spec.steps:
        policy = AbortScript([1]) if (abort_t3 and step.name == "t3") else None
        actions[step.name] = CountingSubtransaction(
            step.name, database, write_value(step.name, 1), counters, policy
        )
        compensations[step.name] = CountingSubtransaction(
            "c_" + step.name, database, write_value(step.name, 0), counters
        )
    register_saga_programs(engine, translation, actions, compensations)
    pipeline = FMTMPipeline(engine)
    report = pipeline.process_specification(SPEC_TEXT)
    return engine, report


class TestGrandTour:
    def test_happy_path_through_every_layer(self, tmp_path):
        database = SimDatabase("resources")
        counters: dict[str, int] = {}
        engine, report = build_engine(
            str(tmp_path / "j.jsonl"), database, counters, abort_t3=False
        )
        iid = engine.start_process(report.process_name)
        engine.run()
        outcome = workflow_saga_outcome(engine, report.translation, iid)
        assert outcome.committed
        assert database.snapshot() == {"t1": 1, "t2": 1, "t3": 1}
        assert counters == {"t1": 1, "t2": 1, "t3": 1}

    @pytest.mark.parametrize("crash_after_steps", [1, 2, 3, 4, 5, 6])
    def test_crash_anywhere_preserves_exactly_once(
        self, tmp_path, crash_after_steps
    ):
        """Crash after k navigator steps (covering forward execution,
        the abort, and mid-compensation), recover, finish: the saga
        guarantee holds and nothing ran twice."""
        journal = str(tmp_path / "j.jsonl")
        database = SimDatabase("resources")
        counters: dict[str, int] = {}
        engine, report = build_engine(journal, database, counters)
        iid = engine.start_process(report.process_name)
        for __ in range(crash_after_steps):
            if not engine.step():
                break
        engine.crash()

        engine2, report2 = build_engine(journal, database, counters)
        engine2.recover()
        engine2.run()
        assert engine2.instance_state(iid) == "finished"
        outcome = workflow_saga_outcome(engine2, report2.translation, iid)
        spec = report2.spec
        assert verify_saga_guarantee(
            spec, outcome.executed, outcome.compensated
        )
        # t3 aborted: final state must be fully compensated.
        assert not outcome.committed
        assert outcome.executed == ["t1", "t2"]
        assert outcome.compensated == ["t2", "t1"]
        for key in ("t1", "t2"):
            assert database.get(key) == 0
        # Exactly-once: every subtransaction/compensation body ran once.
        assert counters == {
            "t1": 1, "t2": 1, "t3": 1, "c_t1": 1, "c_t2": 1
        }

    def test_double_crash_is_still_exactly_once(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        database = SimDatabase("resources")
        counters: dict[str, int] = {}
        engine, report = build_engine(journal, database, counters)
        iid = engine.start_process(report.process_name)
        engine.step()
        engine.step()
        engine.crash()

        engine2, __ = build_engine(journal, database, counters)
        engine2.recover()
        engine2.step()
        engine2.step()
        engine2.crash()

        engine3, report3 = build_engine(journal, database, counters)
        engine3.recover()
        engine3.run()
        assert engine3.instance_state(iid) == "finished"
        outcome = workflow_saga_outcome(engine3, report3.translation, iid)
        assert outcome.compensated == ["t2", "t1"]
        assert counters == {
            "t1": 1, "t2": 1, "t3": 1, "c_t1": 1, "c_t2": 1
        }

    def test_fdl_artifact_survives_independent_reimport(self, tmp_path):
        """The FDL the pipeline emitted is a complete, standalone
        description: importing it into a brand-new engine yields an
        equivalent executable process."""
        from repro.fdl import import_text

        database = SimDatabase("resources")
        counters: dict[str, int] = {}
        engine, report = build_engine(
            str(tmp_path / "j.jsonl"), database, counters, abort_t3=False
        )
        fresh = Engine()
        spec = parse_spec(SPEC_TEXT)
        translation = translate_saga(spec)
        database2 = SimDatabase("resources2")
        actions = {
            s.name: Subtransaction(s.name, database2, write_value(s.name, 1))
            for s in spec.steps
        }
        comps = {
            s.name: Subtransaction(
                "c" + s.name, database2, write_value(s.name, 0)
            )
            for s in spec.steps
        }
        register_saga_programs(fresh, translation, actions, comps)
        import_text(report.fdl_text).register_into(fresh)
        result = fresh.run_process(report.process_name)
        assert result.finished
        assert database2.snapshot() == {"t1": 1, "t2": 1, "t3": 1}
