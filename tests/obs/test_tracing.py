"""Unit tests for spans, tracer retention and context propagation."""

from repro.obs.tracing import (
    NULL_SPAN,
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    NullTracer,
    SpanContext,
    Tracer,
)


class TestSpanLifecycle:
    def test_root_span_starts_a_trace(self):
        tracer = Tracer()
        span = tracer.start_span("root")
        assert span.trace_id
        assert span.parent_id == ""
        assert not span.finished

    def test_child_inherits_trace(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_parent_may_be_a_context(self):
        tracer = Tracer()
        context = SpanContext("t9-000001", "s9-000042")
        span = tracer.start_span("remote-child", parent=context)
        assert span.trace_id == "t9-000001"
        assert span.parent_id == "s9-000042"

    def test_finish_is_idempotent_and_sets_status(self):
        tracer = Tracer()
        span = tracer.start_span("s")
        span.finish(status="error")
        first_end = span.end
        span.finish(status="ok")  # ignored: first finish wins
        assert span.end == first_end
        assert span.status == "error"
        assert span.duration >= 0.0

    def test_attributes(self):
        tracer = Tracer()
        span = tracer.start_span("s", attributes={"a": 1})
        span.set_attribute("b", 2)
        assert span.to_dict()["attributes"] == {"a": 1, "b": 2}

    def test_explicit_trace_id_joins_without_parent(self):
        tracer = Tracer()
        span = tracer.start_span("s", trace_id="t7-000001")
        assert span.trace_id == "t7-000001"
        assert span.parent_id == ""


class TestTracerQueries:
    def test_spans_filter_by_trace_and_name(self):
        tracer = Tracer()
        a = tracer.start_span("a")
        tracer.start_span("b")
        assert tracer.spans(trace_id=a.trace_id) == [a]
        assert tracer.spans(name="b")[0].name == "b"

    def test_open_spans(self):
        tracer = Tracer()
        open_span = tracer.start_span("open")
        tracer.start_span("closed").finish()
        assert tracer.open_spans() == [open_span]

    def test_trace_ids_in_first_seen_order(self):
        tracer = Tracer()
        first = tracer.start_span("a").trace_id
        second = tracer.start_span("b").trace_id
        assert tracer.trace_ids() == [first, second]

    def test_export_is_pure_data(self):
        tracer = Tracer()
        tracer.start_span("s").finish()
        [data] = tracer.export()
        assert data["name"] == "s"
        assert data["duration"] is not None


class TestRetention:
    def test_ring_drops_oldest_finished(self):
        tracer = Tracer(max_spans=16)
        keeper = tracer.start_span("keeper")  # open: never dropped
        for i in range(100):
            tracer.start_span("s%d" % i).finish()
        spans = tracer.spans()
        assert keeper in spans
        assert len(spans) <= 17
        # the newest finished spans survive
        assert spans[-1].name == "s99"


class TestPropagation:
    def test_inject_extract_round_trip(self):
        tracer = Tracer()
        span = tracer.start_span("root")
        headers = tracer.inject(span)
        assert headers == {
            TRACE_ID_HEADER: span.trace_id,
            PARENT_SPAN_HEADER: span.span_id,
        }
        context = Tracer().extract(headers)
        assert context == SpanContext(span.trace_id, span.span_id)

    def test_extract_missing_headers(self):
        tracer = Tracer()
        assert tracer.extract(None) is None
        assert tracer.extract({}) is None
        assert tracer.extract({"unrelated": "x"}) is None

    def test_two_tracers_never_collide(self):
        a, b = Tracer(), Tracer()
        assert a.start_span("x").span_id != b.start_span("x").span_id
        assert a.new_trace_id() != b.new_trace_id()


class TestNullTracer:
    def test_disabled_surface(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        span = tracer.start_span("anything", kind="k", attributes={"a": 1})
        assert span is NULL_SPAN
        assert not span.is_recording
        span.set_attribute("x", 1)  # no-op
        span.finish("error")  # no-op
        assert span.attributes == {}
        assert tracer.inject(span) == {}
        assert tracer.extract({TRACE_ID_HEADER: "t"}) is None
        assert tracer.spans() == []
        assert tracer.export() == []

    def test_real_tracer_inject_of_null_span_is_empty(self):
        # A live tracer asked to inject the null span must not emit
        # headers pointing at a span that does not exist.
        assert Tracer().inject(NULL_SPAN) == {}
