"""Unit tests for the metrics instruments and registries."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import to_prometheus_text
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c", "help")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c", "")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_labeled_children_are_cached(self):
        counter = Counter("c", "", ("outcome",))
        child = counter.labels("ok")
        child.inc()
        assert counter.labels("ok") is child
        assert counter.labels("ok").value == 1.0
        assert counter.labels("bad").value == 0.0

    def test_label_arity_enforced(self):
        counter = Counter("c", "", ("a", "b"))
        with pytest.raises(ObservabilityError):
            counter.labels("only-one")

    def test_snapshot_labeled(self):
        counter = Counter("c", "h", ("outcome",))
        counter.labels("ok").inc(2)
        counter.labels("bad").inc()
        snap = counter.snapshot()
        assert snap["type"] == "counter"
        assert {
            (tuple(s["labels"].items()), s["value"]) for s in snap["samples"]
        } == {((("outcome", "bad"),), 1.0), ((("outcome", "ok"),), 2.0)}


class TestGauge:
    def test_moves_both_directions(self):
        gauge = Gauge("g", "")
        gauge.inc(5)
        gauge.dec(2)
        gauge.set(10)
        assert gauge.value == 10.0

    def test_snapshot_unlabeled(self):
        gauge = Gauge("g", "h")
        gauge.set(4)
        assert gauge.snapshot()["samples"] == [{"labels": {}, "value": 4.0}]


class TestHistogram:
    def test_observe_accumulates(self):
        hist = Histogram("h", "", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 55.5

    def test_snapshot_buckets_are_cumulative(self):
        hist = Histogram("h", "", buckets=(1.0, 10.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            hist.observe(value)
        [sample] = hist.snapshot()["samples"]
        assert sample["buckets"] == [
            {"le": 1.0, "count": 2},
            {"le": 10.0, "count": 3},
        ]
        assert sample["count"] == 4  # the implicit +Inf bucket

    def test_boundary_value_falls_in_its_bucket(self):
        # Prometheus buckets are upper-inclusive: observe(le) counts.
        hist = Histogram("h", "", buckets=(1.0, 10.0))
        hist.observe(1.0)
        [sample] = hist.snapshot()["samples"]
        assert sample["buckets"][0]["count"] == 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", "", buckets=(10.0, 1.0))


class TestRegistry:
    def test_idempotent_create(self):
        registry = MetricsRegistry()
        first = registry.counter("x", "help")
        assert registry.counter("x", "other help") is first

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "")
        with pytest.raises(ObservabilityError):
            registry.gauge("x", "")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x", "", labels=("a",))
        with pytest.raises(ObservabilityError):
            registry.counter("x", "", labels=("b",))

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta", "")
        registry.gauge("alpha", "")
        assert [f["name"] for f in registry.collect()] == ["alpha", "zeta"]


class TestNullRegistry:
    def test_everything_is_the_shared_null_instrument(self):
        registry = NullRegistry()
        assert registry.enabled is False
        counter = registry.counter("c", "", labels=("a",))
        assert counter is NULL_INSTRUMENT
        assert registry.gauge("g", "") is NULL_INSTRUMENT
        assert registry.histogram("h", "") is NULL_INSTRUMENT
        # labels() with any arity returns the instrument itself.
        assert counter.labels("x", "y", "z") is counter

    def test_mutators_are_no_ops(self):
        instrument = NullRegistry().counter("c", "")
        instrument.inc()
        instrument.dec()
        instrument.set(5)
        instrument.observe(1.0)
        assert instrument.value == 0.0
        assert instrument.count == 0
        assert instrument.sum == 0.0

    def test_collect_empty(self):
        assert NullRegistry().collect() == []


class TestPrometheusText:
    def test_counter_and_gauge_rendering(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "Jobs", labels=("state",)).labels(
            "done"
        ).inc(3)
        registry.gauge("depth", "Queue depth").set(7)
        text = to_prometheus_text(registry)
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{state="done"} 3' in text
        assert "depth 7" in text

    def test_histogram_rendering(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "Latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = to_prometheus_text(registry)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", "", labels=("msg",)).labels('say "hi"\n').inc()
        text = to_prometheus_text(registry)
        assert 'c{msg="say \\"hi\\"\\n"} 1' in text
