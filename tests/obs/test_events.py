"""Unit tests for the typed hook bus (isolation semantics included)."""

import logging

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import (
    ActivityCompleted,
    HookBus,
    JournalSynced,
    NavigatorDispatched,
    NullHookBus,
)


def dispatched(n=1):
    return NavigatorDispatched("pi-0001", "A", n, 0, 0.0)


class TestSubscribePublish:
    def test_delivery_by_type(self):
        bus = HookBus()
        got = []
        bus.subscribe(NavigatorDispatched, got.append)
        event = dispatched()
        bus.publish(event)
        bus.publish(JournalSynced(1, "append", 0.0))  # different type
        assert got == [event]

    def test_decorator_form(self):
        bus = HookBus()
        got = []

        @bus.subscribe(NavigatorDispatched)
        def observer(event):
            got.append(event)

        bus.publish(dispatched())
        assert len(got) == 1

    def test_wants(self):
        bus = HookBus()
        assert not bus.wants(NavigatorDispatched)
        bus.subscribe(NavigatorDispatched, lambda e: None)
        assert bus.wants(NavigatorDispatched)
        assert not bus.wants(ActivityCompleted)

    def test_unsubscribe(self):
        bus = HookBus()
        got = []
        bus.subscribe(NavigatorDispatched, got.append)
        bus.unsubscribe(NavigatorDispatched, got.append)
        bus.publish(dispatched())
        assert got == []
        assert not bus.wants(NavigatorDispatched)

    def test_unsubscribe_unknown_raises(self):
        bus = HookBus()
        with pytest.raises(ObservabilityError):
            bus.unsubscribe(NavigatorDispatched, lambda e: None)

    def test_subscribe_requires_a_type(self):
        bus = HookBus()
        with pytest.raises(ObservabilityError):
            bus.subscribe("not-a-type", lambda e: None)

    def test_subscriptions_summary(self):
        bus = HookBus()
        bus.subscribe(NavigatorDispatched, lambda e: None)
        bus.subscribe(NavigatorDispatched, lambda e: None)
        bus.subscribe(JournalSynced, lambda e: None)
        assert bus.subscriptions() == {
            "JournalSynced": 1,
            "NavigatorDispatched": 2,
        }


class TestIsolation:
    def test_raising_subscriber_is_isolated(self, caplog):
        bus = HookBus()
        got = []

        def bad(event):
            raise RuntimeError("observer bug")

        bus.subscribe(NavigatorDispatched, bad)
        bus.subscribe(NavigatorDispatched, got.append)
        with caplog.at_level(logging.ERROR, logger="repro.obs"):
            bus.publish(dispatched())
        # The publisher survived, later subscribers still ran.
        assert len(got) == 1
        # The failure was recorded and logged.
        assert len(bus.failures) == 1
        assert isinstance(bus.failures[0].error, RuntimeError)
        assert any("isolated" in r.message for r in caplog.records)

    def test_failure_keeps_the_event(self):
        bus = HookBus()
        bus.subscribe(NavigatorDispatched, lambda e: 1 / 0)
        event = dispatched()
        bus.publish(event)
        assert bus.failures[0].event is event


class TestNullHookBus:
    def test_subscribe_raises(self):
        bus = NullHookBus()
        with pytest.raises(ObservabilityError):
            bus.subscribe(NavigatorDispatched, lambda e: None)
        with pytest.raises(ObservabilityError):
            bus.unsubscribe(NavigatorDispatched, lambda e: None)

    def test_wants_and_publish_are_noops(self):
        bus = NullHookBus()
        assert bus.wants(NavigatorDispatched) is False
        bus.publish(dispatched())  # no-op, no error
        assert bus.subscriptions() == {}
