"""Seeded flow-crash chaos: every schedule kills and resumes engines
at PRNG-chosen points, runs twice from scratch, and must produce
bit-identical traces (step-body invocation order, flow results,
database state, runtime counters, normalized audit) with every step
body executing exactly once.

Two topologies:

* plain journal-backed :class:`~repro.wfms.engine.Engine` — ten
  schedules;
* a durable socket-broker cluster (``front`` node calling flows served
  by a ``flowd`` node over :class:`~repro.net.BusServerThread` with a
  write-ahead bus log) — four schedules with flow-engine kills, plus a
  broker-bounce run.
"""

import json
import os
import random
import socket

import pytest

from repro.core.scoped import install_scope_service
from repro.flow import (
    ARGS,
    ERROR,
    RESULT,
    StepFailure,
    flow_args,
    install_flows,
    step,
    transaction,
    workflow,
)
from repro.net import BusServerThread, SocketBus
from repro.tx import ScopeManager, SimDatabase
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.distributed import WorkflowNode, _advance_to_timers
from repro.wfms.model import PROCESS_INPUT, PROCESS_OUTPUT, ProcessDefinition

from tests.flow.harness import (
    assert_exactly_once,
    flow_engine,
    normalized_audit,
)

PLAIN_SEEDS = list(range(10))
BROKER_SEEDS = list(range(4))


def make_chaos_flows(calls):
    """One flow exercising every step kind: a loop of plain steps, a
    deterministically failing step caught inline, a transactional
    step, and a branch on its journaled balance."""

    @step
    def work(idx, i, acc):
        calls.append(("work", idx, i, acc))
        return acc + i

    @step
    def shaky(idx, v):
        calls.append(("shaky", idx, v))
        if v % 2 == 0:
            raise ValueError("even total %d" % v)
        return v

    @transaction
    def credit(scope, key, amount):
        calls.append(("credit", key, amount))
        return scope.increment(key, amount)

    @workflow
    def order(flow, idx, n):
        total = 0
        for i in range(n):
            total = work(idx, i, total)
        try:
            bonus = shaky(idx, total)
        except StepFailure:
            bonus = 1
        bal = credit("acct:%d" % idx, total + bonus)
        if bal > 4:
            total = work(idx, 100, total)
        return {"idx": idx, "total": total, "bal": bal}

    return [order]


# ---------------------------------------------------------------------------
# plain engine topology
# ---------------------------------------------------------------------------


def run_plain_schedule(seed, tmp):
    """One full run of seed's schedule; returns its JSON trace."""
    rng = random.Random(seed)
    starts = [(0, 2 + seed % 3), (1, 3)]
    kills = sorted(rng.sample(range(1, 15), 1 + rng.randrange(3)),
                   reverse=True)
    os.makedirs(tmp, exist_ok=True)
    jp = os.path.join(tmp, "j.log")
    calls: list = []
    db = SimDatabase()
    totals: dict = {}

    def boot():
        engine = flow_engine(db, journal_path=jp)
        return engine, install_flows(engine, make_chaos_flows(calls),
                                     seed=seed)

    def bank(rt):
        # Counters die with each incarnation; the trace wants the
        # whole run's totals.
        for key, value in rt.counters.items():
            totals[key] = totals.get(key, 0) + value

    engine, rt = boot()
    uuids = [rt.start("order", idx, n) for idx, n in starts]
    done = 0
    while engine.step():
        done += 1
        if kills and kills[-1] == done:
            kills.pop()
            engine.crash()
            bank(rt)
            engine, rt = boot()
            engine.recover()
    bank(rt)

    results = {}
    for uuid in uuids:
        res = rt.result(uuid)
        assert res.ok, res.error
        results[uuid] = {
            "state": res.state,
            "rc": res.return_code,
            "value": res.value,
            "audit": normalized_audit(engine, uuid),
        }
    assert_exactly_once(calls)
    return {
        "uuids": uuids,
        "calls": [list(map(repr, c)) for c in calls],
        "results": results,
        "db": db.snapshot(),
        "counters": totals,
        "engine_steps": done,
    }


@pytest.mark.parametrize("seed", PLAIN_SEEDS)
def test_plain_schedule_replays_bit_identical(seed, tmp_path):
    first = run_plain_schedule(seed, str(tmp_path / "a"))
    second = run_plain_schedule(seed, str(tmp_path / "b"))
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    # The schedule actually resumed through at least one kill, and the
    # exactly-once invariant held through it (checked per-run above).
    assert first["counters"]["flows_completed"] == 2


def test_schedules_actually_differ():
    """The chaos matrix must not collapse onto one schedule."""
    plans = set()
    for seed in PLAIN_SEEDS:
        rng = random.Random(seed)
        plans.add(
            tuple(sorted(rng.sample(range(1, 15), 1 + rng.randrange(3))))
        )
    assert len(plans) >= 7


# ---------------------------------------------------------------------------
# durable broker topology
# ---------------------------------------------------------------------------


def free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def connect(address, **kwargs):
    host, port = address
    kwargs.setdefault("connect_retries", 10)
    kwargs.setdefault("backoff", 0.02)
    return SocketBus(host, port, **kwargs)


class BrokerTopology:
    """front --(durable socket broker)--> flowd serving the flow."""

    def __init__(self, tmp, seed, port):
        self.tmp = tmp
        self.seed = seed
        self.calls: list = []
        self.db = SimDatabase()
        self.flows = make_chaos_flows(self.calls)
        self.rt = None
        self.port = port
        self.server = self._serve()
        self.flowd_bus = connect(self.server.address, name="flowd")
        self.front_bus = connect(self.server.address, name="front")
        self.flowd = WorkflowNode(
            "flowd",
            self.flowd_bus,
            journal_path=os.path.join(tmp, "flowd.log"),
        )
        self.configure_flowd(self.flowd)
        self.front = WorkflowNode(
            "front",
            self.front_bus,
            journal_path=os.path.join(tmp, "front.log"),
            request_retries=3,
        )
        outer = ProcessDefinition(
            "Outer",
            input_spec=[VariableDecl(ARGS, DataType.STRING)],
            output_spec=[
                VariableDecl(RESULT, DataType.STRING),
                VariableDecl(ERROR, DataType.STRING),
            ],
        )
        outer.add_activity(
            self.front.remote_activity(
                "CallOrder",
                process="order",
                node="flowd",
                input_spec=[VariableDecl(ARGS, DataType.STRING)],
                output_spec=[
                    VariableDecl(RESULT, DataType.STRING),
                    VariableDecl(ERROR, DataType.STRING),
                ],
            )
        )
        outer.map_data(PROCESS_INPUT, "CallOrder", [(ARGS, ARGS)])
        outer.map_data(
            "CallOrder", PROCESS_OUTPUT, [(RESULT, RESULT), (ERROR, ERROR)]
        )
        self.front.engine.register_definition(outer)
        self.nodes = [self.front, self.flowd]

    def _serve(self):
        return BusServerThread(
            durable_dir=os.path.join(self.tmp, "broker"),
            port=self.port,
            name="bk",
        )

    def configure_flowd(self, node):
        install_scope_service(node.engine, ScopeManager(self.db))
        self.rt = install_flows(node.engine, self.flows, seed=self.seed)
        node.serve(self.flows[0].definition)

    def kill_flowd(self):
        self.flowd.crash()
        self.flowd.rebuild(self.configure_flowd)

    def bounce_broker(self):
        self.server.close()
        self.server = self._serve()

    def close(self):
        for bus in (self.front_bus, self.flowd_bus):
            try:
                bus.close()
            except Exception:
                pass
        self.server.close()

    def drive(self, iids, chaos_rounds, chaos, max_rounds=400):
        """run_cluster's loop with chaos injection between rounds."""
        pending = sorted(set(chaos_rounds), reverse=True)
        for round_no in range(1, max_rounds + 1):
            progressed = False
            for node in self.nodes:
                if node.engine.crashed:
                    continue
                for __ in range(25):
                    if not node.engine.step():
                        break
                    progressed = True
                if node.pump():
                    progressed = True
            if pending and pending[-1] == round_no:
                pending.pop()
                chaos()
                progressed = True
            if all(
                self.front.engine.instance_state(iid) == "finished"
                for iid in iids
            ):
                return round_no
            if not progressed and not _advance_to_timers(
                [n for n in self.nodes if not n.engine.crashed]
            ):
                raise AssertionError("cluster deadlocked")
        raise AssertionError("cluster did not converge")


def run_broker_schedule(seed, tmp, *, bounce=False):
    rng = random.Random(1000 + seed)
    chaos_rounds = sorted(rng.sample(range(2, 10), 2))
    os.makedirs(tmp, exist_ok=True)
    topo = BrokerTopology(tmp, seed, free_port())
    try:
        iids = [
            topo.front.engine.start_process("Outer", flow_args(idx, 3))
            for idx in range(2)
        ]
        chaos = topo.bounce_broker if bounce else topo.kill_flowd
        topo.drive(iids, chaos_rounds, chaos)
        results = {}
        for idx, iid in enumerate(iids):
            out = topo.front.engine.output(iid)
            assert out[ERROR] == "", out[ERROR]
            results[str(idx)] = {
                "value": json.loads(out[RESULT]),
                "state": topo.front.engine.instance_state(iid),
            }
        assert_exactly_once(topo.calls)
        return {
            "calls": [list(map(repr, c)) for c in topo.calls],
            "results": results,
            "db": topo.db.snapshot(),
            "counters": dict(topo.rt.counters),
            "chaos_rounds": chaos_rounds,
        }
    finally:
        topo.close()


@pytest.mark.parametrize("seed", BROKER_SEEDS)
def test_broker_schedule_replays_bit_identical(seed, tmp_path):
    first = run_broker_schedule(seed, str(tmp_path / "a"))
    second = run_broker_schedule(seed, str(tmp_path / "b"))
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    for entry in first["results"].values():
        assert entry["state"] == "finished"
        assert entry["value"]["bal"] >= 2


def test_broker_bounce_mid_flow(tmp_path):
    """The broker itself dies and restarts over its write-ahead log
    mid-flow; the flow nodes reconnect, resume their sessions, and the
    flows still finish exactly once."""
    trace = run_broker_schedule(0, str(tmp_path / "a"), bounce=True)
    for entry in trace["results"].values():
        assert entry["state"] == "finished"
    assert trace["counters"]["flows_completed"] == 2
