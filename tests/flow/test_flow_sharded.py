"""Decorated flows on the sharded engine: partitioned execution,
shared scope service, and per-shard crash/recover mid-flow."""

import pytest

from repro.core.scoped import SCOPE_SERVICE
from repro.flow import (
    StepFailure,
    flow_args,
    flow_result,
    install_flows,
    step,
    transaction,
    workflow,
)
from repro.tx import ScopeManager, SimDatabase
from repro.wfms.sharding import ShardedEngine

from tests.flow.harness import assert_exactly_once


def make_flows(calls):
    @step
    def add(tag, a, b):
        calls.append(("add", tag, a, b))
        return a + b

    @transaction
    def credit(scope, key, amount):
        calls.append(("credit", key, amount))
        return scope.increment(key, amount)

    @workflow
    def chain(flow, tag, n):
        total = 0
        for i in range(n):
            total = add(tag, total, i)
        bal = credit("acct:%s" % tag, total)
        return {"tag": tag, "total": total, "bal": bal}

    return [chain]


def build_cluster(tmp_path, shards, calls, db):
    sharded = ShardedEngine(shards, journal_dir=tmp_path, seed=5)
    sharded.install_service(SCOPE_SERVICE, ScopeManager(db))
    flows = make_flows(calls)
    runtimes = {}

    def setup(node):
        runtimes[node.name] = install_flows(node.engine, flows, seed=7)

    sharded.configure(setup)
    return sharded, runtimes


class TestShardedFlows:
    def test_flows_partition_and_complete(self, tmp_path):
        calls: list = []
        db = SimDatabase()
        sharded, runtimes = build_cluster(tmp_path, 3, calls, db)
        ids = [
            sharded.start_process("chain", flow_args("t%d" % i, 3))
            for i in range(9)
        ]
        # The batch must actually straddle shards for this to test
        # partitioned execution.
        owners = {sharded.shard_index_for_root(iid) for iid in ids}
        assert len(owners) > 1
        sharded.run()
        for i, iid in enumerate(ids):
            result = flow_result(sharded.result(iid))
            assert result.ok
            assert result.value == {"tag": "t%d" % i, "total": 3, "bal": 3}
            assert db.get("acct:t%d" % i) == 3
        assert_exactly_once(calls)
        # Every shard that owned flows drove steps through its own
        # runtime (starts went through the cluster facade, so the
        # per-runtime signal is executed steps, not starts).
        active = [
            r for r in runtimes.values() if r.counters["steps_executed"]
        ]
        assert len(active) == len(owners)
        assert (
            sum(r.counters["steps_executed"] for r in runtimes.values())
            == 9 * 4
        )

    def test_shard_crash_mid_flow_resumes_exactly_once(self, tmp_path):
        calls: list = []
        db = SimDatabase()
        sharded, runtimes = build_cluster(tmp_path, 3, calls, db)
        ids = [
            sharded.start_process("chain", flow_args("t%d" % i, 4))
            for i in range(6)
        ]
        victim = sharded.shard_index_for_root(ids[0])
        # A few rounds in, the victim shard dies mid-flow.
        for __ in range(2):
            sharded.pump_round()
        sharded.crash_shard(victim)
        assert sharded.crashed_shards() == [victim]
        assert sharded.recover() == [victim]
        sharded.run()
        for i, iid in enumerate(ids):
            result = flow_result(sharded.result(iid))
            assert result.ok, result.error
            assert result.value["bal"] == 6
            assert db.get("acct:t%d" % i) == 6
        assert_exactly_once(calls)
        # The rebuilt shard's runtime resumed (not restarted) whatever
        # it had already journaled.
        rebuilt = runtimes["shard-%d" % victim]
        assert rebuilt.counters["flows_started"] == 0
        assert rebuilt.counters["steps_replayed_resume"] >= 0

    def test_step_failure_semantics_survive_sharding(self, tmp_path):
        calls: list = []
        db = SimDatabase()
        sharded = ShardedEngine(2, journal_dir=tmp_path, seed=1)
        sharded.install_service(SCOPE_SERVICE, ScopeManager(db))

        @step
        def explode():
            calls.append("explode")
            raise RuntimeError("no")

        @workflow
        def fragile(flow):
            try:
                explode()
            except StepFailure as exc:
                return exc.error_type
            return "unreachable"

        sharded.configure(
            lambda node: install_flows(node.engine, [fragile], seed=2)
        )
        ids = [
            sharded.start_process("fragile", flow_args()) for __ in range(4)
        ]
        sharded.run()
        for iid in ids:
            assert flow_result(sharded.result(iid)).value == "RuntimeError"
        assert calls == ["explode"] * 4

    def test_missing_args_fail_the_flow_not_the_engine(self, tmp_path):
        # chain() requires tag and n: starting without them surfaces
        # as a failed flow (rc + _ERROR), not silent corruption.
        calls: list = []
        db = SimDatabase()
        sharded, __ = build_cluster(tmp_path, 2, calls, db)
        iid = sharded.start_process("chain", flow_args())
        sharded.run()
        result = flow_result(sharded.result(iid))
        assert not result.ok
        assert "TypeError" in result.error
