"""The decorator front end: @workflow/@step/@transaction semantics on
a live engine — journaled replay, one live step per attempt,
StepFailure handling, savepoint rollback, and the runtime surface."""

import json

import pytest

from repro.errors import DefinitionError, FlowError, StepFailure
from repro.flow import (
    ARGS,
    DONE,
    DRIVE,
    DRIVE_PROGRAM,
    ERROR,
    FLOW_SERVICE,
    JOURNAL,
    RESULT,
    FlowRuntime,
    current_context,
    flow_args,
    install_flows,
    step,
    transaction,
    workflow,
)
from repro.obs import FlowStepExecuted, FlowStepReplayed, Observability

from tests.flow.harness import flow_engine


def make_checkout(calls):
    @step
    def fetch(order_id):
        calls.append(("fetch", order_id))
        return {"order": order_id, "total": 7}

    @step(name="taxed")
    def tax(total):
        calls.append(("tax", total))
        return total + 3

    @transaction
    def debit(scope, account, amount):
        calls.append(("debit", account))
        scope.increment(account, -amount)
        return scope.read(account)

    @workflow
    def checkout(flow, order_id, customer="alice"):
        order = fetch(order_id)
        total = tax(order["total"])
        balance = debit("acct:%s" % customer, total)
        return {"total": total, "balance": balance, "uuid": flow.uuid}

    return checkout


class TestDecorators:
    def test_step_outside_flow_is_the_plain_function(self):
        @step
        def double(x):
            return x * 2

        assert current_context() is None
        assert double(21) == 42
        assert double.name == "double"
        assert double.__wrapped__(3) == 6

    def test_step_name_override(self):
        @step(name="renamed")
        def fn():
            return 1

        assert fn.name == "renamed"

    def test_transaction_outside_flow_raises(self):
        @transaction
        def credit(scope, key):
            return scope.increment(key, 1)

        with pytest.raises(FlowError, match="running flow"):
            credit("k")

    def test_workflow_not_directly_callable(self):
        @workflow
        def wf(flow):
            return 1

        with pytest.raises(FlowError, match="FlowRuntime"):
            wf()

    def test_workflow_options(self):
        @workflow(name="Named", version="3", max_steps=5, failure_rc=9)
        def wf(flow):
            return 1

        assert wf.name == "Named"
        assert wf.version == "3"
        assert wf.max_steps == 5
        assert wf.failure_rc == 9

    def test_compiled_definition_shape(self):
        checkout = make_checkout([])
        d = checkout.definition
        assert d.name == "checkout"
        assert sorted(d.activities) == [DRIVE]
        drive = d.activities[DRIVE]
        assert drive.program == DRIVE_PROGRAM
        assert drive.exit_condition.source == "%s = 1" % DONE
        # The loop-carried self connector that feeds the journal.
        self_edges = [
            c
            for c in d.data_connectors
            if c.source == DRIVE and c.target == DRIVE
        ]
        assert len(self_edges) == 1
        assert tuple(self_edges[0].mappings) == ((JOURNAL, JOURNAL),)
        # Compilation is cached on the Flow.
        assert checkout.definition is d


class TestRunningFlows:
    def test_flow_runs_each_step_exactly_once(self, engine, db):
        calls = []
        checkout = make_checkout(calls)
        rt = install_flows(engine, [checkout])
        assert engine.services[FLOW_SERVICE] is rt
        uuid = rt.start("checkout", 99, customer="bob")
        engine.run()
        result = rt.result(uuid)
        assert result.ok
        assert result.value == {"total": 10, "balance": -10, "uuid": uuid}
        assert calls == [("fetch", 99), ("tax", 7), ("debit", "acct:bob")]
        assert db.get("acct:bob") == -10
        # 3 steps -> 3 attempts; earlier steps replay on later attempts.
        assert rt.counters["steps_executed"] == 3
        assert rt.counters["steps_replayed_loop"] == 3  # 1 + 2
        assert rt.counters["flows_completed"] == 1
        assert rt.counters["txn_steps"] == 1

    def test_two_flows_interleave_without_crosstalk(self, engine):
        calls = []
        checkout = make_checkout(calls)
        rt = install_flows(engine, [checkout])
        first = rt.start("checkout", 1, customer="a")
        second = rt.start("checkout", 2, customer="b")
        assert first != second
        engine.run()
        assert rt.result(first).value["balance"] == -10
        assert rt.result(second).value["balance"] == -10
        assert sorted(c for c in calls if c[0] == "fetch") == [
            ("fetch", 1),
            ("fetch", 2),
        ]

    def test_step_failure_caught_inline_and_retried(self, engine, db):
        attempts = []

        @transaction
        def flaky_pay(scope, amount):
            attempts.append(amount)
            scope.write("poison", "must-roll-back")
            if len(attempts) == 1:
                raise ValueError("transient")
            scope.write("paid", amount)
            return amount

        @workflow
        def pay_with_retry(flow, amount):
            for __ in range(3):
                try:
                    return flaky_pay(amount)
                except StepFailure as exc:
                    assert exc.error_type == "ValueError"
            return None

        rt = install_flows(engine, [pay_with_retry])
        uuid = rt.start("pay_with_retry", 5)
        engine.run()
        assert rt.result(uuid).value == 5
        assert attempts == [5, 5]  # body ran twice: fail, then succeed
        # The savepoint rolled the failed attempt's write back; the
        # retry's writes committed with the flow.
        assert db.get("paid") == 5
        assert db.get("poison") == "must-roll-back"  # retry wrote it too
        assert rt.counters["steps_failed"] == 1

    def test_plain_step_failure_replays_identically(self, engine):
        bodies = []

        @step
        def explode():
            bodies.append(1)
            raise RuntimeError("boom")

        @step
        def after():
            return "ran"

        @workflow
        def survivor(flow):
            try:
                explode()
            except StepFailure as exc:
                first = (exc.error_type, exc.error_message)
            # Force extra attempts so the journaled failure replays.
            after()
            try:
                explode()
            except StepFailure:
                pass
            return first

        rt = install_flows(engine, [survivor])
        uuid = rt.start("survivor")
        engine.run()
        assert rt.result(uuid).value == ["RuntimeError", "boom"]
        assert len(bodies) == 2  # each explode() call ran once, ever

    def test_uncaught_failure_fails_the_flow(self, engine, db):
        @transaction
        def reserve(scope):
            scope.write("reserved", True)
            return True

        @step
        def blow_up():
            raise KeyError("missing")

        @workflow(failure_rc=7)
        def doomed(flow):
            reserve()
            blow_up()
            return "unreachable"

        rt = install_flows(engine, [doomed])
        uuid = rt.start("doomed")
        engine.run()
        result = rt.result(uuid)
        assert not result.ok
        assert result.return_code == 7
        assert "StepFailure" in result.error
        assert "KeyError" in result.error
        assert result.value is None
        # The flow's scope rolled back: no committed writes.
        assert db.get("reserved") is None
        assert rt.counters["flows_failed"] == 1

    def test_nondeterministic_flow_detected(self, engine):
        flips = []

        @step
        def first():
            return 1

        @step
        def other():
            return 2

        @workflow
        def unstable(flow):
            # Branch on mutable *external* state: attempt 2 replays a
            # journal whose fid 1 was recorded for the other step.
            if flips:
                other()
            else:
                flips.append(1)
                first()
            first()
            return "done"

        rt = install_flows(engine, [unstable])
        uuid = rt.start("unstable")
        engine.run()
        result = rt.result(uuid)
        assert not result.ok
        assert "not deterministic" in result.error

    def test_max_steps_bounds_runaway_flows(self, engine):
        @step
        def tick(i):
            return i

        @workflow(max_steps=3)
        def runaway(flow):
            i = 0
            while True:
                tick(i)
                i += 1

        rt = install_flows(engine, [runaway])
        uuid = rt.start("runaway")
        engine.run()
        result = rt.result(uuid)
        assert not result.ok
        assert "max_steps=3" in result.error

    def test_unserializable_step_result_is_a_step_failure(self, engine):
        @step
        def bad():
            return object()

        @workflow
        def wf(flow):
            bad()
            return "ok"

        rt = install_flows(engine, [wf])
        uuid = rt.start("wf")
        engine.run()
        result = rt.result(uuid)
        assert not result.ok
        assert "JSON" in result.error

    def test_tuples_normalize_to_lists_before_first_use(self, engine):
        @step
        def pair():
            return (1, 2)

        @workflow
        def wf(flow):
            # The live attempt must see the JSON shape, not the tuple —
            # otherwise replay attempts would diverge from attempt 1.
            value = pair()
            assert isinstance(value, list)
            return value

        rt = install_flows(engine, [wf])
        uuid = rt.start("wf")
        engine.run()
        assert rt.result(uuid).value == [1, 2]

    def test_flow_args_helper_matches_runtime_start(self, engine):
        calls = []
        checkout = make_checkout(calls)
        rt = install_flows(engine, [checkout])
        iid = engine.start_process(
            "checkout", flow_args(42, customer="carol")
        )
        engine.run()
        out = engine.output(iid)
        assert json.loads(out[RESULT])["balance"] == -10
        assert out[ERROR] == ""
        assert ARGS  # helper produced the member this definition reads

    def test_transaction_without_scope_service_fails_cleanly(self):
        from repro.wfms import Engine

        @transaction
        def pay(scope):
            return scope.increment("k", 1)

        @workflow
        def wf(flow):
            return pay()

        engine = Engine()  # no scope manager installed
        rt = install_flows(engine, [wf])
        uuid = rt.start("wf")
        engine.run()
        result = rt.result(uuid)
        assert not result.ok
        assert "tx_scopes" in result.error


class TestRegistrationIdempotence:
    def test_reregistering_the_same_flow_is_a_noop(self, engine):
        checkout = make_checkout([])
        rt = install_flows(engine, [checkout])
        plan = engine._definitions.plan_for(checkout.definition)
        rt.register(checkout)  # e.g. module re-import
        assert engine.definition("checkout") is checkout.definition
        assert engine._definitions.plan_for(checkout.definition) is plan

    def test_equivalent_flow_from_refactor_is_a_noop(self, engine):
        # Two compilations of the *same source* (same bodies, same
        # options) fingerprint identically even as distinct objects.
        first = make_checkout([])
        second = make_checkout([])
        rt = install_flows(engine, [first])
        rt.register(second)
        assert engine.definition("checkout") is first.definition

    def test_changed_body_same_name_version_rejected(self, engine):
        checkout = make_checkout([])
        install_flows(engine, [checkout])

        @workflow(name="checkout")
        def checkout2(flow, order_id):
            return order_id  # different body under the same name/version

        with pytest.raises(DefinitionError, match="different body"):
            engine.register_definition(checkout2.definition)

    def test_changed_options_same_name_version_rejected(self, engine):
        calls = []
        checkout = make_checkout(calls)
        install_flows(engine, [checkout])
        changed = make_checkout(calls)
        changed.max_steps = 77  # behavioral option is part of the body
        changed._definition = None
        with pytest.raises(DefinitionError, match="different body"):
            engine.register_definition(changed.definition)


class TestRuntimeSurface:
    def test_unknown_flow_start_rejected(self, engine):
        rt = FlowRuntime().install(engine)
        with pytest.raises(FlowError, match="no flow named"):
            rt.start("ghost")

    def test_register_before_install_rejected(self):
        rt = FlowRuntime()
        with pytest.raises(FlowError, match="install"):
            rt.register(make_checkout([]))

    def test_pinned_uuid(self, engine):
        checkout = make_checkout([])
        rt = install_flows(engine, [checkout])
        uuid = rt.start("checkout", 1, uuid="wf-checkout-pinned")
        assert uuid == "wf-checkout-pinned"
        engine.run()
        assert rt.result(uuid).ok

    def test_snapshot_shape(self, engine):
        checkout = make_checkout([])
        rt = install_flows(engine, [checkout])
        rt.start("checkout", 1)
        engine.run()
        snap = rt.snapshot()
        [entry] = snap["flows"]
        assert entry["name"] == "checkout"
        assert entry["version"] == "1"
        assert entry["started"] == 1
        assert entry["completed"] == 1
        assert entry["steps_executed"] == 3
        assert entry["steps_replayed"] == 3
        assert snap["counters"]["flows_started"] == 1


class TestObservability:
    def test_step_metrics_spans_and_events(self, db):
        engine = flow_engine(db, observability=Observability())
        calls = []
        checkout = make_checkout(calls)
        rt = install_flows(engine, [checkout])
        executed, replayed = [], []
        engine.obs.hooks.subscribe(FlowStepExecuted, executed.append)
        engine.obs.hooks.subscribe(FlowStepReplayed, replayed.append)
        uuid = rt.start("checkout", 5)
        engine.run()
        assert rt.result(uuid).ok

        metrics = engine.obs.metrics
        exec_counter = metrics.get("flow_steps_executed_total")
        assert exec_counter.labels("step").value == 2
        assert exec_counter.labels("transaction").value == 1
        replay_counter = metrics.get("flow_steps_replayed_total")
        assert replay_counter.labels("loop").value == 3
        assert metrics.get("flow_step_seconds").count == 3

        assert [e.step for e in executed] == ["fetch", "taxed", "debit"]
        assert executed[0].workflow_uuid == uuid
        assert executed[2].kind == "transaction"
        assert [(e.step, e.function_id) for e in replayed] == [
            ("fetch", 1),
            ("fetch", 1),
            ("taxed", 2),
        ]
        assert all(e.mode == "loop" for e in replayed)

        # Step spans parent under the Drive activity spans.
        tracer = engine.obs.tracer
        step_spans = tracer.spans(name="flow.step fetch")
        assert len(step_spans) == 1
        [span] = step_spans
        assert span.attributes["workflow_uuid"] == uuid
        assert span.attributes["function_id"] == 1
        parent = next(
            s for s in tracer.export() if s["span_id"] == span.parent_id
        )
        assert parent["name"] == "activity %s" % DRIVE

    def test_disabled_obs_collects_nothing(self, engine):
        # `engine` fixture has observability off: the runtime must not
        # touch metrics/tracer at all.
        rt = install_flows(engine, [make_checkout([])])
        uuid = rt.start("checkout", 1)
        engine.run()
        assert rt.result(uuid).ok
        assert engine.obs.metrics.collect() == []
        assert engine.obs.tracer.export() == []
