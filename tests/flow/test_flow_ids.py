"""Deterministic workflow-uuid allocation (no uuid4 anywhere on the
replay path): seeded streams, collision burning, thread safety, and
the post-resume engine veto."""

import threading

from repro.flow import FlowIdAllocator, install_flows, step, workflow

from tests.flow.harness import flow_engine
from repro.tx import SimDatabase


class TestAllocator:
    def test_same_seed_same_sequence(self):
        a = FlowIdAllocator(seed=7)
        b = FlowIdAllocator(seed=7)
        ids_a = [a.allocate("pay") for __ in range(20)]
        ids_b = [b.allocate("pay") for __ in range(20)]
        assert ids_a == ids_b
        assert len(set(ids_a)) == 20

    def test_different_seeds_diverge(self):
        assert FlowIdAllocator(seed=1).allocate("f") != FlowIdAllocator(
            seed=2
        ).allocate("f")

    def test_id_shape_and_prefix(self):
        alloc = FlowIdAllocator(seed=0, prefix="node1")
        uuid = alloc.allocate("checkout")
        prefix, flow, token = uuid.rsplit("-", 2)
        assert prefix == "node1"
        assert flow == "checkout"
        assert len(token) == 8
        int(token, 16)  # hex

    def test_vetoed_ids_are_burned_not_reissued(self):
        taken = {FlowIdAllocator(seed=3).allocate("f")}  # the 1st draw
        alloc = FlowIdAllocator(seed=3)
        issued = [alloc.allocate("f", is_taken=taken.__contains__)]
        issued.append(alloc.allocate("f", is_taken=taken.__contains__))
        assert not taken & set(issued)
        # The burned id still advanced the stream: total draws = 3.
        assert alloc.issued() == 3

    def test_concurrent_same_named_starts_get_distinct_ids(self):
        alloc = FlowIdAllocator(seed=5)
        out: list[str] = []
        lock = threading.Lock()

        def start_many():
            for __ in range(50):
                uuid = alloc.allocate("order")
                with lock:
                    out.append(uuid)

        threads = [threading.Thread(target=start_many) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(out) == 400
        assert len(set(out)) == 400


class TestEngineVeto:
    def test_resumed_runtime_never_reissues_a_precrash_uuid(self, tmp_path):
        bodies = []

        @step
        def one():
            bodies.append(1)
            return 1

        @workflow
        def tiny(flow):
            return one()

        journal = str(tmp_path / "j.log")
        db = SimDatabase()
        engine = flow_engine(db, journal_path=journal)
        rt = install_flows(engine, [tiny], seed=11)
        first = rt.start("tiny")
        engine.run()
        engine.crash()

        # Fresh engine, fresh runtime with the SAME seed: its PRNG
        # would re-draw `first`, but the engine veto burns it.
        engine2 = flow_engine(db, journal_path=journal)
        rt2 = install_flows(engine2, [tiny], seed=11)
        engine2.recover()
        engine2.run()
        second = rt2.start("tiny")
        assert second != first
        engine2.run()
        assert rt2.result(second).ok
        assert rt2.result(first).ok  # pre-crash flow intact

    def test_concurrent_starts_through_the_runtime(self, engine):
        @step
        def one():
            return 1

        @workflow
        def tiny(flow):
            return one()

        rt = install_flows(engine, [tiny])
        uuids: list[str] = []
        lock = threading.Lock()

        def starter():
            for __ in range(10):
                # Allocation is the shared-state hot spot; the engine
                # start itself must stay single-threaded, so serialize
                # it but let allocations race.
                with lock:
                    uuids.append(rt.start("tiny"))

        threads = [threading.Thread(target=starter) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(uuids)) == 40
        engine.run()
        assert all(rt.result(u).ok for u in uuids)
