"""Shared builders for the durable-flow suite."""

import json

from repro.core.scoped import install_scope_service
from repro.tx import ScopeManager, SimDatabase
from repro.wfms import Engine


def flow_engine(db, journal_path=None, **engine_kwargs):
    """An Engine with the scope service installed (flows with
    ``@transaction`` steps need it)."""
    engine = Engine(journal_path=journal_path, **engine_kwargs)
    install_scope_service(engine, ScopeManager(db))
    return engine


def normalized_audit(engine, uuid):
    """Audit tuples modulo the one legal crash divergence: an attempt
    that was in flight at the crash is journaled as started twice (the
    interrupted start, then the resumed one) — same logical attempt,
    so consecutive duplicate starts collapse."""
    rows = []
    for r in engine.audit.records(uuid):
        row = (r.event.value, r.activity, json.dumps(r.detail, sort_keys=True))
        if rows and r.event.value == "activity_started" and rows[-1] == row:
            continue
        rows.append(row)
    return rows


def assert_exactly_once(calls):
    """Every recorded step-body invocation must be unique — re-running
    a journaled body is the bug this whole subsystem exists to
    prevent."""
    seen = {}
    for c in calls:
        key = repr(c)
        seen[key] = seen.get(key, 0) + 1
    dupes = {k: n for k, n in seen.items() if n > 1}
    assert not dupes, "step bodies re-executed: %r" % dupes


__all__ = [
    "flow_engine",
    "normalized_audit",
    "assert_exactly_once",
    "ScopeManager",
    "SimDatabase",
    "Engine",
]
