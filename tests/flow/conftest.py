"""Shared fixtures for the durable-flow suite."""

import pytest

from repro.tx import SimDatabase

from tests.flow.harness import flow_engine


@pytest.fixture
def db():
    return SimDatabase()


@pytest.fixture
def engine(db):
    return flow_engine(db)
