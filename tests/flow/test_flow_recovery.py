"""Crash-resume for decorated flows, and the resume-equivalence
property: a flow killed after *any* prefix of its attempts and resumed
on a fresh engine produces the same containers, return code, execution
order, database state, and (normalized) audit trail as one that never
crashed — with every step body still executing exactly once."""

import json
import os

from repro.flow import StepFailure, install_flows, step, transaction, workflow
from repro.store import DurableStore
from repro.tx import ScopeManager, SimDatabase
from repro.wfms import Engine
from repro.core.scoped import install_scope_service

from tests.flow.harness import (
    assert_exactly_once,
    flow_engine,
    normalized_audit,
)


def capture(engine, rt, uuid, db):
    result = rt.result(uuid)
    return {
        "state": result.state,
        "rc": result.return_code,
        "value": result.value,
        "error": result.error,
        "output": engine.output(uuid),
        "order": engine.audit.execution_order(uuid),
        "audit": normalized_audit(engine, uuid),
        "db": db.snapshot(),
    }


class Harness:
    """One run of one flow over a crashable engine incarnation chain."""

    def __init__(self, tmp_path, tag, make_flows, seed=0, store_every=None):
        self.dir = str(tmp_path / tag)
        os.makedirs(self.dir, exist_ok=True)
        self.db = SimDatabase()
        self.calls: list = []
        self.holder: dict = {}
        self.make_flows = make_flows
        self.seed = seed
        self.store_every = store_every
        self.engine = None
        self.rt = None
        self._boot()

    def _boot(self):
        if self.store_every:
            store = DurableStore(
                os.path.join(self.dir, "store"),
                checkpoint_every_records=self.store_every,
            )
            engine = Engine(store=store)
            install_scope_service(engine, ScopeManager(self.db))
        else:
            engine = flow_engine(
                self.db, journal_path=os.path.join(self.dir, "j.log")
            )
        self.holder["manager"] = engine.services["tx_scopes"]
        self.engine = engine
        self.rt = install_flows(
            engine, self.make_flows(self.calls, self.holder), seed=self.seed
        )

    def crash_and_resume(self):
        self.engine.crash()
        self._boot()
        self.engine.recover()

    def run_killing_after(self, kills, max_steps=10_000):
        """Drive to quiescence, crashing after the i-th successful
        engine step for each i in ``kills`` (global count across
        incarnations)."""
        pending = sorted(set(kills), reverse=True)
        done = 0
        for __ in range(max_steps):
            if not self.engine.step():
                if pending and pending[-1] >= done:
                    # Kill point beyond the run's length: nothing left
                    # to interrupt.
                    break
                break
            done += 1
            if pending and pending[-1] == done:
                pending.pop()
                self.crash_and_resume()
        return done


def simple_flows(calls, holder):
    @step
    def add(a, b):
        calls.append(("add", a, b))
        return a + b

    @transaction
    def credit(scope, key, amount):
        calls.append(("credit", key, amount))
        return scope.increment(key, amount)

    @workflow
    def chain(flow, n):
        total = 0
        for i in range(n):
            total = add(total, i)
        bal = credit("acct:a", total)
        if bal > 3:
            total = add(total, 100)
        return {"total": total, "bal": bal}

    return [chain]


def saboteur_flows(calls, holder):
    """A pipeline whose middle @transaction step kills the *whole
    scope* on its first execution (a chaos stand-in for a timeout or
    deadlock abort) and is retried by the workflow."""

    @step
    def add(a, b):
        calls.append(("add", a, b))
        return a + b

    @transaction
    def credit(scope, key, amount):
        calls.append(("credit", key, amount))
        return scope.increment(key, amount)

    # The chaos flag must outlive attempts (each attempt re-runs the
    # workflow body from the top) — body executions are exactly-once,
    # so flipping it on first execution is deterministic per run.
    holder.setdefault("armed", True)

    @transaction
    def shaky_credit(scope, key, amount):
        # The retry is a distinct invocation (a new function_id), so
        # the exactly-once recorder keys on the chaos state too.
        calls.append(("shaky", key, "armed" if holder["armed"] else "retry"))
        scope.write("tmp:%s" % key, amount)
        if holder["armed"]:
            holder["armed"] = False
            # Abort the surrounding scope out from under the step.
            holder["manager"].rollback(scope.handle, "injected abort")
            return scope.read(key)  # raises: the scope is gone
        return scope.increment(key, amount)

    @workflow
    def pipeline(flow, n):
        total = 0
        for i in range(1, n + 1):
            total = add(total, i)
        first = credit("acct:a", total)
        paid = None
        for __ in range(2):
            try:
                paid = shaky_credit("acct:b", first)
                break
            except StepFailure as exc:
                assert exc.error_type == "ScopeError"
        tail = add(paid, 1)
        final = credit("acct:c", tail)
        return {"paid": paid, "tail": tail, "final": final}

    return [pipeline]


class TestCrashResume:
    def test_resume_skips_journaled_steps(self, tmp_path):
        h = Harness(tmp_path, "one", simple_flows, seed=2)
        uuid = h.rt.start("chain", 4)
        for __ in range(3):
            h.engine.step()
        h.crash_and_resume()
        assert h.rt.counters["flows_started"] == 0  # fresh runtime
        h.engine.run()
        result = h.rt.result(uuid)
        assert result.ok
        assert result.value == {"total": 106, "bal": 6}
        # Bodies ran exactly once across both incarnations.
        assert [c for c in h.calls if c[0] == "add"] == [
            ("add", 0, 0),
            ("add", 0, 1),
            ("add", 1, 2),
            ("add", 3, 3),
            ("add", 6, 100),
        ]
        assert h.rt.counters["flows_resumed"] == 1
        assert h.rt.counters["steps_replayed_resume"] >= 1

    def test_resume_reestablishes_the_scope(self, tmp_path):
        h = Harness(tmp_path, "scope", simple_flows, seed=3)
        uuid = h.rt.start("chain", 4)
        # Run until the credit step has executed (attempt 5 of 6).
        for __ in range(5):
            h.engine.step()
        h.crash_and_resume()
        h.engine.run()
        assert h.rt.result(uuid).ok
        assert h.db.get("acct:a") == 6
        # The credit body must not have re-run...
        assert len([c for c in h.calls if c[0] == "credit"]) == 1
        # ...its journaled effects were re-applied onto a fresh scope.
        assert h.rt.counters["scopes_reestablished"] == 1


class TestResumeEquivalence:
    """The property test: every kill point produces the baseline."""

    def _baseline(self, tmp_path, make_flows, start_args):
        h = Harness(tmp_path, "base", make_flows, seed=9)
        uuid = h.rt.start(*start_args)
        steps = h.run_killing_after([])
        base = capture(h.engine, h.rt, uuid, h.db)
        assert_exactly_once(h.calls)
        assert base["state"] == "finished" and base["rc"] == 0
        return steps, base

    def _sweep(self, tmp_path, make_flows, start_args, kill_sets, base):
        for i, kills in enumerate(kill_sets):
            h = Harness(tmp_path, "k%d" % i, make_flows, seed=9)
            uuid = h.rt.start(*start_args)
            h.run_killing_after(kills)
            got = capture(h.engine, h.rt, uuid, h.db)
            assert_exactly_once(h.calls)
            assert got == base, "kill schedule %r diverged" % (kills,)

    def test_every_single_kill_point_is_equivalent(self, tmp_path):
        steps, base = self._baseline(tmp_path, simple_flows, ("chain", 4))
        self._sweep(
            tmp_path,
            simple_flows,
            ("chain", 4),
            [[k] for k in range(1, steps + 1)],
            base,
        )

    def test_double_kills_are_equivalent(self, tmp_path):
        steps, base = self._baseline(tmp_path, simple_flows, ("chain", 4))
        self._sweep(
            tmp_path,
            simple_flows,
            ("chain", 4),
            [[1, 3], [2, steps], [1, 2]],
            base,
        )

    def test_aborted_and_retried_transaction_is_equivalent(self, tmp_path):
        """Includes a @transaction step that aborts its whole scope on
        first execution and is retried — kill points falling before,
        on, and after the abort all converge to the baseline."""
        steps, base = self._baseline(
            tmp_path, saboteur_flows, ("pipeline", 3)
        )
        assert base["value"]["paid"] == 6
        assert base["db"]["acct:b"] == 6
        assert base["db"]["acct:c"] == 7
        self._sweep(
            tmp_path,
            saboteur_flows,
            ("pipeline", 3),
            [[k] for k in range(1, steps + 1)],
            base,
        )


class TestStoreBackedResume:
    def test_checkpointed_recovery_resumes_flows(self, tmp_path):
        h = Harness(tmp_path, "st", simple_flows, seed=4, store_every=3)
        uuid = h.rt.start("chain", 4)
        for __ in range(4):
            h.engine.step()
        assert h.engine.store.status()["last_checkpoint_offset"]
        h.crash_and_resume()
        # Recovery came from snapshot + suffix, not a cold scan.
        assert h.engine.store.last_recovery["checkpoint"] is not None
        h.engine.run()
        result = h.rt.result(uuid)
        assert result.ok
        assert result.value == {"total": 106, "bal": 6}
        assert_exactly_once(h.calls)
        assert h.db.get("acct:a") == 6
