"""The chaos suite: the paper's guarantees under seeded fault schedules.

Every scenario is driven by a :class:`FaultInjector` with a seeded
RNG, run to convergence through crash/recover loops, and then **run a
second time from scratch with the same seed** — the fault trace and
the outcome must be bit-for-bit identical (replayable chaos).

Invariants asserted:

* **saga** (§4.1): every execution is either complete forward
  execution ``T1..Tn`` or a prefix with an ordered compensation suffix
  ``T1..Tj; Cj..C1`` (``verify_saga_guarantee``), with the database
  state matching; journal faults degrade the engine but never corrupt
  the durable prefix, so recovery always converges.
* **flexible** (§4.2): retriable members eventually commit (they are
  never dead), compensated members leave no effects, a committed
  execution commits exactly one declared path.
* **distributed**: under message drop/duplicate/delay plus a node
  crash, the request/reply protocol converges to the right answer
  with exactly one served instance (no duplicate effects).
"""

import pytest

from repro.core.bindings import (
    SAGA_ABORT_RC,
    register_flexible_programs,
    register_saga_programs,
    workflow_flexible_outcome,
    workflow_saga_outcome,
)
from repro.core.flexible_translator import FLEX_ABORT_RC, translate_flexible
from repro.core.saga_translator import translate_saga
from repro.core.sagas import SagaSpec, SagaStep, verify_saga_guarantee
from repro.errors import JournalError, NavigationError
from repro.resilience import (
    FaultInjector,
    InjectedCrash,
    RetryPolicy,
    chaos_rules,
    flexible_retry_policies,
)
from repro.tx import SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms.distributed import run_cluster
from repro.wfms.engine import Engine
from repro.wfms.messaging import MessageBus
from repro.workloads.banking import fig3_bindings, fig3_spec
from repro.workloads.distributed_demo import (
    configure_requester,
    configure_worker,
    make_requester,
    make_worker,
)

SAGA_SEEDS = range(20)
FLEX_SEEDS = range(12)
DIST_SEEDS = range(8)


# ---------------------------------------------------------------------------
# saga workload
# ---------------------------------------------------------------------------


def run_saga_chaos(seed, directory):
    """One saga under program + journal chaos; returns
    (outcome, db, injector)."""
    directory.mkdir(parents=True, exist_ok=True)
    spec = SagaSpec(
        "chaos", [SagaStep(n) for n in ("t1", "t2", "t3", "t4")]
    )
    translation = translate_saga(spec)
    db = SimDatabase()
    # idempotent bodies: journal faults can force a completed action to
    # re-execute after recovery (at-least-once), so effects are writes
    # of absolute values, not increments
    actions = {
        s.name: Subtransaction(s.name, db, write_value(s.name, 1))
        for s in spec.steps
    }
    comps = {
        s.name: Subtransaction("c" + s.name, db, write_value(s.name, 0))
        for s in spec.steps
    }
    injector = FaultInjector(
        chaos_rules(program_p=0.25, journal_p=0.05, max_fires=3),
        seed=seed,
    )
    journal_path = str(directory / "saga.jsonl")

    def build():
        engine = Engine(journal_path=journal_path, fault_injector=injector)
        register_saga_programs(engine, translation, actions, comps)
        engine.register_definition(translation.process)
        for step in spec.steps:
            engine.set_retry(
                "txn_%s" % step.name,
                RetryPolicy(
                    2,
                    backoff="fixed",
                    base_delay=1.0,
                    escalate_rc=SAGA_ABORT_RC,
                ),
            )
        return engine

    engine = build()
    iid = None
    for __ in range(50):
        try:
            if iid is None:
                iid = engine.start_process(translation.process_name)
            engine.drain()
            break
        except JournalError:
            # disk fault: the engine degraded; recover the durable
            # prefix on a fresh engine over the same journal
            engine = build()
            engine.recover()
            if iid is not None:
                try:
                    engine.instance_state(iid)
                except NavigationError:
                    iid = None  # the start itself was never durable
    else:
        pytest.fail("saga chaos run did not converge (seed %d)" % seed)
    assert engine.instance_state(iid) == "finished"
    outcome = workflow_saga_outcome(engine, translation, iid)
    engine.close()
    return outcome, db, injector


@pytest.mark.parametrize("seed", SAGA_SEEDS)
def test_saga_guarantee_under_chaos(seed, tmp_path):
    outcome, db, injector = run_saga_chaos(seed, tmp_path / "a")

    # the paper's guarantee: T1..Tn, or T1..Tj with Cj..C1
    assert verify_saga_guarantee(spec_of(outcome), outcome.executed,
                                 outcome.compensated)
    if outcome.committed:
        assert outcome.executed == ["t1", "t2", "t3", "t4"]
        assert all(db.get(s) == 1 for s in outcome.executed)
    else:
        # compensated steps left no effects
        assert all(db.get(s) == 0 for s in outcome.compensated)

    # replayable chaos: same seed, fresh everything => same trace and
    # same outcome
    outcome2, db2, injector2 = run_saga_chaos(seed, tmp_path / "b")
    assert injector.trace() == injector2.trace()
    assert (
        outcome.committed,
        outcome.executed,
        outcome.compensated,
    ) == (outcome2.committed, outcome2.executed, outcome2.compensated)
    assert db.snapshot() == db2.snapshot()


def spec_of(outcome):
    # the spec is fixed for the whole suite; rebuilt for clarity
    return SagaSpec("chaos", [SagaStep(n) for n in ("t1", "t2", "t3", "t4")])


# ---------------------------------------------------------------------------
# flexible workload
# ---------------------------------------------------------------------------


def run_flexible_chaos(seed):
    """Figure 3's flexible transaction under program chaos; returns
    (outcome, db, injector, spec)."""
    spec = fig3_spec()
    db = SimDatabase()
    actions, comps = fig3_bindings(db)
    translation = translate_flexible(spec)
    injector = FaultInjector(
        chaos_rules(program_p=0.2, max_fires=3), seed=seed
    )
    engine = Engine(fault_injector=injector)
    register_flexible_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    # §4.2 typing: retriable members get a budget that outlasts the
    # fault cap; pivots/compensatables escalate into the abort path
    for program, policy in flexible_retry_policies(
        spec, abort_rc=FLEX_ABORT_RC, base_delay=1.0
    ).items():
        engine.set_retry(program, policy)
    iid = engine.start_process(translation.process_name)
    engine.drain()
    assert engine.instance_state(iid) == "finished"
    outcome = workflow_flexible_outcome(engine, translation, iid)
    return outcome, db, injector, spec


@pytest.mark.parametrize("seed", FLEX_SEEDS)
def test_flexible_guarantee_under_chaos(seed):
    outcome, db, injector, spec = run_flexible_chaos(seed)

    # "retriable transactions will eventually commit if retried a
    # sufficient number of times": a retriable member is never dead
    assert all(not spec.members[name].retriable for name in outcome.dead)
    if outcome.committed:
        # exactly one declared path committed, all its effects present
        assert outcome.committed_path in spec.paths
        assert set(outcome.committed_members) == set(outcome.committed_path)
        assert all(db.get(m) == 1 for m in outcome.committed_members)
    # compensated members leave no effects behind
    assert all(db.get(m) == 0 for m in outcome.compensated)

    # replayable chaos
    outcome2, db2, injector2, __ = run_flexible_chaos(seed)
    assert injector.trace() == injector2.trace()
    assert (
        outcome.committed,
        outcome.committed_path,
        outcome.compensated,
        outcome.dead,
    ) == (
        outcome2.committed,
        outcome2.committed_path,
        outcome2.compensated,
        outcome2.dead,
    )
    assert db.snapshot() == db2.snapshot()


# ---------------------------------------------------------------------------
# distributed workload
# ---------------------------------------------------------------------------


def run_distributed_chaos(seed, directory):
    """Request/reply across two nodes under bus chaos plus one forced
    node crash; returns (result, served_instances, injector)."""
    directory.mkdir(parents=True, exist_ok=True)
    injector = FaultInjector(
        chaos_rules(
            drop_p=0.3,
            duplicate_p=0.2,
            delay_p=0.2,
            max_fires=2,
            crash_schedule=(4,),
        ),
        seed=seed,
    )
    bus = MessageBus()
    bus.install_injector(injector)
    worker = make_worker(
        bus,
        journal_path=str(directory / "worker.jsonl"),
        fault_injector=injector,
    )
    # the reply budget rides on the *node* defaults (not per-activity
    # remote_kwargs) so a crash + rebuild reconstructs the same policy
    front = make_requester(
        bus,
        journal_path=str(directory / "front.jsonl"),
        fault_injector=injector,
        request_timeout=5.0,
        request_retries=6,
    )
    iid = front.engine.start_process("Front", {"N": 7})
    for __ in range(10):
        try:
            run_cluster([worker, front], watch=[(front, iid)])
            break
        except InjectedCrash:
            # the scheduled pump crash hit one of the nodes: rebuild
            # it over its journal and keep driving
            if worker.engine.crashed:
                worker.rebuild(configure_worker)
            if front.engine.crashed:
                front.rebuild(configure_requester)
    else:
        pytest.fail("distributed chaos did not converge (seed %d)" % seed)
    result = front.engine.output(iid)["Result"]
    served = sorted(
        i.instance_id
        for i in worker.engine.navigator.instances()
        if i.instance_id.startswith("req/")
    )
    return result, served, injector


@pytest.mark.parametrize("seed", DIST_SEEDS)
def test_distributed_exactly_once_under_chaos(seed, tmp_path):
    result, served, injector = run_distributed_chaos(seed, tmp_path / "a")

    # the right answer, computed exactly once: drops were retried,
    # duplicates deduplicated by request id, the crash recovered
    assert result == 15  # 2*7 + 1
    assert served == ["req/front/pi-0001/CallDouble"]

    # replayable chaos
    result2, served2, injector2 = run_distributed_chaos(
        seed, tmp_path / "b"
    )
    assert injector.trace() == injector2.trace()
    assert (result, served) == (result2, served2)


# ---------------------------------------------------------------------------
# durable-store workload: checkpoints + compaction + archive under chaos
# ---------------------------------------------------------------------------

from repro.resilience import FaultRule  # noqa: E402
from repro.store import DurableStore  # noqa: E402

STORE_SEEDS = range(8)
SNAPSHOT_TEAR_SEEDS = range(3)
COMPACT_TEAR_SEEDS = range(3)


def run_saga_store_chaos(seed, directory, *, extra_rules=()):
    """The saga chaos scenario on a store-backed engine: checkpoints
    every 3 records, compaction after each checkpoint, finished roots
    archived.  Returns (outcome, db, injector)."""
    directory.mkdir(parents=True, exist_ok=True)
    spec = SagaSpec(
        "chaos", [SagaStep(n) for n in ("t1", "t2", "t3", "t4")]
    )
    translation = translate_saga(spec)
    db = SimDatabase()
    actions = {
        s.name: Subtransaction(s.name, db, write_value(s.name, 1))
        for s in spec.steps
    }
    comps = {
        s.name: Subtransaction("c" + s.name, db, write_value(s.name, 0))
        for s in spec.steps
    }
    injector = FaultInjector(
        chaos_rules(program_p=0.25, journal_p=0.05, max_fires=3)
        + list(extra_rules),
        seed=seed,
    )
    store_dir = str(directory / "store")

    def build():
        engine = Engine(
            store=DurableStore(store_dir, checkpoint_every_records=3),
            fault_injector=injector,
        )
        register_saga_programs(engine, translation, actions, comps)
        engine.register_definition(translation.process)
        for step in spec.steps:
            engine.set_retry(
                "txn_%s" % step.name,
                RetryPolicy(
                    2,
                    backoff="fixed",
                    base_delay=1.0,
                    escalate_rc=SAGA_ABORT_RC,
                ),
            )
        return engine

    engine = build()
    iid = None
    for __ in range(50):
        try:
            if iid is None:
                iid = engine.start_process(translation.process_name)
            engine.drain()
            break
        except JournalError:
            # disk/snapshot/compaction fault: the engine degraded;
            # recover from the latest valid checkpoint + suffix
            engine = build()
            engine.recover()
            if iid is not None:
                try:
                    engine.instance_state(iid)
                except NavigationError:
                    iid = None  # the start itself was never durable
    else:
        pytest.fail("store chaos run did not converge (seed %d)" % seed)
    assert engine.instance_state(iid) == "finished"
    outcome = workflow_saga_outcome(engine, translation, iid)
    status = engine.store_status()
    engine.close()
    return outcome, db, injector, status


@pytest.mark.parametrize("seed", STORE_SEEDS)
def test_store_chaos_matches_plain_journal_run(seed, tmp_path):
    """The tentpole guarantee: a store-backed run (checkpoints +
    compaction + archive) is *trace- and outcome-identical* to the
    plain single-file-journal run of the same seed — durability
    machinery changes recovery cost, never behaviour."""
    outcome, db, injector, status = run_saga_store_chaos(
        seed, tmp_path / "store_a"
    )
    assert verify_saga_guarantee(
        spec_of(outcome), outcome.executed, outcome.compensated
    )
    if outcome.committed:
        assert all(db.get(s) == 1 for s in outcome.executed)
    else:
        assert all(db.get(s) == 0 for s in outcome.compensated)
    # the finished saga was archived out of live memory
    assert status["archived_roots"] == 1

    # bit-identical to the no-checkpoint run of the same seed
    plain_outcome, plain_db, plain_injector = run_saga_chaos(
        seed, tmp_path / "plain"
    )
    assert injector.trace() == plain_injector.trace()
    assert (
        outcome.committed,
        outcome.executed,
        outcome.compensated,
    ) == (
        plain_outcome.committed,
        plain_outcome.executed,
        plain_outcome.compensated,
    )
    assert db.snapshot() == plain_db.snapshot()

    # and replayable against itself: same seed => same everything
    outcome2, db2, injector2, __ = run_saga_store_chaos(
        seed, tmp_path / "store_b"
    )
    assert injector.trace() == injector2.trace()
    assert db.snapshot() == db2.snapshot()


@pytest.mark.parametrize("seed", SNAPSHOT_TEAR_SEEDS)
def test_store_chaos_survives_torn_snapshots(seed, tmp_path):
    """Crash *during* checkpoint write: the torn snapshot is skipped,
    recovery falls back to an older one, the saga guarantee holds and
    the outcome still matches the plain run (the extra scheduled fault
    consumes no RNG, so program/journal chaos is unchanged)."""
    tear = FaultRule("snapshot.write", schedule={2})
    outcome, db, injector, __ = run_saga_store_chaos(
        seed, tmp_path / "store", extra_rules=[tear]
    )
    assert verify_saga_guarantee(
        spec_of(outcome), outcome.executed, outcome.compensated
    )
    plain_outcome, plain_db, __ = run_saga_chaos(seed, tmp_path / "plain")
    assert (
        outcome.committed,
        outcome.executed,
        outcome.compensated,
    ) == (
        plain_outcome.committed,
        plain_outcome.executed,
        plain_outcome.compensated,
    )
    assert db.snapshot() == plain_db.snapshot()
    # the store run saw exactly one extra fired fault: the torn write
    extra = [f for f in injector.trace() if f[0] == "snapshot.write"]
    assert len(extra) <= 1


@pytest.mark.parametrize("seed", COMPACT_TEAR_SEEDS)
def test_store_chaos_survives_aborted_compaction(seed, tmp_path):
    """Crash *during* compaction (before its manifest commit): the old
    manifest still governs, nothing is lost, outcomes match plain."""
    tear = FaultRule("compact", schedule={2})
    outcome, db, __, __status = run_saga_store_chaos(
        seed, tmp_path / "store", extra_rules=[tear]
    )
    assert verify_saga_guarantee(
        spec_of(outcome), outcome.executed, outcome.compensated
    )
    plain_outcome, plain_db, __ = run_saga_chaos(seed, tmp_path / "plain")
    assert (
        outcome.committed,
        outcome.executed,
        outcome.compensated,
    ) == (
        plain_outcome.committed,
        plain_outcome.executed,
        plain_outcome.compensated,
    )
    assert db.snapshot() == plain_db.snapshot()
