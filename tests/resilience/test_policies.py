"""Tests for retry, timeout and circuit-breaker policies."""

import pytest

from repro.core.flexible import FlexibleMember, FlexibleSpec
from repro.errors import WorkflowError
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    Timeout,
    flexible_retry_policies,
)


class TestRetryPolicy:
    def test_allows_up_to_max_retries(self):
        policy = RetryPolicy(2)
        assert policy.allows(1) and policy.allows(2)
        assert not policy.allows(3)

    def test_zero_budget_allows_nothing(self):
        assert not RetryPolicy(0).allows(1)

    def test_fixed_backoff(self):
        policy = RetryPolicy(5, backoff="fixed", base_delay=1.5)
        assert [policy.delay(n) for n in (1, 2, 3)] == [1.5, 1.5, 1.5]

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(
            9, backoff="exponential", base_delay=1.0, factor=2.0, max_delay=5.0
        )
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_is_deterministic_per_retry_number(self):
        a = RetryPolicy(5, backoff="fixed", base_delay=1.0, jitter=0.5, seed=11)
        b = RetryPolicy(5, backoff="fixed", base_delay=1.0, jitter=0.5, seed=11)
        assert [a.delay(n) for n in (1, 2, 3)] == [
            b.delay(n) for n in (1, 2, 3)
        ]
        assert all(
            1.0 <= a.delay(n) <= 1.5 for n in (1, 2, 3)
        )
        assert RetryPolicy(
            5, backoff="fixed", base_delay=1.0, jitter=0.5, seed=12
        ).delay(1) != a.delay(1)

    def test_validation(self):
        with pytest.raises(WorkflowError):
            RetryPolicy(-1)
        with pytest.raises(WorkflowError, match="backoff"):
            RetryPolicy(1, backoff="linear")
        with pytest.raises(WorkflowError):
            RetryPolicy(1, base_delay=-1.0)


class TestTimeout:
    def test_expiry_is_inclusive(self):
        timeout = Timeout(5.0)
        assert not timeout.expired(10.0, 14.9)
        assert timeout.expired(10.0, 15.0)

    def test_validation(self):
        with pytest.raises(WorkflowError):
            Timeout(0.0)


class TestCircuitBreaker:
    def test_opens_at_failure_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_after=10.0)
        assert breaker.state == CLOSED
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state == CLOSED and breaker.allow(2.0)
        breaker.record_failure(3.0)
        assert breaker.state == OPEN
        assert not breaker.allow(3.0)

    def test_half_open_after_cooldown_admits_one_trial(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(9.9)
        assert breaker.allow(10.0)  # cooldown passed: trial admitted
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(10.0)  # only one trial at a time

    def test_trial_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_success(11.0)
        assert breaker.state == CLOSED
        assert breaker.failures == 0
        assert breaker.allow(11.0)

    def test_trial_failure_reopens_and_restarts_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_failure(11.0)
        assert breaker.state == OPEN
        assert not breaker.allow(20.0)  # cooldown counts from 11.0
        assert breaker.allow(21.0)

    def test_transitions_history(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after=10.0)
        breaker.record_failure(1.0)
        breaker.allow(11.0)
        breaker.record_success(12.0)
        assert breaker.transitions == [
            (OPEN, 1.0),
            (HALF_OPEN, 11.0),
            (CLOSED, 12.0),
        ]

    def test_validation(self):
        with pytest.raises(WorkflowError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(WorkflowError):
            CircuitBreaker(reset_after=0.0)


class TestFlexibleRetryPolicies:
    def test_retriable_members_get_the_generous_budget(self):
        spec = FlexibleSpec(
            "f",
            [
                FlexibleMember("t1", compensatable=True),
                FlexibleMember("t2", retriable=True),
                FlexibleMember("t3"),  # pivot
            ],
            [["t1", "t2"], ["t1", "t3"]],
        )
        policies = flexible_retry_policies(
            spec, abort_rc=0, retriable_retries=8, other_retries=1
        )
        assert set(policies) == {"txn_t1", "txn_t2", "txn_t3"}
        assert policies["txn_t2"].max_retries == 8
        assert policies["txn_t1"].max_retries == 1
        assert policies["txn_t3"].max_retries == 1
        assert all(p.escalate_rc == 0 for p in policies.values())
