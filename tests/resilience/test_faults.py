"""Tests for the deterministic fault injector and its runtime sites."""

import pytest

from repro.errors import JournalError, ProgramError, WorkflowError
from repro.resilience import FaultInjector, FaultRule, chaos_rules
from repro.wfms.engine import Engine
from repro.wfms.journal import Journal
from repro.wfms.messaging import MessageBus, dlq_name
from repro.wfms.model import Activity, ProcessDefinition


class TestFaultRule:
    def test_unknown_site_rejected(self):
        with pytest.raises(WorkflowError, match="unknown fault site"):
            FaultRule("network", schedule={1})

    def test_illegal_action_for_site_rejected(self):
        with pytest.raises(WorkflowError, match="does not support action"):
            FaultRule("program", "drop", schedule={1})

    def test_default_action_is_first_legal_one(self):
        assert FaultRule("bus.send", schedule={1}).action == "drop"
        assert FaultRule("program", schedule={1}).action == "raise"

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(WorkflowError, match="probability"):
            FaultRule("program", probability=1.5)

    def test_rule_that_never_fires_rejected(self):
        with pytest.raises(WorkflowError, match="fires never"):
            FaultRule("program")

    def test_delay_below_one_sweep_rejected(self):
        with pytest.raises(WorkflowError, match="delay"):
            FaultRule("bus.send", "delay", schedule={1}, delay=0)


class TestDecide:
    def test_schedule_fires_on_exact_match_counts(self):
        injector = FaultInjector(
            [FaultRule("program", match="p", schedule={2, 4})]
        )
        fired = [
            injector.decide("program", "p") is not None for __ in range(5)
        ]
        assert fired == [False, True, False, True, False]

    def test_non_matching_key_does_not_advance_count(self):
        injector = FaultInjector(
            [FaultRule("program", match="p", schedule={2})]
        )
        assert injector.decide("program", "other") is None
        assert injector.decide("program", "other") is None
        assert injector.decide("program", "p") is None  # count 1
        assert injector.decide("program", "p") is not None  # count 2

    def test_max_fires_caps_the_rule(self):
        injector = FaultInjector(
            [FaultRule("program", probability=1.0, max_fires=2)]
        )
        fired = [
            injector.decide("program", "p") is not None for __ in range(5)
        ]
        assert fired == [True, True, False, False, False]
        assert injector.fire_counts() == [2]

    def test_same_seed_same_trace(self):
        def run(seed):
            injector = FaultInjector(
                [
                    FaultRule("program", probability=0.5),
                    FaultRule("bus.send", "drop", probability=0.3),
                ],
                seed=seed,
            )
            for i in range(30):
                injector.decide("program", "p%d" % (i % 3))
                injector.decide("bus.send", "q")
            return injector.trace()

        assert run(7) == run(7)
        assert run(7) != run(8)  # 30 draws at p=0.5: collision ~0

    def test_draws_consumed_even_when_rule_cannot_fire(self):
        # A capped rule keeps consuming its probability draw, so the
        # rules after it see the same RNG stream whether or not it
        # already fired -- decisions depend on call order only.
        def second_rule_fires(max_fires):
            injector = FaultInjector(
                [
                    FaultRule(
                        "program", probability=0.5, max_fires=max_fires
                    ),
                    FaultRule("bus.send", "drop", probability=0.5),
                ],
                seed=3,
            )
            fires = []
            for __ in range(20):
                injector.decide("program", "p")
                fires.append(injector.decide("bus.send", "q") is not None)
            return fires

        assert second_rule_fires(0) == second_rule_fires(100)

    def test_first_firing_rule_wins(self):
        injector = FaultInjector(
            [
                FaultRule("bus.send", "drop", schedule={1}),
                FaultRule("bus.send", "duplicate", schedule={1}),
            ]
        )
        rule = injector.decide("bus.send", "q")
        assert rule.action == "drop"
        # both rules matched; only the first one fired
        assert injector.fire_counts() == [1, 0]


class TestSiteAdapters:
    def test_before_program_raises_program_error(self):
        injector = FaultInjector([FaultRule("program", schedule={1})])
        with pytest.raises(ProgramError, match="injected fault"):
            injector.before_program("pi-1", "A", "txn_a")

    def test_on_journal_raises_journal_error(self):
        injector = FaultInjector([FaultRule("journal.fsync", schedule={1})])
        with pytest.raises(JournalError, match="injected fault"):
            injector.on_journal("fsync", "append")

    def test_on_pump_returns_crash_decision(self):
        injector = FaultInjector(
            [FaultRule("node.pump", match="worker", schedule={2})]
        )
        assert injector.on_pump("worker") is False
        assert injector.on_pump("front") is False
        assert injector.on_pump("worker") is True


class TestChaosRules:
    def test_zero_probabilities_produce_no_rules(self):
        assert chaos_rules() == []

    def test_standard_mix(self):
        rules = chaos_rules(
            program_p=0.2,
            drop_p=0.1,
            duplicate_p=0.1,
            delay_p=0.1,
            journal_p=0.05,
            crash_schedule=(3,),
        )
        assert [(r.site, r.action) for r in rules] == [
            ("program", "raise"),
            ("bus.send", "drop"),
            ("bus.send", "duplicate"),
            ("bus.send", "delay"),
            ("journal.append", "raise"),
            ("node.pump", "crash"),
        ]
        assert all(
            r.max_fires == 3 for r in rules if r.site != "node.pump"
        )


class TestBusInjection:
    def test_drop_returns_id_but_enqueues_nothing(self):
        bus = MessageBus()
        bus.install_injector(
            FaultInjector([FaultRule("bus.send", "drop", schedule={1})])
        )
        msg_id = bus.send("q", {"n": 1})
        assert msg_id
        assert bus.depth("q") == 0
        stats = bus.stats("q")
        assert stats["sent"] == 1 and stats["dropped"] == 1

    def test_duplicate_enqueues_twin_with_distinct_id(self):
        bus = MessageBus()
        bus.install_injector(
            FaultInjector([FaultRule("bus.send", "duplicate", schedule={1})])
        )
        bus.send("q", {"n": 1})
        assert bus.depth("q") == 2
        first = bus.receive("q")
        second = bus.receive("q")
        assert first[0] != second[0]
        assert first[1] == second[1] == {"n": 1}
        assert bus.stats("q")["duplicated"] == 1

    def test_delay_sits_out_receive_sweeps(self):
        bus = MessageBus()
        bus.install_injector(
            FaultInjector(
                [FaultRule("bus.send", "delay", schedule={1}, delay=2)]
            )
        )
        bus.send("q", {"n": 1})
        bus.send("q", {"n": 2})  # rule already fired; clean send
        # the delayed head sits out two sweeps; the later message
        # overtakes it
        assert bus.receive("q")[1] == {"n": 2}
        assert bus.receive("q") is None  # sweep 2: hold 1 left
        assert bus.receive("q")[1] == {"n": 1}
        assert bus.stats("q")["delayed"] == 1

    def test_without_injector_sends_are_clean(self):
        bus = MessageBus()
        bus.send("q", {"n": 1})
        assert bus.depth("q") == 1
        assert bus.stats("q")["dropped"] == 0


class TestJournalInjection:
    def test_injected_append_fails_before_any_write(self, tmp_path):
        path = tmp_path / "j.jsonl"
        injector = FaultInjector(
            [FaultRule("journal.append", match="process_started", schedule={1})]
        )
        journal = Journal(path, injector=injector)
        with pytest.raises(JournalError):
            journal.append({"type": "process_started", "instance": "pi-1"})
        # neither the file nor memory claims the record
        assert journal.records() == []
        journal.close()
        assert path.read_text() == ""

    def test_injected_fsync_fails_after_durable_prefix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        injector = FaultInjector(
            [FaultRule("journal.fsync", schedule={2})]
        )
        journal = Journal(path, injector=injector)
        journal.append({"type": "process_started", "instance": "pi-1"})
        with pytest.raises(JournalError):
            journal.append({"type": "process_finished", "instance": "pi-1"})
        journal.abandon()
        assert path.read_text().count("\n") >= 1  # first record durable


class TestEngineDegrade:
    def _definition(self):
        defn = ProcessDefinition("P")
        defn.add_activity(Activity("A", program="ok"))
        return defn

    def test_journal_fault_degrades_engine_to_crashed(self, tmp_path):
        injector = FaultInjector(
            [
                FaultRule(
                    "journal.append",
                    match="activity_completed",
                    schedule={1},
                )
            ]
        )
        engine = Engine(
            journal_path=tmp_path / "j.jsonl", fault_injector=injector
        )
        engine.register_program("ok", lambda ctx: 0)
        engine.register_definition(self._definition())
        iid = engine.start_process("P")
        with pytest.raises(JournalError):
            engine.run()
        assert engine.crashed
        from repro.errors import NavigationError

        with pytest.raises(NavigationError, match="crashed"):
            engine.step()

        # the durable prefix replays on a fresh engine; the interrupted
        # activity is re-executed from the beginning
        engine2 = Engine(journal_path=tmp_path / "j.jsonl")
        engine2.register_program("ok", lambda ctx: 0)
        engine2.register_definition(self._definition())
        engine2.recover()
        engine2.run()
        assert engine2.instance_state(iid) == "finished"
