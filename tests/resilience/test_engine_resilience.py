"""Retry/timeout/escalation semantics threaded through the engine."""

import pytest

from repro.errors import ProgramError
from repro.obs import ActivityEscalated, Observability, RetryScheduled
from repro.resilience import FaultInjector, FaultRule, RetryPolicy, Timeout
from repro.wfms.audit import AuditEvent
from repro.wfms.engine import Engine
from repro.wfms.model import Activity, ProcessDefinition
from repro.wfms.datatypes import DataType, VariableDecl


def single_activity_definition(program="flaky", name="P"):
    defn = ProcessDefinition(name)
    defn.add_activity(Activity("A", program=program))
    return defn


def branching_definition():
    """A -> Ok on RC = 0, A -> Fallback on RC = 7."""
    defn = ProcessDefinition("P")
    defn.add_activity(Activity("A", program="flaky"))
    defn.add_activity(Activity("Ok", program="nop"))
    defn.add_activity(Activity("Fallback", program="nop"))
    defn.connect("A", "Ok", "RC = 0")
    defn.connect("A", "Fallback", "RC = 7")
    return defn


def failing_n_times(n):
    calls = []

    def program(ctx):
        calls.append(1)
        if len(calls) <= n:
            raise RuntimeError("boom %d" % len(calls))
        return 0

    return program, calls


class TestRetry:
    def test_transient_failure_retries_to_success(self):
        engine = Engine()
        program, calls = failing_n_times(2)
        engine.register_program("flaky", program)
        engine.register_definition(single_activity_definition())
        engine.set_retry(
            "flaky", RetryPolicy(5, backoff="fixed", base_delay=2.0)
        )
        iid = engine.start_process("P")
        engine.drain()
        assert engine.instance_state(iid) == "finished"
        assert len(calls) == 3
        # two backoffs of 2 logical seconds each
        assert engine.clock == 4.0
        retries = engine.audit.records(iid, AuditEvent.ACTIVITY_RETRY)
        assert [r.detail["retry"] for r in retries] == [1, 2]
        assert all(r.detail["delay"] == 2.0 for r in retries)

    def test_zero_delay_retries_without_clock_movement(self):
        engine = Engine()
        program, calls = failing_n_times(3)
        engine.register_program("flaky", program)
        engine.register_definition(single_activity_definition())
        engine.set_retry("flaky", RetryPolicy(5, backoff="fixed"))
        iid = engine.start_process("P")
        engine.run()  # no drain needed: delay is 0
        assert engine.instance_state(iid) == "finished"
        assert len(calls) == 4
        assert engine.clock == 0.0

    def test_without_policy_the_failure_surfaces(self):
        engine = Engine()
        program, __ = failing_n_times(1)
        engine.register_program("flaky", program)
        engine.register_definition(single_activity_definition())
        engine.start_process("P")
        with pytest.raises(ProgramError, match="boom"):
            engine.run()

    def test_exhaustion_without_escalate_rc_reraises(self):
        engine = Engine()
        program, calls = failing_n_times(100)
        engine.register_program("flaky", program)
        engine.register_definition(single_activity_definition())
        engine.set_retry("flaky", RetryPolicy(2, backoff="fixed"))
        engine.start_process("P")
        with pytest.raises(ProgramError, match="boom 3"):
            engine.run()
        assert len(calls) == 3  # initial + 2 retries

    def test_completed_attempt_resets_the_retry_budget(self):
        # each activity gets its own budget; a success clears the count
        engine = Engine()
        fails = {"A": 2, "B": 2}
        calls = {"A": 0, "B": 0}

        def program(ctx):
            calls[ctx.activity] += 1
            if calls[ctx.activity] <= fails[ctx.activity]:
                raise RuntimeError("boom")
            return 0

        engine.register_program("flaky", program)
        defn = ProcessDefinition("P")
        defn.add_activity(Activity("A", program="flaky"))
        defn.add_activity(Activity("B", program="flaky"))
        defn.connect("A", "B")
        engine.register_definition(defn)
        engine.set_retry("flaky", RetryPolicy(2, backoff="fixed"))
        iid = engine.start_process("P")
        engine.run()
        assert engine.instance_state(iid) == "finished"
        assert calls == {"A": 3, "B": 3}


class TestEscalation:
    def test_exhaustion_escalates_with_configured_rc(self):
        engine = Engine()
        program, calls = failing_n_times(100)
        engine.register_program("flaky", program)
        engine.register_program("nop", lambda ctx: 0)
        engine.register_definition(branching_definition())
        engine.set_retry(
            "flaky", RetryPolicy(1, backoff="fixed", escalate_rc=7)
        )
        iid = engine.start_process("P")
        engine.drain()
        result = engine.result(iid)
        assert result.finished
        assert "Fallback" in result.execution_order
        assert "Ok" in result.dead_activities
        assert len(calls) == 2
        escalations = engine.audit.records(
            iid, AuditEvent.ACTIVITY_ESCALATED
        )
        assert len(escalations) == 1
        assert escalations[0].detail["reason"] == "retries_exhausted"
        assert escalations[0].detail["rc"] == 7

    def test_injected_faults_drive_the_retry_loop(self):
        injector = FaultInjector(
            [FaultRule("program", match="flaky", schedule={1, 2})]
        )
        engine = Engine(fault_injector=injector)
        engine.register_program("flaky", lambda ctx: 0)
        engine.register_definition(single_activity_definition())
        engine.set_retry(
            "flaky", RetryPolicy(3, backoff="fixed", base_delay=1.0)
        )
        iid = engine.start_process("P")
        engine.drain()
        assert engine.instance_state(iid) == "finished"
        assert injector.trace() == [
            ("program", "flaky", "raise", 1),
            ("program", "flaky", "raise", 2),
        ]

    def test_retry_timeout_escalates_with_timeout_rc(self):
        engine = Engine()
        program, calls = failing_n_times(100)
        engine.register_program("flaky", program)
        engine.register_program("nop", lambda ctx: 0)
        engine.register_definition(branching_definition())
        engine.set_retry(
            "flaky",
            RetryPolicy(100, backoff="fixed", base_delay=5.0, escalate_rc=0),
        )
        engine.set_timeout("flaky", Timeout(12.0, escalate_rc=7))
        iid = engine.start_process("P")
        engine.drain()
        result = engine.result(iid)
        assert result.finished
        assert "Fallback" in result.execution_order
        # attempts at t=0, 5, 10 fail within budget; the t=15 failure
        # is past the 12-second budget and escalates
        assert len(calls) == 4
        escalations = engine.audit.records(
            iid, AuditEvent.ACTIVITY_ESCALATED
        )
        assert escalations[0].detail["reason"] == "timeout"


class TestPollTimeout:
    def test_polling_loop_escalates_when_budget_expires(self):
        engine = Engine()
        polls = []

        def poll(ctx):
            polls.append(engine.clock)
            ctx.output.set("Done", 0)  # the reply never comes
            return 0

        engine.register_program("poll", poll)
        defn = ProcessDefinition("P")
        defn.add_activity(
            Activity(
                "A",
                program="poll",
                output_spec=[VariableDecl("Done", DataType.LONG)],
                exit_condition="Done = 1",
            )
        )
        engine.register_definition(defn)
        engine.set_reschedule_delay("poll", 2.0)
        engine.set_timeout("poll", Timeout(7.0, escalate_rc=9))
        iid = engine.start_process("P")
        engine.drain()
        assert engine.instance_state(iid) == "finished"
        # polls at t=0,2,4,6; the t=8 completion is past the budget
        assert polls == [0.0, 2.0, 4.0, 6.0, 8.0]
        instance = engine.navigator.instance(iid)
        assert instance.activity("A").output.return_code == 9


class TestObservability:
    def test_retry_and_escalation_events_and_counters(self):
        obs = Observability()
        events = []
        obs.hooks.subscribe(RetryScheduled, events.append)
        obs.hooks.subscribe(ActivityEscalated, events.append)
        engine = Engine(observability=obs)
        program, __ = failing_n_times(100)
        engine.register_program("flaky", program)
        engine.register_program("nop", lambda ctx: 0)
        engine.register_definition(branching_definition())
        engine.set_retry(
            "flaky", RetryPolicy(2, backoff="fixed", escalate_rc=7)
        )
        iid = engine.start_process("P")
        engine.drain()
        kinds = [type(e).__name__ for e in events]
        assert kinds == [
            "RetryScheduled",
            "RetryScheduled",
            "ActivityEscalated",
        ]
        assert events[0].retry == 1 and events[1].retry == 2
        assert events[2].reason == "retries_exhausted"
        assert events[2].return_code == 7
        metrics = obs.metrics
        assert (
            metrics.counter("wfms_activity_retries_total").value == 2
        )
        assert (
            metrics.counter(
                "wfms_activity_escalations_total",
                labels=("reason",),
            )
            .labels("retries_exhausted")
            .value
            == 1
        )


class TestEscalationReplay:
    def _build(self, path, succeed):
        engine = Engine(journal_path=path)
        calls = []

        def program(ctx):
            calls.append(1)
            if not succeed:
                raise RuntimeError("boom")
            return 0

        engine.register_program("flaky", program)
        engine.register_program("nop", lambda ctx: 0)
        engine.register_definition(branching_definition())
        engine.set_retry(
            "flaky", RetryPolicy(1, backoff="fixed", escalate_rc=7)
        )
        return engine, calls

    def test_escalated_completion_replays_identically(self, tmp_path):
        path = tmp_path / "j.jsonl"
        engine, __ = self._build(path, succeed=False)
        iid = engine.start_process("P")
        engine.drain()
        before = engine.result(iid)
        assert "Fallback" in before.execution_order
        engine.crash()

        # The recovered engine replays the journaled escalation even
        # though the program would now succeed: the decision was made
        # once and journaled, not re-derived.
        engine2, calls2 = self._build(path, succeed=True)
        engine2.recover()
        engine2.run()
        after = engine2.result(iid)
        assert after.state == "finished"
        assert calls2 == []  # nothing re-invoked
        assert sorted(after.execution_order) == sorted(
            before.execution_order
        )
        assert after.dead_activities == before.dead_activities
