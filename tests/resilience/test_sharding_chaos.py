"""Sharded chaos: the saga guarantee across shard boundaries under
seeded cross-shard envelope faults plus a scheduled single-shard crash.

Each seed runs the cross-shard saga (``ShardSaga``: local step, remote
step served by the shard its request id hashes to, local finish, with
remote + local compensations on the failure edges) on a journal-backed
2-shard cluster under drop/duplicate/delay on the bus, program faults
on the subtransactions, and one scheduled ``node.pump`` crash that
takes a single shard down mid-run (recovered per shard — never a
cluster replay).  Every seed is then run a second time from scratch:
the fault trace, the database state and the outcome must be
bit-for-bit identical.

The invariant is the paper's saga guarantee (§4.1) lifted across
shards: a committed run has ``local=1, remote=1, final=1``; an aborted
run has compensated back to ``local=0`` with the remote step either
never done or undone (``remote != 1``).
"""

import pytest

from repro.errors import JournalError
from repro.resilience import FaultInjector, InjectedCrash, chaos_rules
from repro.resilience.faults import FaultRule
from repro.tx import SimDatabase
from repro.wfms.sharding import ShardedEngine
from repro.workloads.sharded_demo import (
    configure_sharded_saga,
    saga_outcome,
)

SHARDED_SEEDS = range(12)


def make_injector(seed):
    """Cross-shard envelope chaos + subtransaction faults + one
    scheduled pump crash.  Program-fault max_fires stays below the
    saga programs' retry budget so faults are absorbed by retries, and
    aborts only arise from the forward call's tight timeout budget."""
    rules = chaos_rules(
        program_p=0.25,
        drop_p=0.35,
        duplicate_p=0.2,
        delay_p=0.2,
        max_fires=2,
    )
    rules.append(
        FaultRule("node.pump", "crash", match="shard-*", schedule={6})
    )
    return FaultInjector(seed=seed, rules=rules)


def run_sharded_saga_chaos(seed, directory):
    """One cross-shard saga under chaos; returns
    (outcome, db_snapshot, trace, recoveries)."""
    directory.mkdir(parents=True, exist_ok=True)
    db = SimDatabase()
    injector = make_injector(seed)
    sharded = ShardedEngine(
        2,
        journal_dir=directory,
        fault_injector=injector,
        seed=seed,
        poll_interval=1.0,
    )
    configure_sharded_saga(sharded, db)
    iid = sharded.start_process("ShardSaga")
    recoveries = 0
    for __ in range(40):
        try:
            sharded.run()
            break
        except (InjectedCrash, JournalError):
            recoveries += len(sharded.recover())
    else:
        pytest.fail("sharded chaos run did not converge")
    assert sharded.instance_state(iid) == "finished"
    return saga_outcome(db), db.snapshot(), injector.trace(), recoveries


class TestShardedSagaChaos:
    @pytest.mark.parametrize("seed", SHARDED_SEEDS)
    def test_guarantee_holds_and_replay_is_identical(self, seed, tmp_path):
        first = run_sharded_saga_chaos(seed, tmp_path / "a")
        second = run_sharded_saga_chaos(seed, tmp_path / "b")

        outcome, db_state, trace, recoveries = first
        verdict, local, remote, final = outcome
        if verdict == "committed":
            assert (local, remote, final) == (1, 1, 1)
        else:
            assert local == 0 and remote != 1 and final != 1

        # Replayable chaos: the second run saw the same faults in the
        # same order and ended in the same state.
        assert second[2] == trace
        assert second[1] == db_state
        assert second[0] == outcome
        assert second[3] == recoveries

        # The schedule fired: exactly one shard crashed and recovered.
        assert recoveries == 1
        assert any(site == "node.pump" for site, __, __, __ in trace)

    def test_seed_mix_exercises_both_outcomes(self, tmp_path):
        """The chaos parameters are tuned so the sweep reaches commits
        *and* compensated aborts — a suite that only ever commits
        proves nothing about the compensation path."""
        verdicts = set()
        for seed in SHARDED_SEEDS:
            outcome, __, __, __ = run_sharded_saga_chaos(
                seed, tmp_path / ("s%d" % seed)
            )
            verdicts.add(outcome[0])
        assert verdicts == {"committed", "aborted"}
