"""Distributed resilience: dead-letter cap, pending-reply leak fix,
deadlock detection, request timeouts and circuit breaking."""

import pytest

from repro.errors import WorkflowError
from repro.resilience import CircuitBreaker, FaultInjector, FaultRule, InjectedCrash
from repro.wfms.distributed import WorkflowNode, run_cluster
from repro.wfms.messaging import MessageBus, dlq_name
from repro.workloads.distributed_demo import (
    configure_requester,
    configure_worker,
    make_requester,
    make_worker,
)


class TestDeadLetterCap:
    def test_poisoned_request_is_dead_lettered_at_the_cap(self):
        bus = MessageBus()
        worker = make_worker(bus, max_deliveries=3)
        bus.send(
            "node:worker",
            {
                "type": "request",
                "request_id": "front/pi-0001/Call",
                "process": "NoSuchProcess",
                "reply_to": "replies:front",
            },
        )
        # deliveries below the cap redeliver (the pre-existing
        # contract: a transient handler error must not lose the message)
        for __ in range(2):
            with pytest.raises(WorkflowError, match="does not serve"):
                worker.pump()
        # at the cap the message moves to the DLQ instead of wedging
        # the pump forever
        assert worker.pump() == 1
        assert bus.depth("node:worker") == 0
        dlq = dlq_name("node:worker")
        assert bus.depth(dlq) == 1
        assert bus.stats("node:worker")["dead_lettered"] == 1
        msg = bus.receive_with_headers(dlq)
        assert "does not serve" in msg[2]["dead-letter-reason"]
        # the pump is clean afterwards
        assert worker.pump() == 0

    def test_healthy_messages_after_the_poison_still_flow(self):
        bus = MessageBus()
        worker = make_worker(bus, max_deliveries=2)
        bus.send(
            "node:worker",
            {
                "type": "request",
                "request_id": "x/y/z",
                "process": "Nope",
                "reply_to": "replies:x",
            },
        )
        bus.send(
            "node:worker",
            {
                "type": "request",
                "request_id": "x/y/w",
                "process": "Double",
                "input": {"In": 4},
                "reply_to": "replies:x",
            },
        )
        with pytest.raises(WorkflowError):
            worker.pump()
        worker.pump()  # dead-letters the poison, handles the request
        worker.engine.run()
        worker.pump()  # flush the reply
        reply = bus.receive("replies:x")
        assert reply is not None
        assert reply[1]["output"]["Out"] == 8


class TestPendingLeakFix:
    def test_lost_instance_answers_with_error_reply(self):
        bus = MessageBus()
        worker = make_worker(bus)
        # a pending entry whose served instance does not exist (the
        # engine was rebuilt from a journal that never recorded it)
        worker._pending["front/pi-0001/Call"] = ("replies:front", {})
        sent = worker._flush_pending()
        assert sent == 1
        assert worker._pending == {}
        reply = bus.receive("replies:front")
        assert reply[1]["state"] == "error"
        assert "lost instance" in reply[1]["error"]
        assert reply[1]["request_id"] == "front/pi-0001/Call"

    def test_error_reply_escalates_the_requester(self, tmp_path):
        bus = MessageBus()
        worker = make_worker(
            bus, journal_path=str(tmp_path / "worker.jsonl")
        )
        front = make_requester(bus)
        iid = front.engine.start_process("Front", {"N": 5})
        # ship the request and let the worker accept it (pending entry
        # registered, served instance started but not finished)
        front.engine.run()
        worker.pump()
        assert worker._pending
        # now lose the served instance the hard way: the engine dies
        # and is rebuilt over a journal that never recorded the start,
        # while the node's volatile pending table survives
        worker.engine.crash()
        (tmp_path / "worker.jsonl").write_text("")
        worker.rebuild(configure_worker)
        run_cluster([worker, front], watch=[(front, iid)])
        # the error reply finished the remote activity with rc=1:
        # AddOne still ran on the default Base=0
        assert front.engine.output(iid)["Result"] == 1
        assert worker._pending == {}

    def test_finished_instance_still_replies_normally(self):
        bus = MessageBus()
        worker = make_worker(bus)
        front = make_requester(bus)
        iid = front.engine.start_process("Front", {"N": 5})
        run_cluster([worker, front], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 11


class TestDeadlockDetection:
    def test_watch_on_crashed_node_raises_naming_the_instance(self):
        bus = MessageBus()
        worker = make_worker(bus)
        front = make_requester(bus)
        iid = front.engine.start_process("Front", {"N": 2})
        front.engine.crash()
        with pytest.raises(WorkflowError, match="cluster deadlocked") as err:
            run_cluster([worker, front], watch=[(front, iid)])
        assert iid in str(err.value)
        assert "front" in str(err.value)
        assert "crashed" in str(err.value)

    def test_waiting_on_timers_is_not_a_deadlock(self):
        # a live counterpart that needs several poll rounds must not
        # trip the detector: timers advance instead
        bus = MessageBus()
        worker = make_worker(bus)
        front = make_requester(bus)
        iid = front.engine.start_process("Front", {"N": 3})
        rounds = run_cluster([worker, front], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 7
        assert rounds < 50


class TestRequestTimeout:
    def test_timeout_resends_then_escalates(self):
        bus = MessageBus()
        # no worker node at all: requests go unanswered forever
        front = make_requester(
            bus,
            observability=True,
            remote_kwargs={"timeout": 5.0, "retries": 1},
        )
        iid = front.engine.start_process("Front", {"N": 4})
        run_cluster([front], watch=[(front, iid)])
        # escalated with rc=1: the default Out=0 flows to AddOne
        assert front.engine.output(iid)["Result"] == 1
        # the original send plus one timed-out re-send
        assert bus.stats("node:worker")["sent"] == 2
        timeouts = front.obs.metrics.counter(
            "wfms_remote_timeouts_total", labels=("action",)
        )
        assert timeouts.labels("resent").value == 1
        assert timeouts.labels("escalated").value == 1

    def test_timely_reply_means_no_timeout(self):
        bus = MessageBus()
        worker = make_worker(bus)
        front = make_requester(
            bus,
            observability=True,
            remote_kwargs={"timeout": 50.0, "retries": 1},
        )
        iid = front.engine.start_process("Front", {"N": 6})
        run_cluster([worker, front], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 13
        timeouts = front.obs.metrics.counter(
            "wfms_remote_timeouts_total", labels=("action",)
        )
        assert timeouts.labels("resent").value == 0
        assert timeouts.labels("escalated").value == 0


class TestCircuitBreaker:
    def test_open_breaker_fails_fast_without_sending(self):
        bus = MessageBus()
        front = make_requester(
            bus,
            observability=True,
            remote_kwargs={"timeout": 2.0, "retries": 0},
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=1, reset_after=1000.0
            ),
        )
        iid1 = front.engine.start_process("Front", {"N": 1})
        run_cluster([front], watch=[(front, iid1)])
        assert front.engine.output(iid1)["Result"] == 1  # escalated
        assert bus.stats("node:worker")["sent"] == 1
        # the breaker opened on the timeout; the next call never sends
        iid2 = front.engine.start_process("Front", {"N": 2})
        run_cluster([front], watch=[(front, iid2)])
        assert front.engine.output(iid2)["Result"] == 1
        assert bus.stats("node:worker")["sent"] == 1  # unchanged
        transitions = front.obs.metrics.counter(
            "wfms_breaker_transitions_total", labels=("state",)
        )
        assert transitions.labels("open").value == 1

    def test_half_open_trial_recovers_when_worker_returns(self):
        bus = MessageBus()
        front = make_requester(
            bus,
            remote_kwargs={"timeout": 2.0, "retries": 0},
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=1, reset_after=10.0
            ),
        )
        iid1 = front.engine.start_process("Front", {"N": 1})
        run_cluster([front], watch=[(front, iid1)])
        assert front._breakers["worker"].state == "open"
        # cooldown passes; a worker appears; the trial succeeds
        front.engine.advance_clock(10.0)
        worker = make_worker(bus)
        iid2 = front.engine.start_process("Front", {"N": 3})
        run_cluster([worker, front], watch=[(front, iid2)])
        assert front.engine.output(iid2)["Result"] == 7
        assert front._breakers["worker"].state == "closed"


class TestInjectedNodeCrash:
    def test_pump_crash_schedule(self, tmp_path):
        injector = FaultInjector(
            [FaultRule("node.pump", "crash", match="worker", schedule={2})]
        )
        bus = MessageBus()
        worker = make_worker(
            bus,
            journal_path=str(tmp_path / "worker.jsonl"),
            fault_injector=injector,
        )
        assert worker.pump() == 0  # pump 1: no crash
        with pytest.raises(InjectedCrash, match="worker"):
            worker.pump()  # pump 2: the scheduled crash
        assert worker.engine.crashed
        worker.rebuild(configure_worker)
        assert not worker.engine.crashed
        assert worker.pump() == 0  # pump 3: alive again
