"""Chaos schedules for cross-activity transaction scopes.

The invariant under test is **scope atomicity**: whatever interleaving
of program faults, journal faults (mid-scope engine crashes) and
commit-point faults a seed produces, a converged run ends with either
*all* scope writes committed or *none* of them visible — and the fault
trace, outcome and database state are bit-for-bit identical when the
same seed is replayed from scratch.
"""

import pytest

from repro.core.saga_translator import SAGA_ABORT_RC
from repro.core.sagas import SagaSpec, SagaStep
from repro.core.scoped import (
    SCOPE_COMMIT_PROGRAM,
    register_scoped_saga_programs,
    translate_scoped_saga,
    workflow_scoped_outcome,
)
from repro.errors import JournalError, NavigationError
from repro.resilience import FaultInjector, FaultRule, RetryPolicy, chaos_rules
from repro.tx import ScopeManager, SimDatabase
from repro.wfms.engine import Engine

SCOPE_SEEDS = range(10)
COMMIT_FAULT_SEEDS = range(4)

STEPS = ("t1", "t2", "t3", "t4")
SEED_STATE = {name: 0 for name in STEPS}
COMMITTED_STATE = {name: 1 for name in STEPS}


def scope_write(key, value):
    def body(scope):
        scope.write(key, value)

    return body


def run_scope_chaos(seed, directory, *, extra_rules=(), optional=()):
    """One scoped saga under chaos; returns (outcome, db, injector).

    The database and the scope manager survive engine rebuilds (they
    model an external resource manager); the engine's journal drives
    workflow replay, ``ScopeManager.recover`` rolls torn scopes back.
    """
    directory.mkdir(parents=True, exist_ok=True)
    spec = SagaSpec("chaos", [SagaStep(n) for n in STEPS])
    translation = translate_scoped_saga(spec, optional_steps=optional)
    db = SimDatabase()
    setup = db.begin()
    for name in STEPS:
        setup.write(name, 0)
    setup.commit()
    manager = ScopeManager(db)
    bodies = {name: scope_write(name, 1) for name in STEPS}
    injector = FaultInjector(
        chaos_rules(
            program_match="sc_txn_*",
            program_p=0.25,
            journal_p=0.05,
            max_fires=3,
        )
        + list(extra_rules),
        seed=seed,
    )
    manager.injector = injector
    journal_path = str(directory / "scoped.jsonl")

    def build():
        engine = Engine(journal_path=journal_path, fault_injector=injector)
        engine.register_definition(translation.process)
        register_scoped_saga_programs(engine, translation, bodies, manager)
        for step in spec.steps:
            engine.set_retry(
                "sc_%s" % step.program,
                RetryPolicy(
                    2,
                    backoff="fixed",
                    base_delay=1.0,
                    escalate_rc=SAGA_ABORT_RC,
                ),
            )
        engine.set_retry(
            SCOPE_COMMIT_PROGRAM,
            RetryPolicy(
                2, backoff="fixed", base_delay=1.0, escalate_rc=SAGA_ABORT_RC
            ),
        )
        return engine

    engine = build()
    iid = None
    for __ in range(50):
        try:
            if iid is None:
                iid = engine.start_process(translation.process.name)
            engine.drain()
            break
        except JournalError:
            # mid-scope engine crash: rebuild, roll torn scopes back,
            # replay the durable journal prefix
            engine = build()
            engine.recover()
            if iid is not None:
                try:
                    engine.instance_state(iid)
                except NavigationError:
                    iid = None  # the start itself was never durable
    else:
        pytest.fail("scope chaos run did not converge (seed %d)" % seed)
    assert engine.instance_state(iid) == "finished"
    outcome = workflow_scoped_outcome(engine, translation, iid)
    engine.close()
    return outcome, db, injector


def assert_scope_atomicity(outcome, db, *, optional=()):
    """All-or-nothing: no converged state shows a partial scope."""
    assert db.active_transactions() == []  # nothing torn or leaked
    if outcome.committed:
        expected = dict(COMMITTED_STATE)
        for name in outcome.partially_rolled_back:
            assert name in optional
            expected[name] = 0  # its failure cost exactly its writes
        assert db.snapshot() == expected
    else:
        assert outcome.rolled_back
        assert db.snapshot() == SEED_STATE


@pytest.mark.parametrize("seed", SCOPE_SEEDS)
def test_scope_atomicity_under_chaos(seed, tmp_path):
    """Program faults + journal faults (mid-scope crashes): the scope
    is atomic and the chaos is replayable bit-for-bit."""
    outcome, db, injector = run_scope_chaos(seed, tmp_path / "a")
    assert_scope_atomicity(outcome, db)

    outcome2, db2, injector2 = run_scope_chaos(seed, tmp_path / "b")
    assert injector.trace() == injector2.trace()
    assert (
        outcome.committed,
        outcome.rolled_back,
        outcome.executed,
    ) == (outcome2.committed, outcome2.rolled_back, outcome2.executed)
    assert db.snapshot() == db2.snapshot()


@pytest.mark.parametrize("seed", COMMIT_FAULT_SEEDS)
def test_scope_commit_fault_is_atomic(seed, tmp_path):
    """A fault at the commit point (``scope.commit`` site, before the
    COMMIT record) is retried or escalated into rollback — never a
    partial commit.  The scheduled rule consumes no RNG, so the rest
    of the chaos schedule is unchanged."""
    tear = FaultRule("scope.commit", schedule={1})
    outcome, db, injector = run_scope_chaos(
        seed, tmp_path / "a", extra_rules=[tear]
    )
    assert_scope_atomicity(outcome, db)
    fired = [f for f in injector.trace() if f[0] == "scope.commit"]
    assert len(fired) <= 1

    outcome2, db2, injector2 = run_scope_chaos(
        seed, tmp_path / "b", extra_rules=[tear]
    )
    assert injector.trace() == injector2.trace()
    assert db.snapshot() == db2.snapshot()


@pytest.mark.parametrize("seed", SCOPE_SEEDS)
def test_savepoint_chaos_preserves_atomicity(seed, tmp_path):
    """With an optional step (savepoint-partial-rollback on its
    failure edge), chaos may cost the optional step's writes but never
    tears the scope."""
    outcome, db, injector = run_scope_chaos(
        seed, tmp_path / "a", optional=("t3",)
    )
    assert_scope_atomicity(outcome, db, optional=("t3",))

    outcome2, db2, injector2 = run_scope_chaos(
        seed, tmp_path / "b", optional=("t3",)
    )
    assert injector.trace() == injector2.trace()
    assert (
        outcome.committed,
        outcome.partially_rolled_back,
    ) == (outcome2.committed, outcome2.partially_rolled_back)
    assert db.snapshot() == db2.snapshot()


def test_scope_timeout_under_chaos_is_atomic(tmp_path):
    """A deterministic logical-clock timeout mid-chain rolls the whole
    scope back; convergence still holds under journal faults."""
    spec = SagaSpec("timed", [SagaStep(n) for n in STEPS])
    translation = translate_scoped_saga(spec, timeout=3)
    db = SimDatabase()
    setup = db.begin()
    for name in STEPS:
        setup.write(name, 0)
    setup.commit()
    manager = ScopeManager(db)
    bodies = {name: scope_write(name, 1) for name in STEPS}
    engine = Engine()
    engine.register_definition(translation.process)
    register_scoped_saga_programs(engine, translation, bodies, manager)
    result = engine.run_process(translation.process.name)
    assert result.finished
    outcome = workflow_scoped_outcome(
        engine, translation, result.instance_id
    )
    assert outcome.rolled_back and not outcome.committed
    assert db.snapshot() == SEED_STATE
    assert db.active_transactions() == []
