"""Direct tests of the workload builders."""

import pytest

from repro.errors import DefinitionError, SpecificationError
from repro.tx import AbortScript, SimDatabase
from repro.wfms.engine import Engine
from repro.core.flexible import NativeFlexibleExecutor
from repro.core.sagas import NativeSagaExecutor
from repro.workloads import (
    TransferWorkload,
    TravelWorkload,
    build_order_process,
    fig3_bindings,
    fig3_spec,
    order_organization,
    random_dag_process,
    random_flexible_spec,
    random_saga_spec,
)
from repro.workloads.generator import flexible_bindings, saga_bindings
from repro.workloads.orders import register_order_programs


class TestTravelWorkload:
    def test_fresh_capacity(self):
        workload = TravelWorkload.fresh(capacity=7)
        assert workload.bookings() == {
            "airline": 7, "hotel": 7, "rental": 7
        }
        assert workload.is_consistent()

    def test_native_success_books_everything(self):
        workload = TravelWorkload.fresh(capacity=2)
        outcome = NativeSagaExecutor(
            workload.spec, workload.actions, workload.compensations
        ).run()
        assert outcome.committed
        assert workload.bookings() == {
            "airline": 1, "hotel": 1, "rental": 1
        }
        assert all(workload.reservation_flags().values())

    def test_sold_out_site_triggers_compensation(self):
        workload = TravelWorkload.fresh(capacity=1)
        hotel = workload.mdb.site("hotel")
        with hotel.begin() as txn:
            txn.write("rooms", 0)
        outcome = NativeSagaExecutor(
            workload.spec, workload.actions, workload.compensations
        ).run()
        assert not outcome.committed
        assert workload.is_consistent()
        assert not any(workload.reservation_flags().values())

    def test_injected_policy(self):
        workload = TravelWorkload.fresh(
            policies={"book_car": AbortScript([1])}
        )
        outcome = NativeSagaExecutor(
            workload.spec, workload.actions, workload.compensations
        ).run()
        assert outcome.executed == ["book_flight", "book_hotel"]
        assert workload.is_consistent()

    def test_recorder_sees_all_events(self):
        workload = TravelWorkload.fresh()
        NativeSagaExecutor(
            workload.spec, workload.actions, workload.compensations
        ).run()
        assert [e.name for e in workload.recorder] == [
            "book_flight", "book_hotel", "book_car"
        ]


class TestTransferWorkload:
    def test_preferred_path_moves_money_once(self):
        workload = TransferWorkload.fresh(balance=300, amount=100)
        outcome = NativeFlexibleExecutor(
            workload.spec, workload.actions, workload.compensations
        ).run()
        assert outcome.committed
        assert workload.balances()["bank"] == 200
        assert workload.balances()["fast_house"] == 100
        assert workload.money_conserved(300)

    def test_fast_rejection_falls_back(self):
        workload = TransferWorkload.fresh(
            policies={"credit_fast": AbortScript([1])}
        )
        outcome = NativeFlexibleExecutor(
            workload.spec, workload.actions, workload.compensations
        ).run()
        assert outcome.committed
        assert outcome.committed_path == ["debit", "credit_slow", "audit"]
        assert workload.money_conserved(500)

    def test_insufficient_funds_aborts_cleanly(self):
        workload = TransferWorkload.fresh(balance=50, amount=100)
        outcome = NativeFlexibleExecutor(
            workload.spec, workload.actions, workload.compensations
        ).run()
        assert not outcome.committed
        assert workload.balances()["bank"] == 50
        assert workload.money_conserved(50) or workload.balances()[
            "fast_house"
        ] == 0

    def test_spec_is_well_formed(self):
        TransferWorkload.fresh().spec.validate()


class TestFig3Workload:
    def test_spec_matches_paper(self):
        spec = fig3_spec()
        assert spec.member("t2").pivot
        assert spec.member("t3").retriable
        assert spec.member("t5").compensatable
        assert len(spec.paths) == 3

    def test_bindings_cover_all_members(self):
        db = SimDatabase()
        actions, comps = fig3_bindings(db)
        assert set(actions) == set(fig3_spec().members)
        assert set(comps) == set(fig3_spec().members)


class TestOrderWorkload:
    def test_organization_roles(self):
        org = order_organization()
        assert org.members_of("approver") == ["al", "amy"]
        assert org.members_of("supervisor") == ["sue"]

    def test_automatic_order_runs(self):
        engine = Engine(organization=order_organization())
        register_order_programs(engine)
        engine.register_definition(build_order_process(manual_approval=False))
        result = engine.run_process(
            "OrderFulfillment", {"Amount": 100, "Customer": "x"},
            starter="sue",
        )
        assert result.finished
        assert result.output["Billed"] == 100

    def test_rejection_path(self):
        engine = Engine(organization=order_organization())
        register_order_programs(engine)
        engine.register_definition(build_order_process(manual_approval=False))
        result = engine.run_process(
            "OrderFulfillment", {"Amount": 5000, "Customer": "x"},
            starter="sue",
        )
        assert result.output["Rejected"] == 1
        assert "ShipOrder" in result.dead_activities


class TestGenerators:
    def test_dag_process_is_valid_and_seeded(self):
        a = random_dag_process(layers=3, width=4, seed=11)
        b = random_dag_process(layers=3, width=4, seed=11)
        a.validate()
        assert [
            (c.source, c.target) for c in a.control_connectors
        ] == [(c.source, c.target) for c in b.control_connectors]

    def test_dag_different_seeds_differ(self):
        a = random_dag_process(layers=4, width=4, seed=1)
        b = random_dag_process(layers=4, width=4, seed=2)
        assert [
            (c.source, c.target) for c in a.control_connectors
        ] != [(c.source, c.target) for c in b.control_connectors]

    def test_saga_spec_length(self):
        spec = random_saga_spec(length=5, seed=3)
        assert len(spec.steps) == 5
        assert spec.is_linear
        with pytest.raises(ValueError):
            random_saga_spec(length=0)

    def test_flexible_spec_always_well_formed(self):
        for seed in range(10):
            random_flexible_spec(branches=3, seed=seed).validate()

    def test_flexible_spec_branch_bounds(self):
        with pytest.raises(ValueError):
            random_flexible_spec(branches=0)

    def test_saga_bindings_policy_injection(self):
        spec = random_saga_spec(length=3, seed=0)
        db = SimDatabase()
        actions, comps = saga_bindings(
            spec, db, policies={"s01": AbortScript([1])}
        )
        outcome = NativeSagaExecutor(spec, actions, comps).run()
        assert outcome.executed == []

    def test_flexible_bindings_seeded_reproducibly(self):
        spec = random_flexible_spec(branches=2, seed=4)
        results = []
        for __ in range(2):
            db = SimDatabase()
            actions, comps = flexible_bindings(
                spec, db, abort_probability=0.4, seed=4
            )
            outcome = NativeFlexibleExecutor(spec, actions, comps).run()
            results.append((outcome.committed, tuple(outcome.committed_path)))
        assert results[0] == results[1]
