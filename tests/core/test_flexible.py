"""Tests for the flexible-transaction model and native executor (§4.2)."""

import pytest

from repro.errors import ExecutionContractViolation, SpecificationError
from repro.tx import AbortScript, AlwaysAbort, FailNTimes, SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.core.flexible import (
    FlexibleMember,
    FlexibleSpec,
    NativeFlexibleExecutor,
)
from repro.workloads.banking import fig3_bindings, fig3_spec


class TestFlexibleMember:
    def test_pivot_is_neither(self):
        assert FlexibleMember("m").pivot
        assert not FlexibleMember("m", compensatable=True).pivot
        assert not FlexibleMember("m", retriable=True).pivot

    def test_both_flags_allowed(self):
        # "it is possible for a subtransaction to be both
        # compensatable and retriable"
        member = FlexibleMember("m", compensatable=True, retriable=True)
        assert member.kind == "compensatable+retriable"

    def test_default_program_names(self):
        member = FlexibleMember("m", compensatable=True)
        assert member.program == "txn_m"
        assert member.compensation_program == "comp_m"


class TestFlexibleSpec:
    def test_duplicate_members_rejected(self):
        with pytest.raises(SpecificationError):
            FlexibleSpec(
                "f",
                [FlexibleMember("a"), FlexibleMember("a")],
                [["a"]],
            )

    def test_unknown_path_member_rejected(self):
        with pytest.raises(SpecificationError):
            FlexibleSpec("f", [FlexibleMember("a")], [["a", "ghost"]])

    def test_member_off_path_rejected(self):
        with pytest.raises(SpecificationError, match="no path"):
            FlexibleSpec(
                "f",
                [FlexibleMember("a"), FlexibleMember("b")],
                [["a"]],
            )

    def test_duplicate_paths_rejected(self):
        with pytest.raises(SpecificationError):
            FlexibleSpec("f", [FlexibleMember("a")], [["a"], ["a"]])

    def test_path_repeating_member_rejected(self):
        with pytest.raises(SpecificationError):
            FlexibleSpec("f", [FlexibleMember("a")], [["a", "a"]])

    def test_prefix_path_rejected(self):
        with pytest.raises(SpecificationError, match="prefix"):
            FlexibleSpec(
                "f",
                [FlexibleMember("a"), FlexibleMember("b")],
                [["a", "b"], ["a"]],
            )

    def test_tree_folds_shared_prefixes(self):
        spec = fig3_spec()
        tree = spec.tree()
        assert tree.segment == ["t1", "t2"]
        assert len(tree.children) == 2
        assert tree.children[0].segment == ["t4"]
        assert [c.segment for c in tree.children[0].children] == [
            ["t5", "t6", "t8"],
            ["t7"],
        ]
        assert tree.children[1].segment == ["t3"]

    def test_tree_round_trips_paths(self):
        spec = fig3_spec()
        assert spec.tree().paths() == spec.paths


class TestNativeExecutor:
    def run_fig3(self, policies):
        db = SimDatabase()
        actions, comps = fig3_bindings(db, policies)
        executor = NativeFlexibleExecutor(fig3_spec(), actions, comps)
        return executor.run(), db

    def test_preferred_path_when_all_commit(self):
        out, db = self.run_fig3({})
        assert out.committed
        assert out.committed_path == ["t1", "t2", "t4", "t5", "t6", "t8"]
        assert out.compensated == []

    def test_t1_abort_aborts_whole_transaction(self):
        # "First T1 is executed, if it aborts, then the entire
        # transaction is considered to be aborted."
        out, db = self.run_fig3({"t1": AbortScript([1])})
        assert not out.committed
        assert out.compensated == []
        assert out.committed_members == []

    def test_t2_abort_compensates_t1(self):
        out, db = self.run_fig3({"t2": AbortScript([1])})
        assert not out.committed
        assert out.compensated == ["t1"]
        assert db.get("t1") == 0

    def test_t4_abort_falls_back_to_retriable_t3(self):
        # "If T4 aborts, T3 is executed until it successfully commits."
        out, db = self.run_fig3(
            {"t4": AbortScript([1]), "t3": FailNTimes(3)}
        )
        assert out.committed
        assert out.committed_path == ["t1", "t2", "t3"]
        assert out.compensated == []

    def test_t8_abort_compensates_block_then_runs_t7(self):
        # "In the case that T8 is the one that aborts, T5 and T6 will
        # be compensated before T7 is executed."
        out, db = self.run_fig3({"t8": AbortScript([1])})
        assert out.committed
        assert out.committed_path == ["t1", "t2", "t4", "t7"]
        assert out.compensated == ["t6", "t5"]
        assert db.get("t5") == 0 and db.get("t6") == 0 and db.get("t7") == 1

    def test_t5_abort_switches_to_t7(self):
        out, db = self.run_fig3({"t5": AbortScript([1])})
        assert out.committed
        assert out.committed_path == ["t1", "t2", "t4", "t7"]
        assert out.compensated == []  # t5 rolled itself back

    def test_t6_abort_compensates_t5(self):
        out, db = self.run_fig3({"t6": AbortScript([1])})
        assert out.committed
        assert out.compensated == ["t5"]

    def test_retriable_counts_attempts(self):
        db = SimDatabase()
        actions, comps = fig3_bindings(
            db, {"t8": AbortScript([1]), "t7": FailNTimes(4)}
        )
        out = NativeFlexibleExecutor(fig3_spec(), actions, comps).run()
        assert out.committed
        assert actions["t7"].attempts == 5

    def test_retriable_exceeding_cap_raises(self):
        db = SimDatabase()
        actions, comps = fig3_bindings(
            db, {"t4": AbortScript([1]), "t3": AlwaysAbort()}
        )
        executor = NativeFlexibleExecutor(
            fig3_spec(), actions, comps, max_retries=5
        )
        with pytest.raises(ExecutionContractViolation):
            executor.run()

    def test_missing_action_binding_rejected(self):
        db = SimDatabase()
        actions, comps = fig3_bindings(db)
        del actions["t4"]
        with pytest.raises(SpecificationError, match="t4"):
            NativeFlexibleExecutor(fig3_spec(), actions, comps)

    def test_missing_compensation_binding_rejected(self):
        db = SimDatabase()
        actions, comps = fig3_bindings(db)
        del comps["t5"]
        with pytest.raises(SpecificationError, match="t5"):
            NativeFlexibleExecutor(fig3_spec(), actions, comps)

    def test_history_shows_path_switching(self):
        db = SimDatabase()
        actions, comps = fig3_bindings(db, {"t8": AbortScript([1])})
        out = NativeFlexibleExecutor(fig3_spec(), actions, comps).run()
        names = [(h.name, h.committed) for h in out.history]
        assert names == [
            ("t1", True), ("t2", True), ("t4", True), ("t5", True),
            ("t6", True), ("t8", False),
            ("ct6", True), ("ct5", True),   # compensation, reverse order
            ("t7", True),
        ]
