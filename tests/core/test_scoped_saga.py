"""Scoped saga / pivot chain translations: structure, execution, and
behavioural equivalence with the per-activity (Figure 2) saga."""

import pytest

from repro.errors import SpecificationError, TransactionAborted
from repro.tx import (
    FailNTimes,
    IsolationLevel,
    ScopeManager,
    SimDatabase,
    Subtransaction,
)
from repro.tx.subtransaction import write_value
from repro.tx.failures import AbortScript
from repro.wfms.engine import Engine
from repro.wfms.model import StartCondition
from repro.core.bindings import register_saga_programs
from repro.core.sagas import SagaSpec, SagaStep
from repro.core.saga_translator import translate_saga
from repro.core.scoped import (
    register_pivot_chain_programs,
    register_scoped_saga_programs,
    translate_pivot_chain,
    translate_scoped_saga,
    workflow_scoped_outcome,
)


def scope_write(key, value):
    def body(scope):
        scope.write(key, value)

    return body


def scope_fail(key, value):
    """Write, then abort — the failure the scope must undo."""

    def body(scope):
        scope.write(key, value)
        raise TransactionAborted("injected", reason="injected")

    return body


def run_scoped(spec, bodies, **kwargs):
    db = SimDatabase()
    _seed_zero(db, spec)
    manager = ScopeManager(db)
    translation = translate_scoped_saga(spec, **kwargs)
    engine = Engine()
    engine.register_definition(translation.process)
    register_scoped_saga_programs(engine, translation, bodies, manager)
    result = engine.run_process(translation.process.name)
    assert result.finished
    outcome = workflow_scoped_outcome(engine, translation, result.instance_id)
    return outcome, db


def run_per_activity(spec, abort_at=None):
    """The Figure 2 baseline: one subtransaction per activity, with
    compensations writing the seed value back."""
    db = SimDatabase()
    _seed_zero(db, spec)
    actions, comps = {}, {}
    for step in spec.steps:
        sub = Subtransaction(step.name, db, write_value(step.name, 1))
        if step.name == abort_at:
            sub.policy = AbortScript([1])
        actions[step.name] = sub
        comps[step.name] = Subtransaction(
            "c" + step.name, db, write_value(step.name, 0)
        )
    translation = translate_saga(spec)
    engine = Engine()
    register_saga_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    result = engine.run_process(translation.process_name)
    assert result.finished
    return db


def _seed_zero(db, spec):
    setup = db.begin()
    for step in spec.steps:
        setup.write(step.name, 0)
    setup.commit()


SPEC = SagaSpec(
    "trip", [SagaStep("t1"), SagaStep("t2"), SagaStep("t3"), SagaStep("t4")]
)


class TestStructure:
    def test_shape(self):
        translation = translate_scoped_saga(SPEC, optional_steps=("t3",))
        process = translation.process
        assert set(process.activities) == {
            "Begin", "t1", "t2", "t3", "t4", "SP_t3", "RB_t3",
            "Commit", "Rollback",
        }
        # the step after an optional step is an OR-join.
        assert (
            process.activity("t4").start_condition is StartCondition.ANY
        )
        assert (
            process.activity("Rollback").start_condition is StartCondition.ANY
        )

    def test_scope_handle_fans_out_from_begin(self):
        translation = translate_scoped_saga(SPEC)
        process = translation.process
        targets = {
            c.target
            for c in process.data_connectors
            if c.source == "Begin" and ("Scope", "Scope") in c.mappings
        }
        assert targets == {"t1", "t2", "t3", "t4", "Commit", "Rollback"}

    def test_rejects_unknown_optional_step(self):
        with pytest.raises(SpecificationError):
            translate_scoped_saga(SPEC, optional_steps=("ghost",))

    def test_rejects_nonlinear_saga(self):
        spec = SagaSpec(
            "dag",
            [SagaStep("a"), SagaStep("b"), SagaStep("c")],
            order=[("a", "b"), ("a", "c")],
        )
        with pytest.raises(SpecificationError):
            translate_scoped_saga(spec)


class TestExecution:
    def test_all_commit(self):
        bodies = {s.name: scope_write(s.name, 1) for s in SPEC.steps}
        outcome, db = run_scoped(SPEC, bodies)
        assert outcome.committed and not outcome.rolled_back
        assert outcome.executed == ["t1", "t2", "t3", "t4"]
        assert db.snapshot() == {"t1": 1, "t2": 1, "t3": 1, "t4": 1}
        assert db.active_transactions() == []

    def test_mandatory_failure_rolls_everything_back(self):
        bodies = {s.name: scope_write(s.name, 1) for s in SPEC.steps}
        bodies["t3"] = scope_fail("t3", 1)
        outcome, db = run_scoped(SPEC, bodies)
        assert outcome.rolled_back and not outcome.committed
        assert db.snapshot() == {"t1": 0, "t2": 0, "t3": 0, "t4": 0}
        assert db.active_transactions() == []

    def test_optional_failure_is_absorbed_by_savepoint(self):
        bodies = {s.name: scope_write(s.name, 1) for s in SPEC.steps}
        bodies["t3"] = scope_fail("t3", 1)
        outcome, db = run_scoped(SPEC, bodies, optional_steps=("t3",))
        assert outcome.committed
        assert outcome.partially_rolled_back == ["t3"]
        assert db.snapshot() == {"t1": 1, "t2": 1, "t3": 0, "t4": 1}

    def test_read_committed_scope_commits(self):
        bodies = {s.name: scope_write(s.name, 1) for s in SPEC.steps}
        outcome, db = run_scoped(
            SPEC, bodies, isolation=IsolationLevel.READ_COMMITTED
        )
        assert outcome.committed
        assert db.snapshot() == {"t1": 1, "t2": 1, "t3": 1, "t4": 1}

    def test_scope_timeout_routes_to_rollback(self):
        bodies = {s.name: scope_write(s.name, 1) for s in SPEC.steps}
        outcome, db = run_scoped(SPEC, bodies, timeout=3)
        assert outcome.rolled_back and not outcome.committed
        assert db.snapshot() == {"t1": 0, "t2": 0, "t3": 0, "t4": 0}
        assert db.active_transactions() == []


class TestEquivalence:
    """The acceptance bar: scoped and per-activity executions agree on
    the final database state."""

    def test_committed_states_agree(self):
        bodies = {s.name: scope_write(s.name, 1) for s in SPEC.steps}
        __, scoped_db = run_scoped(SPEC, bodies)
        baseline_db = run_per_activity(SPEC)
        assert scoped_db.snapshot() == baseline_db.snapshot()

    def test_aborted_states_agree(self):
        # Per-activity: t3 aborts, t1/t2 are compensated back to 0.
        # Scoped: t3's failure rolls the one transaction back.
        bodies = {s.name: scope_write(s.name, 1) for s in SPEC.steps}
        bodies["t3"] = scope_fail("t3", 1)
        __, scoped_db = run_scoped(SPEC, bodies)
        baseline_db = run_per_activity(SPEC, abort_at="t3")
        assert scoped_db.snapshot() == baseline_db.snapshot()

    def test_savepoint_partial_rollback_equals_saga_without_step(self):
        # Scoped with optional t3 failing == per-activity saga that
        # never had t3 (its failure costs exactly its own writes).
        bodies = {s.name: scope_write(s.name, 1) for s in SPEC.steps}
        bodies["t3"] = scope_fail("t3", 1)
        __, scoped_db = run_scoped(SPEC, bodies, optional_steps=("t3",))
        reduced = SagaSpec(
            "trip", [SagaStep("t1"), SagaStep("t2"), SagaStep("t4")]
        )
        baseline_db = run_per_activity(reduced)
        snapshot = scoped_db.snapshot()
        snapshot.pop("t3")  # the seed value; absent from the reduced saga
        assert snapshot == baseline_db.snapshot()


class TestPivotChain:
    def build(self, retriable_failures=0, fail_scoped=False):
        db = SimDatabase()
        manager = ScopeManager(db)
        translation = translate_pivot_chain(
            "order", ["reserve", "charge"], ["notify"]
        )
        engine = Engine()
        engine.register_definition(translation.process)
        bodies = {
            "reserve": scope_write("reserved", 1),
            "charge": (
                scope_fail("charged", 1)
                if fail_scoped
                else scope_write("charged", 1)
            ),
        }
        notify = Subtransaction(
            "notify",
            db,
            write_value("notified", 1),
            policy=FailNTimes(retriable_failures),
        )
        register_pivot_chain_programs(
            engine, translation, bodies, {"notify": notify}, manager
        )
        result = engine.run_process(translation.process.name)
        assert result.finished
        return engine, result, db, notify

    def test_happy_path(self):
        engine, result, db, notify = self.build()
        assert engine.output(result.instance_id)["Committed"] == 1
        assert db.snapshot() == {
            "reserved": 1, "charged": 1, "notified": 1,
        }

    def test_retriable_step_retries_past_the_pivot(self):
        engine, result, db, notify = self.build(retriable_failures=3)
        assert engine.output(result.instance_id)["Committed"] == 1
        assert notify.attempts == 4
        assert db.get("notified") == 1

    def test_failure_before_pivot_rolls_back_and_skips_suffix(self):
        engine, result, db, notify = self.build(fail_scoped=True)
        output = engine.output(result.instance_id)
        assert output["Committed"] == 0
        assert output["RolledBack"] == 1
        assert db.snapshot() == {}
        assert notify.attempts == 0

    def test_rejects_overlapping_steps(self):
        with pytest.raises(SpecificationError):
            translate_pivot_chain("x", ["a"], ["a"])

    def test_rejects_empty_prefix(self):
        with pytest.raises(SpecificationError):
            translate_pivot_chain("x", [], ["a"])
