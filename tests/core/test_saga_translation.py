"""Tests for the Figure 2 saga → workflow translation and its
behavioural equivalence with the native executor."""

import pytest

from repro.errors import TranslationError
from repro.tx import AbortScript, FailNTimes, SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms.engine import Engine
from repro.wfms.model import ActivityKind, StartCondition
from repro.core.bindings import (
    register_saga_programs,
    workflow_saga_outcome,
)
from repro.core.compblock import state_var
from repro.core.sagas import (
    NativeSagaExecutor,
    SagaSpec,
    SagaStep,
    verify_saga_guarantee,
)
from repro.core.saga_translator import translate_saga


def make_bindings(spec, db, abort_at=None, comp_policies=None):
    actions, comps = {}, {}
    for step in spec.steps:
        sub = Subtransaction(step.name, db, write_value(step.name, 1))
        if step.name == abort_at:
            sub.policy = AbortScript([1])
        actions[step.name] = sub
        comp = Subtransaction(
            "c" + step.name, db, write_value(step.name, 0)
        )
        if comp_policies and step.name in comp_policies:
            comp.policy = comp_policies[step.name]
        comps[step.name] = comp
    return actions, comps


def run_workflow_saga(spec, abort_at=None, comp_policies=None, **kwargs):
    db = SimDatabase()
    actions, comps = make_bindings(spec, db, abort_at, comp_policies)
    translation = translate_saga(spec, **kwargs)
    engine = Engine()
    register_saga_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    result = engine.run_process(translation.process_name)
    assert result.finished
    return engine, translation, result, db, comps


class TestStructure:
    """The generated process has exactly Figure 2's shape."""

    @pytest.fixture
    def translation(self):
        spec = SagaSpec("demo", [SagaStep("t1"), SagaStep("t2"), SagaStep("t3")])
        return translate_saga(spec)

    def test_two_blocks(self, translation):
        process = translation.process
        assert set(process.activities) == {"Forward", "Compensation"}
        assert all(
            a.kind is ActivityKind.BLOCK for a in process.activities.values()
        )

    def test_forward_block_chains_on_success(self, translation):
        forward = translation.forward_block
        assert [
            (c.source, c.target, c.condition.source)
            for c in forward.control_connectors
        ] == [("t1", "t2", "RC = 0"), ("t2", "t3", "RC = 0")]

    def test_forward_records_state_per_activity(self, translation):
        # every step maps State -> State_<step> in the block output
        forward = translation.forward_block
        for step in ("t1", "t2", "t3"):
            assert any(
                c.source == step
                and ("State", state_var(step)) in c.mappings
                for c in forward.data_connectors
            )

    def test_compensation_gated_on_block_rc(self, translation):
        connector = translation.process.control_connectors[0]
        assert (connector.source, connector.target) == (
            "Forward",
            "Compensation",
        )
        assert connector.condition.source == "RC <> 0"

    def test_compensation_block_has_nop_trigger(self, translation):
        comp = translation.compensation_block
        assert "NOP" in comp.activities
        nop_edges = [
            c for c in comp.control_connectors if c.source == "NOP"
        ]
        assert len(nop_edges) == 3  # one per compensating activity

    def test_compensations_are_retried(self, translation):
        comp = translation.compensation_block
        for name in ("Comp_t1", "Comp_t2", "Comp_t3"):
            activity = comp.activity(name)
            assert activity.exit_condition.source == "RC = 0"
            assert activity.start_condition is StartCondition.ANY

    def test_reverse_chain_present(self, translation):
        comp = translation.compensation_block
        chain = [
            (c.source, c.target)
            for c in comp.control_connectors
            if c.source != "NOP"
        ]
        assert chain == [("Comp_t2", "Comp_t1"), ("Comp_t3", "Comp_t2")]

    def test_required_programs_listed(self, translation):
        assert set(translation.required_programs) == {
            "nop",
            "txn_t1", "txn_t2", "txn_t3",
            "comp_t1", "comp_t2", "comp_t3",
        }

    def test_compensate_completed_changes_gate(self):
        spec = SagaSpec("demo", [SagaStep("t1")])
        translation = translate_saga(spec, compensate_completed=True)
        assert (
            translation.process.control_connectors[0].condition.source
            == "TRUE"
        )

    def test_dag_saga_compensation_rejected(self):
        spec = SagaSpec(
            "dag",
            [SagaStep("a"), SagaStep("b"), SagaStep("c")],
            order=[("a", "b"), ("a", "c")],
        )
        with pytest.raises(TranslationError):
            translate_saga(spec)


class TestExecution:
    """The translated process honours the saga guarantee."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_all_commit(self, n):
        spec = SagaSpec(
            "s", [SagaStep("t%d" % i) for i in range(1, n + 1)]
        )
        engine, tr, result, db, __ = run_workflow_saga(spec)
        out = workflow_saga_outcome(engine, tr, result.instance_id)
        assert out.committed
        assert out.executed == [s.name for s in spec.steps]
        assert out.compensated == []

    @pytest.mark.parametrize("n,abort_index", [
        (1, 1), (2, 1), (2, 2), (3, 1), (3, 2), (3, 3),
        (5, 1), (5, 3), (5, 5),
    ])
    def test_guarantee_at_every_abort_position(self, n, abort_index):
        spec = SagaSpec(
            "s", [SagaStep("t%d" % i) for i in range(1, n + 1)]
        )
        abort_at = "t%d" % abort_index
        engine, tr, result, db, __ = run_workflow_saga(spec, abort_at)
        out = workflow_saga_outcome(engine, tr, result.instance_id)
        assert not out.committed
        assert verify_saga_guarantee(spec, out.executed, out.compensated)
        assert len(out.executed) == abort_index - 1
        # Database: all effects undone.
        for i in range(1, n + 1):
            assert db.get("t%d" % i) in (None, 0)

    def test_compensation_retried_in_workflow(self):
        spec = SagaSpec("s", [SagaStep("t1"), SagaStep("t2")])
        engine, tr, result, db, comps = run_workflow_saga(
            spec, abort_at="t2", comp_policies={"t1": FailNTimes(3)}
        )
        out = workflow_saga_outcome(engine, tr, result.instance_id)
        assert out.compensated == ["t1"]
        assert comps["t1"].attempts == 4

    def test_compensate_completed_execution(self):
        spec = SagaSpec("s", [SagaStep("t1"), SagaStep("t2")])
        engine, tr, result, db, __ = run_workflow_saga(
            spec, compensate_completed=True
        )
        out = workflow_saga_outcome(engine, tr, result.instance_id)
        assert out.executed == ["t1", "t2"]
        assert out.compensated == ["t2", "t1"]

    def test_process_output_exposes_states(self):
        spec = SagaSpec("s", [SagaStep("t1"), SagaStep("t2")])
        engine, tr, result, db, __ = run_workflow_saga(spec, abort_at="t2")
        assert result.output[state_var("t1")] == 1
        assert result.output[state_var("t2")] == 0


class TestParityWithNative:
    """Native executor and workflow implementation agree everywhere."""

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_parity_across_all_abort_positions(self, n):
        for abort_index in [None] + list(range(1, n + 1)):
            abort_at = "t%d" % abort_index if abort_index else None
            spec = SagaSpec(
                "s", [SagaStep("t%d" % i) for i in range(1, n + 1)]
            )
            native_db = SimDatabase()
            actions, comps = make_bindings(spec, native_db, abort_at)
            native = NativeSagaExecutor(spec, actions, comps).run()

            engine, tr, result, wf_db, __ = run_workflow_saga(spec, abort_at)
            wf = workflow_saga_outcome(engine, tr, result.instance_id)

            assert native.committed == wf.committed, abort_at
            assert native.executed == wf.executed, abort_at
            assert native.compensated == wf.compensated, abort_at
            assert native_db.snapshot() == wf_db.snapshot(), abort_at
