"""Tests for the FMTM specification language and the Figure 5 pipeline."""

import pytest

from repro.errors import (
    FDLError,
    ProgramError,
    SpecSyntaxError,
    WellFormednessError,
)
from repro.tx import AbortScript, SimDatabase
from repro.wfms.engine import Engine
from repro.core.flexible import FlexibleSpec
from repro.core.fmtm import FMTMPipeline, STAGES
from repro.core.sagas import SagaSpec
from repro.core.speclang import (
    format_flexible_spec,
    format_saga_spec,
    parse_spec,
    parse_specs,
)
from repro.core.bindings import (
    register_flexible_programs,
    register_saga_programs,
    workflow_flexible_outcome,
    workflow_saga_outcome,
)
from repro.core.flexible_translator import translate_flexible
from repro.core.saga_translator import translate_saga
from repro.workloads.banking import fig3_bindings, fig3_spec

SAGA_TEXT = """
// travel booking
MODEL SAGA 'travel'
  STEP 'flight' PROGRAM 'p_flight' COMPENSATION 'c_flight'
  STEP 'hotel'
END 'travel'
"""

FLEX_TEXT = """
MODEL FLEXIBLE 'fig3'
  SUBTRANSACTION 't1' COMPENSATABLE
  SUBTRANSACTION 't2' PIVOT
  SUBTRANSACTION 't3' RETRIABLE
  SUBTRANSACTION 't4' PIVOT
  SUBTRANSACTION 't5' COMPENSATABLE
  SUBTRANSACTION 't6' COMPENSATABLE
  SUBTRANSACTION 't7' RETRIABLE
  SUBTRANSACTION 't8' PIVOT
  PATH 't1' 't2' 't4' 't5' 't6' 't8'
  PATH 't1' 't2' 't4' 't7'
  PATH 't1' 't2' 't3'
END 'fig3'
"""


class TestSpecLanguage:
    def test_saga_parses(self):
        spec = parse_spec(SAGA_TEXT)
        assert isinstance(spec, SagaSpec)
        assert [s.name for s in spec.steps] == ["flight", "hotel"]
        assert spec.steps[0].program == "p_flight"
        assert spec.steps[0].compensation_program == "c_flight"
        assert spec.steps[1].program == "txn_hotel"

    def test_flexible_parses_to_fig3(self):
        spec = parse_spec(FLEX_TEXT)
        assert isinstance(spec, FlexibleSpec)
        reference = fig3_spec()
        assert spec.paths == reference.paths
        for name, member in reference.members.items():
            parsed = spec.member(name)
            assert parsed.compensatable == member.compensatable
            assert parsed.retriable == member.retriable

    def test_multiple_models_in_one_document(self):
        specs = parse_specs(SAGA_TEXT + FLEX_TEXT)
        assert len(specs) == 2
        with pytest.raises(SpecSyntaxError):
            parse_spec(SAGA_TEXT + FLEX_TEXT)

    def test_pivot_excludes_other_flags(self):
        text = """
        MODEL FLEXIBLE 'x'
          SUBTRANSACTION 'a' PIVOT COMPENSATABLE
          PATH 'a'
        END 'x'
        """
        with pytest.raises(SpecSyntaxError, match="PIVOT"):
            parse_spec(text)

    def test_missing_end_rejected(self):
        with pytest.raises(SpecSyntaxError, match="END"):
            parse_spec("MODEL SAGA 'x'\n  STEP 'a'\n")

    def test_wrong_end_name_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("MODEL SAGA 'x'\n  STEP 'a'\nEND 'y'\n")

    def test_unknown_keyword_rejected(self):
        with pytest.raises(SpecSyntaxError, match="quoted"):
            parse_spec("MODEL SAGA travel\nEND 'travel'\n")

    def test_saga_round_trip(self):
        spec = parse_spec(SAGA_TEXT)
        again = parse_spec(format_saga_spec(spec))
        assert [s.name for s in again.steps] == [s.name for s in spec.steps]
        assert [s.program for s in again.steps] == [
            s.program for s in spec.steps
        ]

    def test_flexible_round_trip(self):
        spec = parse_spec(FLEX_TEXT)
        again = parse_spec(format_flexible_spec(spec))
        assert again.paths == spec.paths
        assert set(again.members) == set(spec.members)


class TestPipeline:
    def prepared_engine_for_saga(self):
        from repro.tx.subtransaction import write_value
        from repro.tx import Subtransaction

        engine = Engine()
        db = SimDatabase()
        spec = parse_spec(SAGA_TEXT)
        translation = translate_saga(spec)
        actions = {
            s.name: Subtransaction(s.name, db, write_value(s.name, 1))
            for s in spec.steps
        }
        comps = {
            s.name: Subtransaction("c" + s.name, db, write_value(s.name, 0))
            for s in spec.steps
        }
        register_saga_programs(engine, translation, actions, comps)
        return engine, db

    def test_all_stages_run_in_order(self):
        engine, __ = self.prepared_engine_for_saga()
        report = FMTMPipeline(engine).process_specification(SAGA_TEXT)
        assert tuple(report.stage_names()) == STAGES
        assert all(s.seconds >= 0 for s in report.stages)

    def test_pipeline_produces_runnable_template(self):
        engine, __ = self.prepared_engine_for_saga()
        pipeline = FMTMPipeline(engine)
        report = pipeline.process_specification(SAGA_TEXT)
        assert report.process_name == "Saga_travel"
        iid = pipeline.create_instance(report)
        engine.run()
        out = workflow_saga_outcome(engine, report.translation, iid)
        assert out.committed
        assert out.executed == ["flight", "hotel"]

    def test_pipeline_fdl_is_importable_standalone(self):
        from repro.fdl import import_text

        engine, __ = self.prepared_engine_for_saga()
        report = FMTMPipeline(engine).process_specification(SAGA_TEXT)
        result = import_text(report.fdl_text)
        assert result.definition("Saga_travel") is not None

    def test_flexible_specification_through_pipeline(self):
        engine = Engine()
        db = SimDatabase()
        spec = fig3_spec()
        translation = translate_flexible(spec)
        actions, comps = fig3_bindings(db, {"t8": AbortScript([1])})
        register_flexible_programs(engine, translation, actions, comps)
        pipeline = FMTMPipeline(engine)
        report = pipeline.process_specification(FLEX_TEXT)
        iid = pipeline.create_instance(report)
        engine.run()
        out = workflow_flexible_outcome(engine, report.translation, iid)
        assert out.committed
        assert out.committed_path == ["t1", "t2", "t4", "t7"]
        assert out.compensated == ["t6", "t5"]

    def test_format_check_stage_rejects_ill_formed(self):
        text = """
        MODEL FLEXIBLE 'bad'
          SUBTRANSACTION 'p1' PIVOT
          SUBTRANSACTION 'p2' PIVOT
          PATH 'p1' 'p2'
        END 'bad'
        """
        with pytest.raises(WellFormednessError):
            FMTMPipeline(Engine()).process_specification(text)

    def test_template_stage_rejects_missing_programs(self):
        # Figure 5: the final translator checks "a suitable program
        # definition exists".
        engine = Engine()  # no programs registered
        with pytest.raises(ProgramError):
            FMTMPipeline(engine).process_specification(SAGA_TEXT)

    def test_instances_are_independent(self):
        engine, db = self.prepared_engine_for_saga()
        pipeline = FMTMPipeline(engine)
        report = pipeline.process_specification(SAGA_TEXT)
        i1 = pipeline.create_instance(report)
        i2 = pipeline.create_instance(report)
        engine.run()
        assert engine.instance_state(i1) == "finished"
        assert engine.instance_state(i2) == "finished"
