"""Tests for the binding layer: program registration, passthroughs and
outcome reconstruction."""

import pytest

from repro.errors import SpecificationError
from repro.tx import AbortScript, SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms.containers import Container
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.engine import Engine
from repro.wfms.programs import InvocationContext
from repro.core.bindings import (
    nop_program,
    register_flexible_programs,
    register_saga_programs,
    workflow_saga_outcome,
)
from repro.core.compblock import passthrough_for_items, state_var
from repro.core.flexible_translator import translate_flexible
from repro.core.saga_translator import passthrough_for, translate_saga
from repro.core.sagas import SagaSpec, SagaStep
from repro.workloads.banking import fig3_bindings, fig3_spec


def make_ctx(input_spec=(), output_spec=(), input_values=None):
    inp = Container(list(input_spec))
    out = Container(list(output_spec), output=True)
    if input_values:
        inp.load_dict(input_values)
    return InvocationContext("A", "P", "pi-1", inp, out)


class TestNopProgram:
    def test_copies_matching_members(self):
        ctx = make_ctx(
            input_spec=[VariableDecl("X", DataType.LONG)],
            output_spec=[VariableDecl("X", DataType.LONG),
                         VariableDecl("Y", DataType.LONG)],
            input_values={"X": 5},
        )
        assert nop_program(ctx) == 0
        assert ctx.output.get("X") == 5
        assert ctx.output.get("Y") == 0  # untouched default

    def test_never_touches_rc(self):
        ctx = make_ctx()
        nop_program(ctx)
        assert ctx.output.return_code == 0


class TestPassthroughs:
    def test_first_item_forwards_own_state(self):
        items = [("a", "ca"), ("b", "cb"), ("c", "cc")]
        assert passthrough_for_items(items, "a") == ((state_var("a"), "Next"),)

    def test_later_items_forward_previous_state(self):
        items = [("a", "ca"), ("b", "cb"), ("c", "cc")]
        assert passthrough_for_items(items, "c") == ((state_var("b"), "Next"),)

    def test_saga_wrapper_matches(self):
        spec = SagaSpec("s", [SagaStep("a"), SagaStep("b")])
        assert passthrough_for(spec, "b") == ((state_var("a"), "Next"),)


class TestRegistration:
    def test_missing_saga_action_rejected(self):
        spec = SagaSpec("s", [SagaStep("a")])
        translation = translate_saga(spec)
        db = SimDatabase()
        comps = {"a": Subtransaction("ca", db, write_value("a", 0))}
        with pytest.raises(SpecificationError, match="a"):
            register_saga_programs(Engine(), translation, {}, comps)

    def test_missing_flexible_compensation_rejected(self):
        spec = fig3_spec()
        translation = translate_flexible(spec)
        db = SimDatabase()
        actions, comps = fig3_bindings(db)
        del comps["t5"]
        with pytest.raises(SpecificationError, match="t5"):
            register_flexible_programs(Engine(), translation, actions, comps)

    def test_reregistration_replaces(self):
        spec = SagaSpec("s", [SagaStep("a")])
        translation = translate_saga(spec)
        db = SimDatabase()
        actions = {"a": Subtransaction("a", db, write_value("a", 1))}
        comps = {"a": Subtransaction("ca", db, write_value("a", 0))}
        engine = Engine()
        register_saga_programs(engine, translation, actions, comps)
        register_saga_programs(engine, translation, actions, comps)  # ok


class TestOutcomeReconstruction:
    def test_saga_outcome_orders_match_audit(self):
        spec = SagaSpec("s", [SagaStep("a"), SagaStep("b"), SagaStep("c")])
        db = SimDatabase()
        actions = {
            n: Subtransaction(n, db, write_value(n, 1)) for n in "abc"
        }
        actions["c"].policy = AbortScript([1])
        comps = {
            n: Subtransaction("c" + n, db, write_value(n, 0)) for n in "abc"
        }
        translation = translate_saga(spec)
        engine = Engine()
        register_saga_programs(engine, translation, actions, comps)
        engine.register_definition(translation.process)
        result = engine.run_process(translation.process_name)
        outcome = workflow_saga_outcome(engine, translation, result.instance_id)
        assert outcome.executed == ["a", "b"]
        assert outcome.compensated == ["b", "a"]
        assert not outcome.committed

    def test_flexible_shared_member_counted_once(self):
        from repro.core.bindings import workflow_flexible_outcome
        from repro.core.flexible import FlexibleMember, FlexibleSpec

        spec = FlexibleSpec(
            "shared",
            [
                FlexibleMember("a", compensatable=True),
                FlexibleMember("x"),
                FlexibleMember("y", retriable=True),
                FlexibleMember("b", retriable=True),
            ],
            [["a", "x", "b"], ["a", "y", "b"]],
        )
        db = SimDatabase()
        actions = {
            n: Subtransaction(n, db, write_value(n, 1))
            for n in ("a", "x", "y", "b")
        }
        actions["x"].policy = AbortScript([1])  # force the fallback
        comps = {"a": Subtransaction("ca", db, write_value("a", 0))}
        translation = translate_flexible(spec)
        engine = Engine()
        register_flexible_programs(engine, translation, actions, comps)
        engine.register_definition(translation.process)
        result = engine.run_process(translation.process_name)
        outcome = workflow_flexible_outcome(
            engine, translation, result.instance_id
        )
        assert outcome.committed
        assert outcome.committed_path == ["a", "y", "b"]
        assert outcome.committed_members.count("b") == 1
