"""Direct unit tests for the shared compensation-block builder."""

import pytest

from repro.wfms.model import PROCESS_INPUT, PROCESS_OUTPUT, StartCondition
from repro.core.compblock import (
    build_compensation_block,
    comp_activity_name,
    passthrough_for_items,
    state_var,
)

ITEMS = [("a", "comp_a"), ("b", "comp_b"), ("c", "comp_c")]


class TestNames:
    def test_state_var(self):
        assert state_var("t1") == "State_t1"

    def test_comp_activity_name(self):
        assert comp_activity_name("t1") == "Comp_t1"


class TestConstruction:
    @pytest.fixture
    def block(self):
        return build_compensation_block(
            "Comp", ITEMS, commit_rc=0, max_attempts=9
        )

    def test_contains_nop_and_comp_activities(self, block):
        assert set(block.activities) == {
            "NOP", "Comp_a", "Comp_b", "Comp_c"
        }

    def test_input_members_are_states(self, block):
        assert [d.name for d in block.input_spec] == [
            "State_a", "State_b", "State_c"
        ]

    def test_triggers_select_last_executed(self, block):
        triggers = {
            c.target: c.condition.source
            for c in block.control_connectors
            if c.source == "NOP"
        }
        assert triggers["Comp_c"] == "State_c = 1"
        assert triggers["Comp_b"] == "State_b = 1 AND State_c = 0"
        assert triggers["Comp_a"] == "State_a = 1 AND State_b = 0"

    def test_reverse_chain(self, block):
        chain = [
            (c.source, c.target)
            for c in block.control_connectors
            if c.source != "NOP"
        ]
        assert chain == [("Comp_b", "Comp_a"), ("Comp_c", "Comp_b")]

    def test_comp_activities_retry_until_commit(self, block):
        for name in ("Comp_a", "Comp_b", "Comp_c"):
            activity = block.activity(name)
            assert activity.exit_condition.source == "RC = 0"
            assert activity.max_iterations == 9
            assert activity.start_condition is StartCondition.ANY

    def test_commit_rc_parameterised(self):
        block = build_compensation_block(
            "Comp", ITEMS, commit_rc=1, max_attempts=5
        )
        assert block.activity("Comp_a").exit_condition.source == "RC = 1"

    def test_states_flow_in_through_process_input(self, block):
        targets = {
            c.target
            for c in block.data_connectors
            if c.source == PROCESS_INPUT
        }
        assert targets == {"NOP", "Comp_a", "Comp_b", "Comp_c"}

    def test_done_flows_out(self, block):
        out = [
            c for c in block.data_connectors if c.target == PROCESS_OUTPUT
        ]
        assert out and all(("Next", "Done") in c.mappings for c in out)

    def test_empty_items_gives_nop_only_block(self):
        block = build_compensation_block(
            "Comp", [], commit_rc=0, max_attempts=1
        )
        assert set(block.activities) == {"NOP"}
        block.validate()

    def test_block_validates(self, block):
        block.validate()


class TestPassthrough:
    def test_first_forwards_own_flag(self):
        assert passthrough_for_items(ITEMS, "a") == (("State_a", "Next"),)

    def test_middle_forwards_previous(self):
        assert passthrough_for_items(ITEMS, "b") == (("State_a", "Next"),)
        assert passthrough_for_items(ITEMS, "c") == (("State_b", "Next"),)

    def test_unknown_member_raises(self):
        with pytest.raises(ValueError):
            passthrough_for_items(ITEMS, "ghost")
