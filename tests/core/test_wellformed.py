"""Tests for the well-formedness rules of [MRSK92]/[ZNBB94]."""

import pytest

from repro.errors import WellFormednessError
from repro.core.flexible import FlexibleMember, FlexibleSpec
from repro.core.wellformed import (
    check_well_formed,
    single_path_shape,
    well_formedness_violations,
)
from repro.workloads.banking import fig3_spec


def spec_of(path_defs, **member_flags):
    """Build a spec from ``{"name": "c|r|p|cr"}`` flags and paths."""
    members = []
    for name, flags in member_flags.items():
        members.append(
            FlexibleMember(
                name,
                compensatable="c" in flags,
                retriable="r" in flags,
            )
        )
    return FlexibleSpec("t", members, path_defs)


class TestSinglePathRules:
    """[MRSK92]: compensatable* pivot retriable* is the legal shape."""

    def test_canonical_shape_accepted(self):
        spec = spec_of([["c1", "p", "r1"]], c1="c", p="p", r1="r")
        check_well_formed(spec)

    def test_all_compensatable_accepted(self):
        check_well_formed(spec_of([["a", "b"]], a="c", b="c"))

    def test_all_retriable_accepted(self):
        check_well_formed(spec_of([["a", "b"]], a="r", b="r"))

    def test_pivot_after_pivot_rejected(self):
        # Two pivots on one path with no alternatives: if the second
        # aborts, the first cannot be undone.
        spec = spec_of([["p1", "p2"]], p1="p", p2="p")
        with pytest.raises(WellFormednessError):
            check_well_formed(spec)

    def test_compensatable_after_pivot_rejected(self):
        # A compensatable can still *abort*; after the pivot that
        # failure is unrecoverable on a single path.
        spec = spec_of([["p", "c1"]], p="p", c1="c")
        with pytest.raises(WellFormednessError):
            check_well_formed(spec)

    def test_non_retriable_tail_detected_with_position(self):
        spec = spec_of([["c1", "p", "c2"]], c1="c", p="p", c2="c")
        problems = well_formedness_violations(spec)
        assert len(problems) == 1
        assert "c2" in problems[0]

    def test_pivot_then_retriables_accepted(self):
        spec = spec_of(
            [["c1", "c2", "p", "r1", "r2"]],
            c1="c", c2="c", p="p", r1="r", r2="r",
        )
        check_well_formed(spec)

    def test_compensatable_retriable_after_pivot_accepted(self):
        # both-flags member cannot fail permanently (retriable).
        spec = spec_of([["p", "cr"]], p="p", cr="cr")
        check_well_formed(spec)

    def test_single_path_shape_decomposition(self):
        spec = spec_of([["c1", "p", "r1"]], c1="c", p="p", r1="r")
        shape = single_path_shape(spec)
        assert shape == {"before": ["c1"], "pivot": ["p"], "after": ["r1"]}

    def test_single_path_shape_without_pivot(self):
        spec = spec_of([["a", "b"]], a="c", b="c")
        shape = single_path_shape(spec)
        assert shape["pivot"] == []

    def test_single_path_shape_two_pivots_rejected(self):
        spec = spec_of([["p1", "p2"]], p1="p", p2="p")
        with pytest.raises(WellFormednessError, match="at most one pivot"):
            single_path_shape(spec)

    def test_single_path_shape_needs_single_path(self):
        with pytest.raises(WellFormednessError):
            single_path_shape(fig3_spec())


class TestAlternativePathRules:
    """[ZNBB94]: alternatives legitimise multiple pivots."""

    def test_fig3_example_is_well_formed(self):
        check_well_formed(fig3_spec())
        assert well_formedness_violations(fig3_spec()) == []

    def test_two_pivots_with_retriable_fallback_accepted(self):
        # p2 may abort after p1 committed because the fallback path
        # (containing p1) finishes the job with a retriable.
        spec = spec_of(
            [["p1", "p2"], ["p1", "r1"]],
            p1="p", p2="p", r1="r",
        )
        check_well_formed(spec)

    def test_fallback_missing_stuck_pivot_rejected(self):
        # The alternative does not contain p1, so p1's commit could
        # never be reconciled.
        spec = spec_of(
            [["p1", "p2"], ["r1"]],
            p1="p", p2="p", r1="r",
        )
        with pytest.raises(WellFormednessError):
            check_well_formed(spec)

    def test_fallback_that_can_itself_fail_rejected(self):
        # The "alternative" ends in another pivot with no further way
        # out: not guaranteed.
        spec = spec_of(
            [["p1", "p2"], ["p1", "p3"]],
            p1="p", p2="p", p3="p",
        )
        with pytest.raises(WellFormednessError):
            check_well_formed(spec)

    def test_chained_alternatives_accepted(self):
        # p2's failure falls back to p3's path; p3's failure falls back
        # to the retriable tail — two levels of recursion.
        spec = spec_of(
            [["p1", "p2"], ["p1", "p3"], ["p1", "r1"]],
            p1="p", p2="p", p3="p", r1="r",
        )
        check_well_formed(spec)

    def test_compensatable_branches_accepted(self):
        spec = spec_of(
            [["c1", "p1", "c2", "p2"], ["c1", "p1", "r1"]],
            c1="c", p1="p", c2="c", p2="p", r1="r",
        )
        check_well_formed(spec)

    def test_validate_method_delegates(self):
        spec = spec_of([["p1", "p2"]], p1="p", p2="p")
        with pytest.raises(WellFormednessError):
            spec.validate()
