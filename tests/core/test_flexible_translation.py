"""Tests for the §4.2 flexible → workflow translation (Figure 4) and
its behavioural equivalence with the native executor."""

import pytest

from repro.tx import (
    AbortProbability,
    AbortScript,
    FailNTimes,
    SimDatabase,
)
from repro.wfms.engine import Engine
from repro.wfms.model import ActivityKind, StartCondition
from repro.core.bindings import (
    register_flexible_programs,
    workflow_flexible_outcome,
)
from repro.core.flexible import FlexibleMember, FlexibleSpec, NativeFlexibleExecutor
from repro.core.flexible_translator import translate_flexible
from repro.workloads.banking import fig3_bindings, fig3_spec
from repro.workloads.generator import flexible_bindings, random_flexible_spec


def run_workflow_flexible(spec, policies=None, db=None):
    db = db if db is not None else SimDatabase()
    actions, comps = fig3_bindings(db, policies or {})
    translation = translate_flexible(spec)
    engine = Engine()
    register_flexible_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    result = engine.run_process(translation.process_name)
    assert result.finished
    return engine, translation, result, db


class TestStructure:
    """The generated process matches Figure 4's shape for Figure 3."""

    @pytest.fixture
    def translation(self):
        return translate_flexible(fig3_spec())

    def test_every_member_is_an_activity(self, translation):
        names = set(translation.process.activities)
        for member in fig3_spec().members:
            assert member in names

    def test_pivot_has_two_outgoing_connectors(self, translation):
        # Rule 3: "Pivot activities have, at least, two outgoing
        # control connectors" (commit path and abort path).
        process = translation.process
        outgoing_t4 = {
            (c.target, c.condition.source) for c in process.outgoing("t4")
        }
        assert ("t5", "RC = 1") in outgoing_t4
        assert any(cond == "RC = 0" for __, cond in outgoing_t4)

    def test_retriable_loops_until_commit(self, translation):
        # Rule 4: exit condition false until the subtransaction commits.
        process = translation.process
        for name in ("t3", "t7"):
            assert process.activity(name).exit_condition.source == "RC = 1"

    def test_retriables_emit_no_failure_connector(self, translation):
        process = translation.process
        for name in ("t3", "t7"):
            assert all(
                c.condition.source != "RC = 0"
                for c in process.outgoing(name)
            )

    def test_compensation_blocks_present(self, translation):
        blocks = [
            a
            for a in translation.process.activities.values()
            if a.kind is ActivityKind.BLOCK
        ]
        assert blocks, "expected compensation blocks"
        assert all(
            a.start_condition is StartCondition.ANY for a in blocks
        )

    def test_t5_t6_failures_route_to_same_comp_block(self, translation):
        # The branch segment [t5, t6, t8] shares one failure handler
        # compensating t5 and t6 (rules 5+6).
        process = translation.process
        targets = set()
        for name in ("t5", "t6", "t8"):
            for connector in process.outgoing(name):
                if connector.condition.source == "RC = 1":
                    continue
                targets.add(connector.target)
        assert len(targets) == 1
        handler = process.activity(targets.pop())
        assert handler.kind is ActivityKind.BLOCK
        inner = set(handler.block.activities)
        assert inner == {"NOP", "Comp_t5", "Comp_t6"}

    def test_comp_block_feeds_alternative(self, translation):
        # Rule 7: after compensation, the next alternative (t7) starts.
        process = translation.process
        comp_blocks = [
            name
            for name, a in translation.process.activities.items()
            if a.kind is ActivityKind.BLOCK
        ]
        feeds_t7 = [
            c.source
            for c in process.incoming("t7")
            if c.source in comp_blocks
        ]
        assert len(feeds_t7) == 1

    def test_required_programs(self, translation):
        programs = translation.required_programs
        assert "nop" in programs
        for i in range(1, 9):
            assert "txn_t%d" % i in programs
        for name in ("comp_t1", "comp_t5", "comp_t6"):
            assert name in programs

    def test_unreachable_alternative_pruned(self):
        # First alternative cannot fail (all retriable) -> second is
        # dead code and pruned with a note.
        spec = FlexibleSpec(
            "prune",
            [
                FlexibleMember("a", compensatable=True),
                FlexibleMember("r1", retriable=True),
                FlexibleMember("r2", retriable=True),
            ],
            [["a", "r1"], ["a", "r2"]],
        )
        translation = translate_flexible(spec)
        assert "r2" not in translation.process.activities
        assert translation.notes

    def test_shared_member_across_alternatives_deduped(self):
        spec = FlexibleSpec(
            "shared",
            [
                FlexibleMember("a", compensatable=True),
                FlexibleMember("x"),
                FlexibleMember("y", retriable=True),
                FlexibleMember("b", retriable=True),
            ],
            [["a", "x", "b"], ["a", "y", "b"]],
        )
        translation = translate_flexible(spec)
        names = set(translation.process.activities)
        b_activities = [n for n in names if n.split("__")[0] == "b"]
        assert len(b_activities) == 2


class TestExecution:
    """Appendix branches, executed through the workflow engine."""

    def test_all_commit_takes_preferred_path(self):
        engine, tr, result, db = run_workflow_flexible(fig3_spec())
        out = workflow_flexible_outcome(engine, tr, result.instance_id)
        assert out.committed
        assert out.committed_path == ["t1", "t2", "t4", "t5", "t6", "t8"]
        assert out.compensated == []

    def test_t1_abort_kills_everything_by_dead_path(self):
        # "If it aborts ... all other activities will be marked as
        # terminated following a similar mechanism."
        engine, tr, result, db = run_workflow_flexible(
            fig3_spec(), {"t1": AbortScript([1])}
        )
        out = workflow_flexible_outcome(engine, tr, result.instance_id)
        assert not out.committed
        assert out.compensated == []
        dead = set(result.dead_activities)
        assert {"t2", "t4", "t3"} <= dead

    def test_t2_abort_compensates_t1(self):
        engine, tr, result, db = run_workflow_flexible(
            fig3_spec(), {"t2": AbortScript([1])}
        )
        out = workflow_flexible_outcome(engine, tr, result.instance_id)
        assert not out.committed
        assert out.compensated == ["t1"]
        assert db.get("t1") == 0

    def test_t4_abort_retries_t3(self):
        engine, tr, result, db = run_workflow_flexible(
            fig3_spec(), {"t4": AbortScript([1]), "t3": FailNTimes(3)}
        )
        out = workflow_flexible_outcome(engine, tr, result.instance_id)
        assert out.committed
        assert out.committed_path == ["t1", "t2", "t3"]
        assert engine.audit.attempts(result.instance_id, "t3") == 4

    def test_t8_abort_compensates_then_t7(self):
        engine, tr, result, db = run_workflow_flexible(
            fig3_spec(), {"t8": AbortScript([1])}
        )
        out = workflow_flexible_outcome(engine, tr, result.instance_id)
        assert out.committed
        assert out.committed_path == ["t1", "t2", "t4", "t7"]
        assert out.compensated == ["t6", "t5"]
        # Compensation happened *before* t7 (order in the trail).
        order = engine.execution_order(result.instance_id)
        assert order.index("Comp_t6") < order.index("Comp_t5") < order.index("t7")

    def test_t5_abort_switches_without_compensation(self):
        engine, tr, result, db = run_workflow_flexible(
            fig3_spec(), {"t5": AbortScript([1])}
        )
        out = workflow_flexible_outcome(engine, tr, result.instance_id)
        assert out.committed
        assert out.committed_path == ["t1", "t2", "t4", "t7"]
        assert out.compensated == []

    def test_t6_abort_compensates_t5_only(self):
        engine, tr, result, db = run_workflow_flexible(
            fig3_spec(), {"t6": AbortScript([1])}
        )
        out = workflow_flexible_outcome(engine, tr, result.instance_id)
        assert out.compensated == ["t5"]
        assert db.get("t5") == 0

    def test_process_always_finishes(self):
        # Dead-path elimination must terminate the process on every
        # branch — no hanging activities.
        for policies in (
            {},
            {"t1": AbortScript([1])},
            {"t2": AbortScript([1])},
            {"t4": AbortScript([1])},
            {"t5": AbortScript([1])},
            {"t8": AbortScript([1])},
        ):
            engine, tr, result, db = run_workflow_flexible(
                fig3_spec(), dict(policies)
            )
            assert result.finished


class TestParityWithNative:
    def scenario_parity(self, policies):
        spec = fig3_spec()
        native_db = SimDatabase()
        actions, comps = fig3_bindings(native_db, dict(policies))
        native = NativeFlexibleExecutor(spec, actions, comps).run()

        engine, tr, result, wf_db = run_workflow_flexible(
            spec, dict(policies)
        )
        wf = workflow_flexible_outcome(engine, tr, result.instance_id)
        assert native.committed == wf.committed
        assert native.committed_path == wf.committed_path
        assert sorted(native.committed_members) == sorted(wf.committed_members)
        assert native.compensated == wf.compensated
        assert native_db.snapshot() == wf_db.snapshot()

    @pytest.mark.parametrize(
        "policies",
        [
            {},
            {"t1": AbortScript([1])},
            {"t2": AbortScript([1])},
            {"t4": AbortScript([1])},
            {"t5": AbortScript([1])},
            {"t6": AbortScript([1])},
            {"t8": AbortScript([1])},
            {"t8": AbortScript([1]), "t7": FailNTimes(2)},
            {"t4": AbortScript([1]), "t3": FailNTimes(2)},
            {"t5": AbortScript([1]), "t6": AbortScript([1])},
        ],
    )
    def test_fig3_parity(self, policies):
        self.scenario_parity(policies)

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_spec_parity_under_random_failures(self, seed):
        spec = random_flexible_spec(branches=3, seed=seed)
        native_db = SimDatabase()
        actions, comps = flexible_bindings(
            spec, native_db, abort_probability=0.3, seed=seed
        )
        native = NativeFlexibleExecutor(spec, actions, comps).run()

        wf_db = SimDatabase()
        actions2, comps2 = flexible_bindings(
            spec, wf_db, abort_probability=0.3, seed=seed
        )
        translation = translate_flexible(spec)
        engine = Engine()
        register_flexible_programs(engine, translation, actions2, comps2)
        engine.register_definition(translation.process)
        result = engine.run_process(translation.process_name)
        wf = workflow_flexible_outcome(engine, translation, result.instance_id)

        assert native.committed == wf.committed, seed
        assert native.committed_path == wf.committed_path, seed
        assert native_db.snapshot() == wf_db.snapshot(), seed
