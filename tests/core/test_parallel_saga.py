"""Tests for parallel/generalised saga translation (guarded
construction) — §4.1's "the same ideas apply to the more general
case"."""

import pytest

from repro.tx import AbortScript, FailNTimes, SimDatabase
from repro.wfms.engine import Engine
from repro.core.parallel_saga import (
    register_parallel_saga_programs,
    translate_parallel_saga,
    workflow_parallel_saga_outcome,
)
from repro.core.sagas import NativeSagaExecutor, SagaSpec, SagaStep
from repro.workloads.generator import saga_bindings

DIAMOND = SagaSpec(
    "diamond",
    [SagaStep(n) for n in "abcd"],
    order=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
)


def run_workflow(spec, policies):
    db = SimDatabase()
    actions, comps = saga_bindings(spec, db, policies=dict(policies))
    translation = translate_parallel_saga(spec)
    engine = Engine()
    register_parallel_saga_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    result = engine.run_process(translation.process_name)
    assert result.finished
    outcome = workflow_parallel_saga_outcome(
        engine, translation, result.instance_id
    )
    return engine, outcome, db


class TestDAGSagas:
    def test_all_commit(self):
        engine, outcome, db = run_workflow(DIAMOND, {})
        assert outcome.committed
        assert outcome.executed == ["a", "b", "c", "d"]
        assert outcome.compensated == []

    def test_root_abort_nothing_to_compensate(self):
        engine, outcome, db = run_workflow(DIAMOND, {"a": AbortScript([1])})
        assert not outcome.committed
        assert outcome.executed == []
        assert outcome.compensated == []
        assert db.snapshot() == {}

    def test_branch_abort_sibling_completes_then_compensates(self):
        # Workflow semantics: the parallel branch c finishes, then both
        # a and c are compensated (b rolled itself back, d never ran).
        engine, outcome, db = run_workflow(DIAMOND, {"b": AbortScript([1])})
        assert not outcome.committed
        assert set(outcome.executed) == {"a", "c"}
        assert set(outcome.compensated) == {"a", "c"}
        assert db.snapshot() == {"a": 0, "c": 0}

    def test_join_abort_compensates_all(self):
        engine, outcome, db = run_workflow(DIAMOND, {"d": AbortScript([1])})
        assert set(outcome.compensated) == {"a", "b", "c"}
        # Reverse topological order: a is compensated last.
        assert outcome.compensated[-1] == "a"

    def test_compensation_order_is_reverse_topological(self):
        engine, outcome, db = run_workflow(DIAMOND, {"d": AbortScript([1])})
        order = outcome.compensated
        assert order.index("b") < order.index("a")
        assert order.index("c") < order.index("a")

    def test_guarded_compensations_retried(self):
        db = SimDatabase()
        actions, comps = saga_bindings(
            DIAMOND, db, policies={"d": AbortScript([1])}
        )
        comps["a"].policy = FailNTimes(2)
        translation = translate_parallel_saga(DIAMOND)
        engine = Engine()
        register_parallel_saga_programs(engine, translation, actions, comps)
        engine.register_definition(translation.process)
        result = engine.run_process(translation.process_name)
        outcome = workflow_parallel_saga_outcome(
            engine, translation, result.instance_id
        )
        assert "a" in outcome.compensated
        assert comps["a"].attempts == 3


class TestLinearEquivalence:
    """On linear sagas, the guarded construction behaves exactly like
    Figure 2's dead-path construction and the native executor."""

    @pytest.mark.parametrize("abort_index", [None, 1, 2, 3])
    def test_linear_parity_with_native(self, abort_index):
        spec = SagaSpec("lin", [SagaStep("t%d" % i) for i in (1, 2, 3)])
        policies = (
            {"t%d" % abort_index: AbortScript([1])} if abort_index else {}
        )
        native_db = SimDatabase()
        actions, comps = saga_bindings(spec, native_db, policies=dict(policies))
        native = NativeSagaExecutor(spec, actions, comps).run()
        engine, outcome, wf_db = run_workflow(spec, policies)
        assert outcome.committed == native.committed
        assert outcome.executed == native.executed
        assert outcome.compensated == native.compensated
        assert wf_db.snapshot() == native_db.snapshot()

    def test_committed_guarded_saga_skips_compensation_block(self):
        spec = SagaSpec("lin", [SagaStep("t1"), SagaStep("t2")])
        engine, outcome, db = run_workflow(spec, {})
        assert outcome.committed
        # The compensation block was dead-path eliminated entirely.
        instance_id = [
            i.instance_id
            for i in engine.navigator.instances()
            if i.is_root
        ][0]
        assert "Compensation" in engine.audit.dead_activities(instance_id)


class TestStructure:
    def test_forward_block_mirrors_dag(self):
        translation = translate_parallel_saga(DIAMOND)
        edges = [
            (c.source, c.target)
            for c in translation.forward_block.control_connectors
        ]
        assert set(edges) == {("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")}

    def test_compensation_block_reverses_dag(self):
        translation = translate_parallel_saga(DIAMOND)
        edges = [
            (c.source, c.target)
            for c in translation.compensation_block.control_connectors
            if c.source != "NOP"
        ]
        assert set(edges) == {
            ("Comp_b", "Comp_a"),
            ("Comp_c", "Comp_a"),
            ("Comp_d", "Comp_b"),
            ("Comp_d", "Comp_c"),
        }

    def test_nop_feeds_forward_sinks(self):
        translation = translate_parallel_saga(DIAMOND)
        nop_targets = [
            c.target
            for c in translation.compensation_block.control_connectors
            if c.source == "NOP"
        ]
        assert nop_targets == ["Comp_d"]  # d is the only forward sink

    def test_compensation_gate_tests_all_states(self):
        translation = translate_parallel_saga(DIAMOND)
        gate = translation.process.control_connectors[0]
        for name in "abcd":
            assert "State_%s = 0" % name in gate.condition.source
