"""Tests for the ConTract-lite model (the FMTM extensibility claim)."""

import pytest

from repro.errors import SpecificationError, SpecSyntaxError
from repro.tx import AbortScript, SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.engine import Engine
from repro.core.contract import (
    ContractSpec,
    ContractStep,
    NativeContractExecutor,
    register_contract_programs,
    translate_contract,
    workflow_contract_outcome,
)
from repro.core.fmtm import FMTMPipeline
from repro.core.speclang import format_contract_spec, parse_spec

CONTRACT = ContractSpec(
    "order",
    context=[VariableDecl("Amount", DataType.LONG)],
    steps=[
        ContractStep("reserve"),
        ContractStep("insure", entry_condition="Amount > 100"),
        ContractStep("charge", entry_condition="Amount > 0", critical=True),
        ContractStep("ship"),
    ],
)


def bindings(db, aborts=()):
    actions = {
        s.name: Subtransaction(s.name, db, write_value(s.name, 1))
        for s in CONTRACT.steps
    }
    comps = {
        s.name: Subtransaction("c" + s.name, db, write_value(s.name, 0))
        for s in CONTRACT.steps
    }
    for name in aborts:
        actions[name].policy = AbortScript([1])
    return actions, comps


def run_native(ctx, aborts=()):
    db = SimDatabase()
    actions, comps = bindings(db, aborts)
    return NativeContractExecutor(CONTRACT, actions, comps).run(ctx), db


def run_workflow(ctx, aborts=()):
    db = SimDatabase()
    actions, comps = bindings(db, aborts)
    translation = translate_contract(CONTRACT)
    engine = Engine()
    register_contract_programs(engine, translation, actions, comps)
    engine.register_definition(translation.process)
    iid = engine.start_process(translation.process_name, ctx)
    engine.run()
    assert engine.instance_state(iid) == "finished"
    return workflow_contract_outcome(engine, translation, iid), db


class TestSpec:
    def test_entry_condition_must_reference_context(self):
        with pytest.raises(SpecificationError, match="Ghost"):
            ContractSpec(
                "c",
                context=[VariableDecl("X", DataType.LONG)],
                steps=[ContractStep("s", entry_condition="Ghost = 1")],
            )

    def test_duplicate_steps_rejected(self):
        with pytest.raises(SpecificationError):
            ContractSpec(
                "c", [], [ContractStep("s"), ContractStep("s")]
            )

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            ContractSpec("c", [], [])

    def test_bad_entry_condition_rejected_early(self):
        with pytest.raises(Exception):
            ContractStep("s", entry_condition="((")


class TestNativeExecutor:
    def test_full_run(self):
        outcome, db = run_native({"Amount": 500})
        assert outcome.committed
        assert outcome.executed == ["reserve", "insure", "charge", "ship"]
        assert outcome.skipped == []

    def test_invariant_skips_optional_step(self):
        outcome, db = run_native({"Amount": 50})
        assert outcome.committed
        assert outcome.skipped == ["insure"]
        assert db.get("insure") is None

    def test_critical_invariant_fails_contract(self):
        outcome, db = run_native({"Amount": 0})
        assert not outcome.committed
        assert outcome.failed_step == "charge"
        assert outcome.compensated == ["reserve"]

    def test_step_abort_triggers_backward_recovery(self):
        outcome, db = run_native({"Amount": 500}, aborts=("ship",))
        assert not outcome.committed
        assert outcome.compensated == ["charge", "insure", "reserve"]
        assert db.snapshot() == {
            "reserve": 0, "insure": 0, "charge": 0,
        }


class TestWorkflowParity:
    @pytest.mark.parametrize(
        "ctx,aborts",
        [
            ({"Amount": 500}, ()),
            ({"Amount": 50}, ()),
            ({"Amount": 0}, ()),
            ({"Amount": 500}, ("ship",)),
            ({"Amount": 500}, ("reserve",)),
            ({"Amount": 50}, ("ship",)),
        ],
        ids=["full", "skip", "critical-fail", "ship-abort",
             "reserve-abort", "skip-then-abort"],
    )
    def test_native_workflow_agree(self, ctx, aborts):
        native, native_db = run_native(dict(ctx), aborts)
        workflow, wf_db = run_workflow(dict(ctx), aborts)
        assert workflow.committed == native.committed
        assert workflow.executed == native.executed
        assert workflow.skipped == native.skipped
        assert workflow.compensated == native.compensated
        assert wf_db.snapshot() == native_db.snapshot()

    def test_if_then_else_via_conditions(self):
        # The §3.2 claim: conditions implement if-then-else — the
        # insure step's Eval has two complementary outgoing edges.
        translation = translate_contract(CONTRACT)
        edges = {
            (c.target, c.condition.source)
            for c in translation.process.outgoing("Eval_insure")
        }
        assert ("insure", "Amount > 100") in edges
        assert ("Eval_charge", "NOT (Amount > 100)") in edges


class TestSpecLanguageIntegration:
    TEXT = """
    MODEL CONTRACT 'order'
      CONTEXT 'Amount' LONG
      STEP 'reserve'
      STEP 'insure' WHEN "Amount > 100"
      STEP 'charge' WHEN "Amount > 0" CRITICAL
      STEP 'ship'
    END 'order'
    """

    def test_parses(self):
        spec = parse_spec(self.TEXT)
        assert isinstance(spec, ContractSpec)
        assert spec.steps[1].entry_condition == "Amount > 100"
        assert spec.steps[2].critical

    def test_round_trip(self):
        spec = parse_spec(self.TEXT)
        again = parse_spec(format_contract_spec(spec))
        assert [s.name for s in again.steps] == [s.name for s in spec.steps]
        assert [s.critical for s in again.steps] == [
            s.critical for s in spec.steps
        ]

    def test_bad_context_line_rejected(self):
        with pytest.raises(SpecSyntaxError, match="CONTEXT"):
            parse_spec(
                "MODEL CONTRACT 'c'\n  CONTEXT 'X'\n  STEP 's'\nEND 'c'"
            )

    def test_through_fmtm_pipeline(self):
        db = SimDatabase()
        actions, comps = bindings(db)
        translation = translate_contract(CONTRACT)
        engine = Engine()
        register_contract_programs(engine, translation, actions, comps)
        pipeline = FMTMPipeline(engine)
        report = pipeline.process_specification(self.TEXT)
        assert report.process_name == "Contract_order"
        iid = engine.start_process(report.process_name, {"Amount": 500})
        engine.run()
        outcome = workflow_contract_outcome(engine, report.translation, iid)
        assert outcome.committed

    def test_dag_saga_through_pipeline(self):
        from repro.core.parallel_saga import (
            register_parallel_saga_programs,
            translate_parallel_saga,
            workflow_parallel_saga_outcome,
        )
        from repro.core.sagas import SagaSpec, SagaStep
        from repro.workloads.generator import saga_bindings

        text = """
        MODEL SAGA 'dag'
          STEP 'a'
          STEP 'b'
          STEP 'c'
          ORDER 'a' 'b'
          ORDER 'a' 'c'
        END 'dag'
        """
        spec = SagaSpec(
            "dag",
            [SagaStep(n) for n in "abc"],
            order=[("a", "b"), ("a", "c")],
        )
        db = SimDatabase()
        actions, comps = saga_bindings(spec, db)
        translation = translate_parallel_saga(spec)
        engine = Engine()
        register_parallel_saga_programs(engine, translation, actions, comps)
        pipeline = FMTMPipeline(engine)
        report = pipeline.process_specification(text)
        assert report.process_name == "PSaga_dag"
        iid = pipeline.create_instance(report)
        engine.run()
        outcome = workflow_parallel_saga_outcome(
            engine, report.translation, iid
        )
        assert outcome.committed
