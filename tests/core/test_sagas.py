"""Tests for the saga model and its native executor (§4.1)."""

import pytest

from repro.errors import ExecutionContractViolation, SpecificationError
from repro.tx import AbortScript, AlwaysCommit, FailNTimes, SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.core.sagas import (
    NativeSagaExecutor,
    SagaSpec,
    SagaStep,
    verify_saga_guarantee,
)


def make_saga(n=3, abort_at=None, abort_policy=None, comp_policies=None):
    db = SimDatabase()
    names = ["t%d" % i for i in range(1, n + 1)]
    spec = SagaSpec("s", [SagaStep(x) for x in names])
    actions, comps = {}, {}
    for name in names:
        sub = Subtransaction(name, db, write_value(name, 1))
        if name == abort_at:
            sub.policy = abort_policy or AbortScript([1])
        actions[name] = sub
        comp = Subtransaction("c" + name, db, write_value(name, 0))
        if comp_policies and name in comp_policies:
            comp.policy = comp_policies[name]
        comps[name] = comp
    return db, spec, actions, comps


class TestSagaSpec:
    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            SagaSpec("s", [])

    def test_duplicate_steps_rejected(self):
        with pytest.raises(SpecificationError):
            SagaSpec("s", [SagaStep("a"), SagaStep("a")])

    def test_default_program_names(self):
        step = SagaStep("book")
        assert step.program == "txn_book"
        assert step.compensation_program == "comp_book"

    def test_explicit_program_names(self):
        step = SagaStep("book", program="p", compensation_program="c")
        assert step.program == "p" and step.compensation_program == "c"

    def test_linear_order_derived(self):
        spec = SagaSpec("s", [SagaStep("a"), SagaStep("b"), SagaStep("c")])
        assert spec.order == [("a", "b"), ("b", "c")]
        assert spec.is_linear

    def test_dag_order_accepted(self):
        spec = SagaSpec(
            "s",
            [SagaStep("a"), SagaStep("b"), SagaStep("c")],
            order=[("a", "b"), ("a", "c")],
        )
        assert not spec.is_linear
        topo = spec.topological_names()
        assert topo.index("a") < topo.index("b")
        assert topo.index("a") < topo.index("c")

    def test_cyclic_order_rejected(self):
        with pytest.raises(SpecificationError, match="cyclic"):
            SagaSpec(
                "s",
                [SagaStep("a"), SagaStep("b")],
                order=[("a", "b"), ("b", "a")],
            )

    def test_order_unknown_step_rejected(self):
        with pytest.raises(SpecificationError):
            SagaSpec("s", [SagaStep("a")], order=[("a", "ghost")])


class TestNativeExecutor:
    def test_all_commit(self):
        db, spec, actions, comps = make_saga()
        out = NativeSagaExecutor(spec, actions, comps).run()
        assert out.committed
        assert out.executed == ["t1", "t2", "t3"]
        assert out.compensated == []
        assert db.get("t1") == db.get("t2") == db.get("t3") == 1

    @pytest.mark.parametrize("abort_at,expected_j", [("t1", 0), ("t2", 1), ("t3", 2)])
    def test_guarantee_at_every_abort_position(self, abort_at, expected_j):
        db, spec, actions, comps = make_saga(abort_at=abort_at)
        out = NativeSagaExecutor(spec, actions, comps).run()
        assert not out.committed
        assert len(out.executed) == expected_j
        assert out.compensated == list(reversed(out.executed))
        # Database effect: everything rolled back / compensated.
        assert all(db.get("t%d" % i) in (None, 0) for i in range(1, 4))

    def test_compensations_retried_until_commit(self):
        db, spec, actions, comps = make_saga(
            abort_at="t3",
            comp_policies={"t1": FailNTimes(3)},
        )
        out = NativeSagaExecutor(spec, actions, comps).run()
        assert out.compensated == ["t2", "t1"]
        assert comps["t1"].attempts == 4  # 3 failures + 1 success

    def test_compensation_never_committing_raises(self):
        db, spec, actions, comps = make_saga(
            abort_at="t2", comp_policies={"t1": FailNTimes(10_000)}
        )
        executor = NativeSagaExecutor(
            spec, actions, comps, max_compensation_attempts=5
        )
        with pytest.raises(ExecutionContractViolation):
            executor.run()

    def test_compensate_completed_saga(self):
        db, spec, actions, comps = make_saga()
        out = NativeSagaExecutor(spec, actions, comps).run(
            compensate_completed=True
        )
        assert out.committed
        assert out.executed == ["t1", "t2", "t3"]
        assert out.compensated == ["t3", "t2", "t1"]
        assert all(db.get("t%d" % i) == 0 for i in range(1, 4))

    def test_missing_binding_rejected(self):
        db, spec, actions, comps = make_saga()
        del actions["t2"]
        with pytest.raises(SpecificationError, match="t2"):
            NativeSagaExecutor(spec, actions, comps)

    def test_dag_saga_compensates_in_reverse_completion_order(self):
        db = SimDatabase()
        spec = SagaSpec(
            "s",
            [SagaStep("a"), SagaStep("b"), SagaStep("c"), SagaStep("d")],
            order=[("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        )
        actions = {
            n: Subtransaction(n, db, write_value(n, 1)) for n in "abcd"
        }
        actions["d"].policy = AbortScript([1])
        comps = {
            n: Subtransaction("c" + n, db, write_value(n, 0)) for n in "abcd"
        }
        out = NativeSagaExecutor(spec, actions, comps).run()
        assert not out.committed
        assert out.compensated == list(reversed(out.executed))

    def test_history_records_every_attempt(self):
        db, spec, actions, comps = make_saga(abort_at="t2")
        out = NativeSagaExecutor(spec, actions, comps).run()
        assert [(h.name, h.committed) for h in out.history] == [
            ("t1", True),
            ("t2", False),
            ("ct1", True),
        ]

    def test_sequence_view(self):
        db, spec, actions, comps = make_saga(abort_at="t3")
        out = NativeSagaExecutor(spec, actions, comps).run()
        assert out.sequence() == ["t1", "t2", "comp_t2", "comp_t1"]


class TestGuaranteeChecker:
    def test_full_commit_ok(self):
        spec = SagaSpec("s", [SagaStep("a"), SagaStep("b")])
        assert verify_saga_guarantee(spec, ["a", "b"], [])

    def test_prefix_with_reverse_compensation_ok(self):
        spec = SagaSpec("s", [SagaStep("a"), SagaStep("b"), SagaStep("c")])
        assert verify_saga_guarantee(spec, ["a", "b"], ["b", "a"])
        assert verify_saga_guarantee(spec, [], [])

    def test_wrong_order_rejected(self):
        spec = SagaSpec("s", [SagaStep("a"), SagaStep("b"), SagaStep("c")])
        assert not verify_saga_guarantee(spec, ["a", "b"], ["a", "b"])

    def test_partial_compensation_rejected(self):
        spec = SagaSpec("s", [SagaStep("a"), SagaStep("b"), SagaStep("c")])
        assert not verify_saga_guarantee(spec, ["a", "b"], ["b"])

    def test_non_prefix_execution_rejected(self):
        spec = SagaSpec("s", [SagaStep("a"), SagaStep("b"), SagaStep("c")])
        assert not verify_saga_guarantee(spec, ["b"], ["b"])

    def test_full_compensation_of_completed_saga_ok(self):
        spec = SagaSpec("s", [SagaStep("a"), SagaStep("b")])
        assert verify_saga_guarantee(spec, ["a", "b"], ["b", "a"])
