"""Property-based tests (hypothesis) over the core invariants.

Each property encodes one of the guarantees the paper's argument rests
on, checked over generated inputs rather than hand-picked examples:

* saga guarantee `T1..Tn` or `T1..Tj;Cj..C1` for *any* saga length and
  *any* failure pattern, in both the native executor and the workflow
  translation, with identical final database state;
* flexible transactions always terminate with either a complete path
  committed or everything compensated, again with native/workflow
  parity;
* the condition language and FDL round-trip losslessly;
* containers never violate their declared types;
* the navigator always quiesces with every activity terminated;
* lock release is complete (no lock leaks) and WAL restart recovery is
  idempotent.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.fdl import export_definition, import_text
from repro.tx import SimDatabase, Subtransaction
from repro.tx.failures import AbortScript
from repro.tx.lockmgr import LockManager, LockMode
from repro.tx.subtransaction import write_value
from repro.wfms import Activity, Engine, ProcessDefinition
from repro.wfms.conditions import parse_condition
from repro.core.bindings import (
    register_flexible_programs,
    register_saga_programs,
    workflow_flexible_outcome,
    workflow_saga_outcome,
)
from repro.core.flexible import NativeFlexibleExecutor
from repro.core.flexible_translator import translate_flexible
from repro.core.sagas import (
    NativeSagaExecutor,
    SagaSpec,
    SagaStep,
    verify_saga_guarantee,
)
from repro.core.saga_translator import translate_saga
from repro.core.wellformed import well_formedness_violations
from repro.workloads.generator import (
    flexible_bindings,
    random_dag_process,
    random_flexible_spec,
    saga_bindings,
)

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


# ---------------------------------------------------------------------------
# Saga guarantee
# ---------------------------------------------------------------------------

@st.composite
def saga_scenarios(draw):
    length = draw(st.integers(min_value=1, max_value=8))
    # Abort pattern: per-step set of failing attempt numbers (attempt 1
    # only — sagas run each step once).
    aborts = draw(
        st.lists(st.booleans(), min_size=length, max_size=length)
    )
    return length, aborts


@given(saga_scenarios())
@settings(max_examples=60, deadline=None)
def test_saga_guarantee_native_and_workflow(scenario):
    length, aborts = scenario
    spec = SagaSpec(
        "s", [SagaStep("t%02d" % i) for i in range(1, length + 1)]
    )
    policies = {
        "t%02d" % (i + 1): AbortScript([1])
        for i, fails in enumerate(aborts)
        if fails
    }
    native_db = SimDatabase()
    actions, comps = saga_bindings(spec, native_db, policies=dict(policies))
    native = NativeSagaExecutor(spec, actions, comps).run()
    assert verify_saga_guarantee(spec, native.executed, native.compensated)

    wf_db = SimDatabase()
    actions2, comps2 = saga_bindings(spec, wf_db, policies=dict(policies))
    translation = translate_saga(spec)
    engine = Engine()
    register_saga_programs(engine, translation, actions2, comps2)
    engine.register_definition(translation.process)
    result = engine.run_process(translation.process_name)
    assert result.finished
    wf = workflow_saga_outcome(engine, translation, result.instance_id)
    assert verify_saga_guarantee(spec, wf.executed, wf.compensated)
    assert wf.executed == native.executed
    assert wf.compensated == native.compensated
    assert wf_db.snapshot() == native_db.snapshot()


# ---------------------------------------------------------------------------
# Flexible transactions
# ---------------------------------------------------------------------------

@given(
    branches=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
    abort_probability=st.sampled_from([0.0, 0.2, 0.5]),
)
@settings(max_examples=40, deadline=None)
def test_flexible_termination_and_parity(branches, seed, abort_probability):
    spec = random_flexible_spec(branches=branches, seed=seed)
    assert well_formedness_violations(spec) == []

    native_db = SimDatabase()
    actions, comps = flexible_bindings(
        spec, native_db, abort_probability=abort_probability, seed=seed
    )
    native = NativeFlexibleExecutor(spec, actions, comps).run()
    if native.committed:
        assert native.committed_path in spec.paths
    else:
        assert native.committed_members == []

    wf_db = SimDatabase()
    actions2, comps2 = flexible_bindings(
        spec, wf_db, abort_probability=abort_probability, seed=seed
    )
    translation = translate_flexible(spec)
    engine = Engine()
    register_flexible_programs(engine, translation, actions2, comps2)
    engine.register_definition(translation.process)
    result = engine.run_process(translation.process_name)
    assert result.finished
    wf = workflow_flexible_outcome(engine, translation, result.instance_id)
    assert wf.committed == native.committed
    assert wf.committed_path == native.committed_path
    assert wf_db.snapshot() == native_db.snapshot()


# ---------------------------------------------------------------------------
# Condition language
# ---------------------------------------------------------------------------

@st.composite
def simple_conditions(draw):
    variable = draw(st.sampled_from(["RC", "State_1", "X.Y"]))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    value = draw(st.integers(min_value=-100, max_value=100))
    return "%s %s %d" % (variable, op, value), variable, op, value


@given(simple_conditions())
@settings(max_examples=100)
def test_condition_parse_eval_consistency(case):
    text, variable, op, value = case
    condition = parse_condition(text)
    assert condition.variables() == {variable}
    for probe in (value - 1, value, value + 1):
        env = {variable: probe, "_RC": probe}
        expected = {
            "=": probe == value,
            "<>": probe != value,
            "<": probe < value,
            "<=": probe <= value,
            ">": probe > value,
            ">=": probe >= value,
        }[op]
        assert condition.evaluate(env) is expected


@given(
    a=st.booleans(), b=st.booleans(), c=st.booleans()
)
def test_condition_boolean_semantics(a, b, c):
    env = {"A": int(a), "B": int(b), "C": int(c)}
    assert parse_condition("A = 1 AND B = 1 OR C = 1").evaluate(env) is (
        (a and b) or c
    )
    assert parse_condition("NOT A = 1").evaluate(env) is (not a)


# ---------------------------------------------------------------------------
# FDL round-trip
# ---------------------------------------------------------------------------

@given(
    layers=st.integers(min_value=1, max_value=4),
    width=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_fdl_round_trip_of_generated_processes(layers, width, seed):
    definition = random_dag_process(layers=layers, width=width, seed=seed)
    definition.validate()
    text = export_definition(definition)
    restored = import_text(text).definition(definition.name)
    assert set(restored.activities) == set(definition.activities)
    assert [
        (c.source, c.target, c.condition.source)
        for c in restored.control_connectors
    ] == [
        (c.source, c.target, c.condition.source)
        for c in definition.control_connectors
    ]
    # Idempotence: exporting the restored definition is stable.
    assert export_definition(restored) == text


# ---------------------------------------------------------------------------
# Navigator quiescence
# ---------------------------------------------------------------------------

@given(
    layers=st.integers(min_value=1, max_value=4),
    width=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
    fail=st.sampled_from([0.0, 0.3]),
)
@settings(max_examples=30, deadline=None)
def test_every_process_run_quiesces_fully_terminated(layers, width, seed, fail):
    definition = random_dag_process(
        layers=layers, width=width, seed=seed, fail_probability=fail
    )
    engine = Engine()
    # Programs alternate between success and failure deterministically.
    counter = {"n": 0}

    def work(ctx) -> int:
        counter["n"] += 1
        return counter["n"] % 2

    engine.register_program("work", work)
    engine.register_definition(definition)
    result = engine.run_process(definition.name)
    assert result.finished
    states = engine.activity_states(result.instance_id)
    assert all(s in ("terminated", "dead") for s in states.values())


# ---------------------------------------------------------------------------
# Lock manager and recovery
# ---------------------------------------------------------------------------

@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["t1", "t2", "t3"]),
            st.sampled_from(["a", "b", "c", "d"]),
            st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
        ),
        max_size=25,
    )
)
@settings(max_examples=60, deadline=None)
def test_lock_manager_never_leaks_and_never_coholds_exclusive(ops):
    lm = LockManager()
    for txn, key, mode in ops:
        try:
            lm.acquire(txn, key, mode, wait=False)
        except Exception:
            pass
        holders = lm.holders(key)
        exclusive = [t for t, m in holders.items() if m is LockMode.EXCLUSIVE]
        assert len(exclusive) <= 1
        if exclusive:
            assert len(holders) == 1
    for txn in ("t1", "t2", "t3"):
        lm.release_all(txn)
    for __, key, __mode in ops:
        assert lm.holders(key) == {}


@given(
    writes=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=0, max_value=9),
            st.booleans(),  # commit?
        ),
        min_size=1,
        max_size=10,
    ),
    flush_everything=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_restart_recovery_preserves_committed_state_and_is_idempotent(
    writes, flush_everything
):
    db = SimDatabase()
    expected: dict[str, int] = {}
    for key, value, commit in writes:
        txn = db.begin()
        txn.write(key, value)
        if commit:
            txn.commit()
            expected[key] = value
        else:
            txn.abort()
    if flush_everything:
        db.flush()
    db.crash()
    db.restart()
    assert db.snapshot() == expected
    db.crash()
    db.restart()
    assert db.snapshot() == expected


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_subtransaction_abort_leaves_no_trace(seed):
    db = SimDatabase()
    sub = Subtransaction(
        "t", db, write_value("k", seed), policy=AbortScript([1])
    )
    outcome = sub.execute()
    assert not outcome.committed
    assert db.snapshot() == {}
