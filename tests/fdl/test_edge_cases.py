"""FDL edge cases: escaping, comments, tricky round-trips."""

import pytest

from repro.errors import FDLSemanticError, FDLSyntaxError
from repro.fdl import export_definition, import_text, parse_document
from repro.wfms import (
    Activity,
    ActivityKind,
    DataType,
    ProcessDefinition,
    VariableDecl,
)


class TestEscaping:
    def test_description_with_quotes_round_trips(self):
        d = ProcessDefinition("P", description='say "hi" to \\ everyone')
        d.add_activity(Activity("A", program="p"))
        restored = import_text(export_definition(d)).definition("P")
        assert restored.description == 'say "hi" to \\ everyone'

    def test_condition_with_string_literal_round_trips(self):
        d = ProcessDefinition("P")
        d.add_activity(
            Activity(
                "A",
                program="p",
                output_spec=[VariableDecl("Name", DataType.STRING)],
            )
        )
        d.add_activity(Activity("B", program="p"))
        d.connect("A", "B", "Name = 'bob'")
        restored = import_text(export_definition(d)).definition("P")
        assert restored.control_connectors[0].condition.source == "Name = 'bob'"


class TestComments:
    def test_comments_anywhere(self):
        text = """
        // leading comment
        PROGRAM 'p' END 'p'  // trailing comment
        PROCESS 'P' // here too
          PROGRAM_ACTIVITY 'A' PROGRAM 'p' END 'A'
        END 'P'
        """
        assert import_text(text).definition("P") is not None


class TestDeepNesting:
    def test_block_within_block_round_trips(self):
        innermost = ProcessDefinition("Inner2")
        innermost.add_activity(Activity("Leaf", program="p"))
        middle = ProcessDefinition("Inner1")
        middle.add_activity(
            Activity("Mid", kind=ActivityKind.BLOCK, block=innermost)
        )
        outer = ProcessDefinition("P")
        outer.add_activity(
            Activity("Top", kind=ActivityKind.BLOCK, block=middle)
        )
        restored = import_text(export_definition(outer)).definition("P")
        top = restored.activity("Top")
        mid = top.block.activity("Mid")
        assert "Leaf" in mid.block.activities

    def test_nested_block_structures_exported_once(self):
        from repro.wfms.datatypes import StructureType

        inner = ProcessDefinition("Inner")
        inner.types.register(
            StructureType("Pair", [VariableDecl("x", DataType.LONG)])
        )
        inner.add_activity(
            Activity(
                "A",
                program="p",
                output_spec=[VariableDecl("P", "Pair")],
            )
        )
        outer = ProcessDefinition("P")
        outer.types.register(
            StructureType("Pair", [VariableDecl("x", DataType.LONG)])
        )
        outer.add_activity(
            Activity("Blk", kind=ActivityKind.BLOCK, block=inner)
        )
        text = export_definition(outer)
        assert text.count("STRUCTURE 'Pair'") == 1
        import_text(text)


class TestSemanticEdges:
    def test_duplicate_activity_in_block_rejected(self):
        text = """
        PROGRAM 'p' END 'p'
        PROCESS 'P'
          BLOCK 'B'
            PROGRAM_ACTIVITY 'X' PROGRAM 'p' END 'X'
            PROGRAM_ACTIVITY 'X' PROGRAM 'p' END 'X'
          END 'B'
        END 'P'
        """
        with pytest.raises(FDLSemanticError, match="duplicate"):
            import_text(text)

    def test_block_program_checked(self):
        text = """
        PROCESS 'P'
          BLOCK 'B'
            PROGRAM_ACTIVITY 'X' PROGRAM 'ghost' END 'X'
          END 'B'
        END 'P'
        """
        with pytest.raises(FDLSemanticError, match="ghost"):
            import_text(text)

    def test_duplicate_structure_rejected(self):
        text = """
        STRUCTURE 'S' 'a': LONG; END 'S'
        STRUCTURE 'S' 'a': LONG; END 'S'
        PROGRAM 'p' END 'p'
        PROCESS 'P' PROGRAM_ACTIVITY 'A' PROGRAM 'p' END 'A' END 'P'
        """
        with pytest.raises(FDLSemanticError, match="duplicate structure"):
            import_text(text)

    def test_unknown_member_type_rejected(self):
        doc = parse_document(
            "STRUCTURE 'S' 'a': 'Nope'; END 'S'\n"
            "PROGRAM 'p' END 'p'\n"
            "PROCESS 'P' PROGRAM_ACTIVITY 'A' PROGRAM 'p' END 'A' END 'P'\n"
        )
        from repro.fdl.validator import validate_document

        with pytest.raises(FDLSemanticError, match="Nope"):
            validate_document(doc)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "PROCESS 'P'",                      # unterminated
            "PROCESS 'P' PROGRAM_ACTIVITY END 'P'",  # missing name
            "PROGRAM 'p' END 'p' PROCESS 'P' CONTROL FROM 'a' 'b' END 'P'",
            "STRUCTURE 'S' 'a' LONG; END 'S'",  # missing colon
            "STRUCTURE 'S' 'a': LONG END 'S'",  # missing semicolon
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(FDLSyntaxError):
            parse_document(text)

    def test_error_carries_position(self):
        try:
            parse_document("PROGRAM 'a'\nEND 'b'")
        except FDLSyntaxError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected FDLSyntaxError")
