"""Tests for FDL validation, import, export and round-tripping."""

import pytest

from repro.errors import FDLSemanticError
from repro.fdl import export_definition, export_document, import_text
from repro.wfms import (
    Activity,
    ActivityKind,
    DataType,
    Engine,
    ProcessDefinition,
    StartCondition,
    StartMode,
    StructureType,
    VariableDecl,
)
from repro.wfms.model import PROCESS_INPUT, PROCESS_OUTPUT, StaffAssignment

VALID = """
PROGRAM 'work' DESCRIPTION "does work" END 'work'

PROCESS 'P'
  INPUT_CONTAINER
    'N': LONG;
  END
  OUTPUT_CONTAINER
    'Out': LONG;
  END
  PROGRAM_ACTIVITY 'A'
    PROGRAM 'work'
    OUTPUT_CONTAINER
      'X': LONG;
    END
  END 'A'
  PROGRAM_ACTIVITY 'B'
    PROGRAM 'work'
    INPUT_CONTAINER
      'Seed': LONG;
    END
  END 'B'
  CONTROL FROM 'A' TO 'B' WHEN "RC = 0"
  DATA FROM 'A' TO 'B' MAP 'X' TO 'Seed'
  DATA FROM 'A' TO SINK MAP 'X' TO 'Out'
END 'P'
"""


class TestImport:
    def test_valid_document_imports(self):
        result = import_text(VALID)
        assert [d.name for d in result.definitions] == ["P"]
        assert result.program_declarations == {"work": "does work"}
        definition = result.definition("P")
        assert set(definition.activities) == {"A", "B"}
        assert definition.control_connectors[0].condition.source == "RC = 0"

    def test_imported_definition_is_executable(self):
        result = import_text(VALID)
        engine = Engine()
        engine.register_program("work", lambda ctx: 0)
        result.register_into(engine)
        run = engine.run_process("P", {"N": 1})
        assert run.finished
        assert run.execution_order == ["A", "B"]

    def test_undeclared_program_rejected(self):
        text = """
        PROCESS 'P'
          PROGRAM_ACTIVITY 'A' PROGRAM 'ghost' END 'A'
        END 'P'
        """
        with pytest.raises(FDLSemanticError, match="ghost"):
            import_text(text)

    def test_unknown_subprocess_rejected(self):
        text = """
        PROCESS 'P'
          PROCESS_ACTIVITY 'A' PROCESS 'Ghost' END 'A'
        END 'P'
        """
        with pytest.raises(FDLSemanticError, match="Ghost"):
            import_text(text)

    def test_subprocess_defined_in_same_document_ok(self):
        text = """
        PROGRAM 'p' END 'p'
        PROCESS 'Child'
          PROGRAM_ACTIVITY 'X' PROGRAM 'p' END 'X'
        END 'Child'
        PROCESS 'Parent'
          PROCESS_ACTIVITY 'Call' PROCESS 'Child' END 'Call'
        END 'Parent'
        """
        result = import_text(text)
        assert {d.name for d in result.definitions} == {"Child", "Parent"}

    def test_duplicate_process_rejected(self):
        text = """
        PROGRAM 'p' END 'p'
        PROCESS 'P' PROGRAM_ACTIVITY 'A' PROGRAM 'p' END 'A' END 'P'
        PROCESS 'P' PROGRAM_ACTIVITY 'A' PROGRAM 'p' END 'A' END 'P'
        """
        with pytest.raises(FDLSemanticError, match="duplicate process"):
            import_text(text)

    def test_unknown_structure_rejected(self):
        text = """
        PROGRAM 'p' END 'p'
        PROCESS 'P'
          INPUT_CONTAINER 'x': 'Ghost'; END
          PROGRAM_ACTIVITY 'A' PROGRAM 'p' END 'A'
        END 'P'
        """
        with pytest.raises(FDLSemanticError, match="Ghost"):
            import_text(text)

    def test_control_unknown_activity_rejected(self):
        text = """
        PROGRAM 'p' END 'p'
        PROCESS 'P'
          PROGRAM_ACTIVITY 'A' PROGRAM 'p' END 'A'
          CONTROL FROM 'A' TO 'Ghost'
        END 'P'
        """
        with pytest.raises(FDLSemanticError, match="Ghost"):
            import_text(text)

    def test_cycle_rejected_at_definition_validation(self):
        text = """
        PROGRAM 'p' END 'p'
        PROCESS 'P'
          PROGRAM_ACTIVITY 'A' PROGRAM 'p' END 'A'
          PROGRAM_ACTIVITY 'B' PROGRAM 'p' END 'B'
          CONTROL FROM 'A' TO 'B'
          CONTROL FROM 'B' TO 'A'
        END 'P'
        """
        with pytest.raises(Exception, match="cycle"):
            import_text(text)

    def test_structures_register_in_dependency_order(self):
        text = """
        STRUCTURE 'Outer'
          'inner': 'Inner';
        END 'Outer'
        STRUCTURE 'Inner'
          'x': LONG;
        END 'Inner'
        PROGRAM 'p' END 'p'
        PROCESS 'P'
          INPUT_CONTAINER 'o': 'Outer'; END
          PROGRAM_ACTIVITY 'A' PROGRAM 'p' END 'A'
        END 'P'
        """
        result = import_text(text)
        definition = result.definition("P")
        assert definition.types.default_value(
            VariableDecl("o", "Outer")
        ) == {"inner": {"x": 0}}


def build_rich_definition():
    """A definition exercising every exportable feature."""
    d = ProcessDefinition(
        "Rich",
        version="3",
        description="everything at once",
        input_spec=[VariableDecl("N", DataType.LONG)],
        output_spec=[VariableDecl("Out", DataType.LONG)],
    )
    d.types.register(
        StructureType(
            "Pair",
            [VariableDecl("a", DataType.LONG), VariableDecl("b", DataType.STRING)],
        )
    )
    d.add_activity(
        Activity(
            "First",
            program="work",
            description="the first step",
            input_spec=[VariableDecl("In", DataType.LONG)],
            output_spec=[
                VariableDecl("X", DataType.LONG),
                VariableDecl("P", "Pair"),
                VariableDecl("Tags", DataType.STRING, array_size=2),
            ],
            exit_condition="RC = 0",
            priority=4,
            max_iterations=9,
        )
    )
    d.add_activity(
        Activity(
            "Second",
            program="work",
            start_condition=StartCondition.ANY,
            start_mode=StartMode.MANUAL,
            staff=StaffAssignment(
                roles=("clerk",), notify_after=30.0, notify_role="manager"
            ),
            input_spec=[VariableDecl("Seed", DataType.LONG)],
        )
    )
    inner = ProcessDefinition("Blk")
    inner.add_activity(Activity("InnerA", program="work"))
    inner.add_activity(Activity("InnerB", program="work"))
    inner.connect("InnerA", "InnerB", "RC = 0")
    d.add_activity(Activity("Blk", kind=ActivityKind.BLOCK, block=inner))
    d.connect("First", "Second", "RC = 0")
    d.connect("First", "Blk", "X > 2")
    d.map_data(PROCESS_INPUT, "First", [("N", "In")])
    d.map_data("First", "Second", [("X", "Seed")])
    d.map_data("First", PROCESS_OUTPUT, [("X", "Out")])
    return d


class TestRoundTrip:
    def test_export_parses_back(self):
        text = export_definition(build_rich_definition())
        result = import_text(text)
        assert result.definition("Rich") is not None

    def test_round_trip_preserves_structure(self):
        original = build_rich_definition()
        restored = import_text(export_definition(original)).definition("Rich")
        assert set(restored.activities) == set(original.activities)
        assert restored.version == original.version
        assert restored.description == original.description
        assert [
            (c.source, c.target, c.condition.source)
            for c in restored.control_connectors
        ] == [
            (c.source, c.target, c.condition.source)
            for c in original.control_connectors
        ]
        assert [
            (c.source, c.target, tuple(c.mappings))
            for c in restored.data_connectors
        ] == [
            (c.source, c.target, tuple(c.mappings))
            for c in original.data_connectors
        ]

    def test_round_trip_preserves_activity_details(self):
        original = build_rich_definition()
        restored = import_text(export_definition(original)).definition("Rich")
        first = restored.activity("First")
        assert first.exit_condition.source == "RC = 0"
        assert first.priority == 4
        assert first.max_iterations == 9
        assert [m.name for m in first.output_spec] == ["X", "P", "Tags"]
        assert first.output_spec[2].array_size == 2
        second = restored.activity("Second")
        assert second.start_condition is StartCondition.ANY
        assert second.start_mode is StartMode.MANUAL
        assert second.staff.roles == ("clerk",)
        assert second.staff.notify_after == 30.0
        blk = restored.activity("Blk")
        assert blk.kind is ActivityKind.BLOCK
        assert set(blk.block.activities) == {"InnerA", "InnerB"}

    def test_double_round_trip_is_stable(self):
        once = export_definition(build_rich_definition())
        twice = export_document(
            import_text(once).definitions
        )
        assert once == twice

    def test_round_trip_execution_equivalence(self):
        engine1, engine2 = Engine(), Engine()
        for engine in (engine1, engine2):
            engine.register_program("work", lambda ctx: 0)

        original = ProcessDefinition("Simple")
        original.add_activity(Activity("A", program="work"))
        original.add_activity(Activity("B", program="work"))
        original.connect("A", "B", "RC = 0")
        engine1.register_definition(original)
        restored = import_text(export_definition(original)).definition(
            "Simple"
        )
        engine2.register_definition(restored)
        r1 = engine1.run_process("Simple")
        r2 = engine2.run_process("Simple")
        assert r1.execution_order == r2.execution_order
        assert r1.state == r2.state

    def test_exported_document_declares_programs(self):
        text = export_definition(build_rich_definition())
        assert "PROGRAM 'work'" in text
