"""Unit tests for the FDL lexer and parser."""

import pytest

from repro.errors import FDLSyntaxError
from repro.fdl.lexer import tokenize
from repro.fdl.parser import parse_document


def toks(text):
    return [(t.kind, t.value) for t in tokenize(text) if t.kind != "EOF"]


class TestLexer:
    def test_names_strings_numbers(self):
        assert toks("'Travel' \"hi\" 42") == [
            ("NAME", "Travel"),
            ("STRING", "hi"),
            ("NUMBER", 42),
        ]

    def test_keywords_case_insensitive(self):
        assert toks("process End") == [
            ("KEYWORD", "PROCESS"),
            ("KEYWORD", "END"),
        ]

    def test_punctuation(self):
        assert toks("':' ; ( )")[1:] == [
            ("SEMI", ";"),
            ("LPAREN", "("),
            ("RPAREN", ")"),
        ]

    def test_comments_skipped(self):
        assert toks("PROCESS // a comment\n'X'") == [
            ("KEYWORD", "PROCESS"),
            ("NAME", "X"),
        ]

    def test_escaped_quotes_in_strings(self):
        assert toks(r'"say \"hi\""') == [("STRING", 'say "hi"')]

    def test_unknown_bare_word_rejected(self):
        with pytest.raises(FDLSyntaxError, match="quoted"):
            toks("Travel")

    def test_unterminated_name(self):
        with pytest.raises(FDLSyntaxError, match="unterminated"):
            toks("'Travel")

    def test_unterminated_string(self):
        with pytest.raises(FDLSyntaxError, match="unterminated"):
            toks('"Travel')

    def test_line_numbers(self):
        tokens = list(tokenize("PROCESS\n'X'"))
        assert tokens[0].line == 1
        assert tokens[1].line == 2


SAMPLE = """
STRUCTURE 'Address'
  'City': STRING;
  'Zip':  LONG;
END 'Address'

PROGRAM 'book'
  DESCRIPTION "books something"
END 'book'

PROCESS 'Travel'
  DESCRIPTION "travel booking"
  VERSION 2
  INPUT_CONTAINER
    'Where': 'Address';
  END
  OUTPUT_CONTAINER
    'Result': LONG;
  END

  PROGRAM_ACTIVITY 'Book'
    PROGRAM 'book'
    START AUTOMATIC WHEN ALL CONNECTORS TRUE
    EXIT WHEN "RC = 0"
    PRIORITY 3
    MAX_ITERATIONS 5
    DONE_BY ROLE 'clerk' NOTIFY AFTER 10 TO ROLE 'manager'
    INPUT_CONTAINER
      'Dest': 'Address';
    END
    OUTPUT_CONTAINER
      'Price': LONG;
      'Tags': STRING(3);
    END
  END 'Book'

  PROGRAM_ACTIVITY 'Pay'
    PROGRAM 'book'
    START MANUAL WHEN ANY CONNECTORS TRUE
  END 'Pay'

  CONTROL FROM 'Book' TO 'Pay' WHEN "RC = 0"
  DATA FROM SOURCE TO 'Book' MAP 'Where' TO 'Dest'
  DATA FROM 'Book' TO SINK MAP 'Price' TO 'Result'
END 'Travel'
"""


class TestParser:
    def test_sample_parses(self):
        doc = parse_document(SAMPLE)
        assert [s.name for s in doc.structures] == ["Address"]
        assert [p.name for p in doc.programs] == ["book"]
        process = doc.process("Travel")
        assert process.description == "travel booking"
        assert process.version == "2"
        assert [m.name for m in process.body.input_members] == ["Where"]
        assert process.body.input_members[0].is_structure

    def test_activity_clauses(self):
        doc = parse_document(SAMPLE)
        book = doc.process("Travel").body.activities[0]
        assert book.kind == "PROGRAM"
        assert book.program == "book"
        assert book.exit_condition == "RC = 0"
        assert book.priority == 3
        assert book.max_iterations == 5
        assert book.staff.roles == ("clerk",)
        assert book.staff.notify_after == 10.0
        assert book.staff.notify_role == "manager"
        assert [m.name for m in book.output_members] == ["Price", "Tags"]
        assert book.output_members[1].array_size == 3

    def test_manual_any_start(self):
        doc = parse_document(SAMPLE)
        pay = doc.process("Travel").body.activities[1]
        assert pay.start_mode == "MANUAL"
        assert pay.start_condition == "ANY"

    def test_connectors(self):
        body = parse_document(SAMPLE).process("Travel").body
        assert len(body.controls) == 1
        assert body.controls[0].condition == "RC = 0"
        assert body.datas[0].from_process_input
        assert body.datas[1].to_process_output
        assert body.datas[0].mappings == [("Where", "Dest")]

    def test_block_parses_nested_body(self):
        text = """
        PROGRAM 'p' END 'p'
        PROCESS 'P'
          BLOCK 'Fwd'
            PROGRAM_ACTIVITY 'A'
              PROGRAM 'p'
            END 'A'
            PROGRAM_ACTIVITY 'B'
              PROGRAM 'p'
            END 'B'
            CONTROL FROM 'A' TO 'B'
            EXIT WHEN "RC = 0"
          END 'Fwd'
        END 'P'
        """
        doc = parse_document(text)
        block = doc.process("P").body.activities[0]
        assert block.kind == "BLOCK"
        assert [a.name for a in block.body.activities] == ["A", "B"]
        assert block.exit_condition == "RC = 0"

    def test_mismatched_end_rejected(self):
        with pytest.raises(FDLSyntaxError, match="does not close"):
            parse_document("PROGRAM 'a' END 'b'")

    def test_data_without_map_rejected(self):
        text = """
        PROGRAM 'p' END 'p'
        PROCESS 'P'
          PROGRAM_ACTIVITY 'A' PROGRAM 'p' END 'A'
          PROGRAM_ACTIVITY 'B' PROGRAM 'p' END 'B'
          DATA FROM 'A' TO 'B'
        END 'P'
        """
        with pytest.raises(FDLSyntaxError, match="MAP"):
            parse_document(text)

    def test_done_by_requires_role_or_user(self):
        text = """
        PROGRAM 'p' END 'p'
        PROCESS 'P'
          PROGRAM_ACTIVITY 'A' PROGRAM 'p' DONE_BY END 'A'
        END 'P'
        """
        with pytest.raises(FDLSyntaxError, match="DONE_BY"):
            parse_document(text)

    def test_top_level_garbage_rejected(self):
        with pytest.raises(FDLSyntaxError):
            parse_document("CONTROL FROM 'a' TO 'b'")
