"""Broker-kill chaos: SIGKILL the broker mid-traffic, restart it over
the same durable directory, and hold the exactly-once line.

Two families of seeded schedules, every one run twice with
bit-identical logical traces:

* **ledger seeds** — a scripted payment ledger drives the bus while an
  in-process ``broker.crash`` rule ``os._exit(137)``\\ s the broker
  *between journaling an op and replying* (the worst window;
  indistinguishable from SIGKILL).  The driver restarts the broker on
  the same port and ``retry_pending()``\\ s — the replayed op id must
  hit the recovered dedup table, never double-apply.  At the end,
  every payment is accounted for exactly once across acks, live
  queues and the DLQ;
* **saga seeds** — the distributed workflow demo (requester + worker
  saga over real sockets) with a client-side node crash; at the crash
  point the driver ``kill()``\\ s (SIGKILL) the broker, restarts it,
  rebuilds the crashed nodes from their journals, and the saga still
  completes with the request served exactly once.

Why two runs of one seed are bit-identical despite OS processes dying:
all bus traffic is blocking request/reply from a single driver thread,
so every broker incarnation sees the same frame order; the crash rules
are seeded schedules over that order; replay after restart applies
journaled *effects* without consulting any RNG.  Session nonces and
op ids differ between runs, so comparisons use the normalized state
(queues, stats, epoch) and the logical outcome/fault traces.
"""

from __future__ import annotations

import pytest

from repro.errors import ConnectionLost, QueueOverflow
from repro.net import BrokerProcess, SocketBus
from repro.resilience.faults import (
    FaultInjector,
    FaultRule,
    InjectedCrash,
    chaos_rules,
)
from repro.wfms.distributed import run_cluster
from repro.workloads.distributed_demo import (
    configure_requester,
    configure_worker,
    make_requester,
    make_worker,
)

LEDGER_SEEDS = range(4)
SAGA_SEEDS = range(4)


class DurableBroker:
    """A restartable broker process pinned to one durable directory
    and (after first start) one port."""

    def __init__(self, directory, rules, seed, **server_kwargs):
        self.directory = str(directory)
        self.rules = rules
        self.seed = seed
        self.server_kwargs = server_kwargs
        self.port = 0
        self.proc: BrokerProcess | None = None
        self.bounces = 0

    def start(self) -> None:
        self.proc = BrokerProcess(
            rules=self.rules,
            seed=self.seed,
            durable_dir=self.directory,
            port=self.port,
            **self.server_kwargs,
        )
        self.port = self.proc.address[1]

    def restart_after_crash(self) -> None:
        """The injected ``broker.crash`` killed it from the inside
        (``os._exit(137)``); reap the corpse and start a successor."""
        assert self.proc is not None
        self.proc.wait(10.0)
        assert not self.proc.alive()
        self.start()
        self.bounces += 1

    def kill_and_restart(self) -> None:
        """External SIGKILL — no flushes, no goodbyes — then restart."""
        assert self.proc is not None
        self.proc.kill()
        self.start()
        self.bounces += 1

    def close(self) -> None:
        if self.proc is not None:
            self.proc.close()


def normalized(snapshot) -> dict:
    """The cross-run comparable slice of a broker snapshot: queue
    stats (minus the documented volatile delivery drift), epoch and
    dedup accounting — no ports, pids, session nonces or paths."""
    queues = {}
    for name, stats in snapshot["queues"].items():
        stats = dict(stats)
        stats.pop("delivered", None)
        stats.pop("redelivered", None)
        queues[name] = stats
    return {
        "queues": queues,
        "epoch": snapshot["epoch"],
        "dedup_hits": snapshot["dedup_hits"],
    }


# ---------------------------------------------------------------------------
# ledger seeds: in-flight broker.crash between journal and reply
# ---------------------------------------------------------------------------


def run_ledger(seed, root):
    """One scripted ledger run; returns (outcomes, normalized state,
    accounting, bounces, final-incarnation fault trace)."""
    rules = [
        FaultRule(
            "broker.crash",
            "crash",
            match="send",
            # fire on the first send once the op counter passes the
            # seed-specific threshold — at most once per incarnation,
            # so every send past the threshold kills one broker
            schedule=frozenset(range(2 + seed, 64 + seed)),
            max_fires=1,
        )
    ]
    broker = DurableBroker(
        root / "broker", rules, seed, queue_capacity=4
    )
    broker.start()
    outcomes: list = []
    bus = SocketBus(
        "127.0.0.1",
        broker.port,
        name="ledger",
        connect_retries=4,
        backoff=0.02,
    )
    try:

        def step(label, fn, *args):
            """One ledger op, surviving any number of broker deaths:
            on ConnectionLost restart the broker and replay the same
            op id via retry_pending."""
            attempt = 0
            while True:
                try:
                    value = fn(*args) if attempt == 0 else bus.retry_pending()
                except ConnectionLost:
                    attempt += 1
                    if attempt > 8:
                        pytest.fail("ledger seed %d: broker kept dying" % seed)
                    broker.restart_after_crash()
                    outcomes.append(["bounce", broker.bounces])
                    continue
                except QueueOverflow:
                    outcomes.append([label, "overflow"])
                    return None
                outcomes.append([label, value])
                return value

        for n in range(4):
            step("send-%d" % n, bus.send, "pay", {"n": n})
        step("spill", bus.send, "pay", {"n": 4})  # capacity 4 -> DLQ
        taken = step("recv-a", bus.receive, "pay")
        step("ack-a", bus.ack, "pay", taken[0])
        acked = [taken[1]["n"]]
        step("send-5", bus.send, "pay", {"n": 5})
        taken = step("recv-b", bus.receive, "pay")
        step("poison", bus.dead_letter, "pay", taken[0], "audit-hold")
        poisoned = [taken[1]["n"]]
        step("drain", lambda: bus.dlq_drain("pay", requeue=True))

        snap = bus.snapshot()
        state = normalized(snap)
        trace = bus.injector_trace()

        # exactly-once accounting: every payment 0..5 lands in exactly
        # one of {acked, still queued (incl. requeued DLQ spill/poison)}
        remaining = []
        while True:
            taken = bus.receive("pay")
            if taken is None:
                break
            remaining.append(taken[1]["n"])
        assert sorted(acked + remaining) == list(range(6)), (
            "ledger seed %d lost or duplicated payments" % seed
        )
        accounting = {
            "acked": acked,
            "poisoned": poisoned,
            "remaining": sorted(remaining),
        }
        assert bus.dlq_entries("pay") == []  # drained, durably
        return outcomes, state, accounting, broker.bounces, trace
    finally:
        bus.close()
        broker.close()


def ledger_drain(fn_bus, queue):
    rows = []
    while True:
        taken = fn_bus.receive(queue)
        if taken is None:
            return rows
        rows.append(taken)


@pytest.mark.parametrize("seed", LEDGER_SEEDS)
def test_ledger_survives_repeated_broker_kills(seed, tmp_path):
    outcomes, state, accounting, bounces, trace = run_ledger(
        seed, tmp_path / "a"
    )

    # the broker actually died mid-traffic, at least once, and every
    # completed op survived: no payment lost, none double-applied
    assert bounces >= 1
    assert any(entry[0] == "bounce" for entry in outcomes)
    assert state["epoch"] == 1 + bounces
    assert state["dedup_hits"] >= 1  # the interrupted op was replayed
    # 5 direct sends (the spill was rejected at admission) + 2
    # requeued by the drain
    assert state["queues"]["pay"]["sent"] == 7
    assert state["queues"]["pay"]["overflowed"] == 1
    assert state["queues"]["pay"]["dead_lettered"] == 1

    # bit-identical across a second run of the same schedule
    outcomes2, state2, accounting2, bounces2, trace2 = run_ledger(
        seed, tmp_path / "b"
    )
    assert outcomes == outcomes2
    assert state == state2
    assert accounting == accounting2
    assert bounces == bounces2
    assert trace == trace2


# ---------------------------------------------------------------------------
# saga seeds: external SIGKILL at the node-crash point
# ---------------------------------------------------------------------------


def run_saga(seed, directory):
    """One saga run with a broker SIGKILL mid-workflow; returns
    (result, served, crash trace, normalized broker state)."""
    directory.mkdir(parents=True, exist_ok=True)
    crash_injector = FaultInjector(
        [FaultRule("node.pump", "crash", schedule=frozenset({3 + seed % 3}))],
        seed=seed,
    )
    # half the seeds also run bus-level chaos (drop/duplicate real
    # socket sends) on top of the kills
    bus_rules = (
        chaos_rules(drop_p=0.2, duplicate_p=0.2, max_fires=2)
        if seed >= 2
        else None
    )
    broker = DurableBroker(directory / "broker", bus_rules, seed)
    broker.start()

    def make(name):
        return SocketBus(
            "127.0.0.1",
            broker.port,
            name=name,
            connect_retries=6,
            backoff=0.02,
        )

    worker_bus, front_bus, control = make("worker"), make("front"), make("control")
    try:
        worker = make_worker(
            worker_bus,
            journal_path=str(directory / "worker.jsonl"),
            fault_injector=crash_injector,
        )
        front = make_requester(
            front_bus,
            journal_path=str(directory / "front.jsonl"),
            fault_injector=crash_injector,
            request_timeout=5.0,
            request_retries=8,
        )
        iid = front.engine.start_process("Front", {"N": 7})
        killed = False
        for __ in range(12):
            try:
                run_cluster([worker, front], watch=[(front, iid)])
                break
            except InjectedCrash:
                if not killed:
                    # the node crash is the seeded, deterministic
                    # instant: SIGKILL the broker with the saga's
                    # messages in its queues, then restart it
                    broker.kill_and_restart()
                    killed = True
                if worker.engine.crashed:
                    worker.rebuild(configure_worker)
                if front.engine.crashed:
                    front.rebuild(configure_requester)
        else:
            pytest.fail("saga did not converge (seed %d)" % seed)
        assert killed, "the node-crash schedule never fired"
        result = front.engine.output(iid)["Result"]
        served = sorted(
            i.instance_id
            for i in worker.engine.navigator.instances()
            if i.instance_id.startswith("req/")
        )
        state = normalized(control.snapshot())
        return result, served, crash_injector.trace(), state
    finally:
        for bus in (worker_bus, front_bus, control):
            bus.close()
        broker.close()


@pytest.mark.parametrize("seed", SAGA_SEEDS)
def test_saga_survives_broker_sigkill(seed, tmp_path):
    result, served, crash_trace, state = run_saga(seed, tmp_path / "a")

    # the saga guarantee across a hard broker death: the right answer,
    # served exactly once
    assert result == 15  # 2*7 + 1
    assert served == ["req/front/pi-0001/CallDouble"]
    assert state["epoch"] == 2  # exactly one kill + restart

    result2, served2, crash_trace2, state2 = run_saga(seed, tmp_path / "b")
    assert (result, served) == (result2, served2)
    assert crash_trace == crash_trace2
    assert state == state2
