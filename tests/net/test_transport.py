"""Socket transport behaviour: parity, admission control, recovery.

The contract under test: a :class:`SocketBus` against a live broker is
observationally identical to the in-memory :class:`MessageBus` — same
values, same typed errors, same stats — plus the broker-only concerns
(bounded queues, load shedding, connection resets) fail in the typed,
recoverable ways DESIGN.md §14 promises.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ConnectionLost,
    LoadShedded,
    NetError,
    QueueOverflow,
    WorkflowError,
)
from repro.net import BusServerThread, SocketBus
from repro.resilience.faults import FaultInjector, FaultRule
from repro.resilience.policies import CircuitBreaker
from repro.wfms.messaging import MessageBus


@pytest.fixture()
def broker():
    with BusServerThread() as server:
        yield server


def connect(broker, **kwargs):
    host, port = broker.address
    return SocketBus(host, port, **kwargs)


# ---------------------------------------------------------------------------
# parity with the in-memory bus
# ---------------------------------------------------------------------------


def _exercise(bus):
    """One scripted op sequence; returns every observable result."""
    log = []
    log.append(bus.send("node:w", {"n": 1}, {"trace-id": "t1"}))
    log.append(bus.send("node:w", {"n": 2}))
    log.append(bus.receive_with_headers("node:w"))
    log.append(bus.receive("node:w"))
    log.append(bus.receive("node:w"))  # empty -> None
    msg_id = log[2][0]
    bus.nack("node:w", msg_id)
    log.append(bus.receive("node:w"))  # redelivery
    log.append(bus.deliveries("node:w", msg_id))
    bus.ack("node:w", msg_id)
    log.append(bus.dead_letter("node:w", log[3][0], "poison"))
    log.append(bus.depth("node:w"))
    log.append(bus.queues())
    log.append(bus.stats("node:w"))
    log.append(bus.dlq_entries("node:w"))
    log.append(bus.dlq_drain("node:w", requeue=True))
    log.append(bus.recover_in_flight())
    log.append(bus.stats())
    return log


def test_socket_bus_matches_in_memory_bus(broker):
    with connect(broker, name="parity") as socket_bus:
        over_wire = _exercise(socket_bus)
    in_memory = _exercise(MessageBus())
    assert over_wire == in_memory


def test_typed_errors_cross_the_wire(broker):
    with connect(broker) as bus:
        with pytest.raises(WorkflowError, match="unknown message"):
            bus.ack("node:w", "m999999")
        msg_id = bus.send("node:w", {"n": 1})
        with pytest.raises(WorkflowError, match="was not in flight"):
            bus.ack("node:w", msg_id)  # never received


def test_headers_roundtrip_verbatim(broker):
    headers = {
        "trace-id": "0123456789abcdef",
        "span-id": "fedcba98",
        "request-id": "req/front/pi-0001/CallDouble",
    }
    with connect(broker) as bus:
        bus.send("node:w", {"payload": [1, 2, {"deep": None}]}, headers)
        msg_id, body, got = bus.receive_with_headers("node:w")
        assert got == headers
        assert body == {"payload": [1, 2, {"deep": None}]}


# ---------------------------------------------------------------------------
# admission control: bounded queues and load shedding
# ---------------------------------------------------------------------------


def test_overflow_rejects_and_dead_letters():
    with BusServerThread(queue_capacity=2) as server:
        with connect(server) as bus:
            bus.send("node:w", {"n": 1})
            bus.send("node:w", {"n": 2})
            with pytest.raises(QueueOverflow) as info:
                bus.send("node:w", {"n": 3}, {"request-id": "r3"})
            assert info.value.queue == "node:w"
            # nack-on-overflow: the message fed the dead-letter path,
            # headers intact plus the rejection reason
            [row] = bus.dlq_entries("node:w")
            assert row["body"] == {"n": 3}
            assert row["headers"]["request-id"] == "r3"
            assert "overflow" in row["headers"]["dead-letter-reason"]
            # the queue itself never grew past its bound
            assert bus.depth("node:w") == 2
            assert bus.stats("node:w")["overflowed"] == 1
            # an operator drain replays the rejected message
            assert bus.dlq_drain("node:w") == 1
            assert bus.depth("node:w") == 3


def test_dlq_sends_are_exempt_from_capacity():
    with BusServerThread(queue_capacity=1) as server:
        with connect(server) as bus:
            for n in range(4):
                try:
                    bus.send("node:w", {"n": n})
                except QueueOverflow:
                    pass
            assert bus.depth("node:w") == 1
            assert bus.depth("dlq:node:w") == 3  # every rejection kept


def test_per_queue_capacity_override():
    with BusServerThread(
        queue_capacity=1, capacities={"node:big": 3}
    ) as server:
        with connect(server) as bus:
            for n in range(3):
                bus.send("node:big", {"n": n})  # override honoured
            bus.send("node:small", {"n": 1})
            with pytest.raises(QueueOverflow):
                bus.send("node:small", {"n": 2})  # default bound of 1


def test_breaker_sheds_after_sustained_overflow():
    with BusServerThread(
        queue_capacity=1,
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=2, reset_after=3.0
        ),
    ) as server:
        with connect(server) as bus:
            bus.send("node:w", {"n": 0})
            for __ in range(2):
                with pytest.raises(QueueOverflow):
                    bus.send("node:w", {"n": 1})
            # breaker open: rejected up front, nothing stored anywhere
            dlq_before = len(bus.dlq_entries("node:w"))
            with pytest.raises(LoadShedded) as info:
                bus.send("node:w", {"n": 2})
            assert info.value.queue == "node:w"
            assert len(bus.dlq_entries("node:w")) == dlq_before
            assert bus.stats("node:w")["shed"] == 1
            assert bus.snapshot()["breakers"]["node:w"] == "open"
            # the admission clock advances per decision: after the
            # cooldown a half-open trial admits again
            bus.ack("node:w", bus.receive("node:w")[0])
            for __ in range(4):
                try:
                    bus.send("node:w", {"n": 3})
                    break
                except (LoadShedded, QueueOverflow):
                    continue
            assert bus.depth("node:w") == 1


# ---------------------------------------------------------------------------
# connection lifecycle
# ---------------------------------------------------------------------------


def test_injected_reset_is_retried_transparently():
    injector = FaultInjector(
        [FaultRule("net.connection", "reset", schedule=frozenset({2, 4}))],
        seed=3,
    )
    with BusServerThread(fault_injector=injector) as server:
        with connect(server, name="flaky") as bus:
            for n in range(5):
                bus.send("node:w", {"n": n})
            # every send landed exactly once despite two resets
            assert bus.depth("node:w") == 5
            assert bus.reconnects == 2
            assert injector.trace() == [
                ("net.connection", "flaky", "reset", 2),
                ("net.connection", "flaky", "reset", 4),
            ]


def test_reconnect_budget_exhaustion_raises_connection_lost():
    server = BusServerThread()
    bus = connect(server, connect_retries=2, backoff=0.01)
    server.close()
    with pytest.raises(ConnectionLost, match="exhausted"):
        bus.ping()
    bus.close()
    with pytest.raises(NetError, match="closed"):
        bus.ping()


def test_connect_to_nothing_raises_connection_lost():
    with pytest.raises(ConnectionLost, match="could not connect"):
        SocketBus("127.0.0.1", 1, connect_retries=2, backoff=0.01)


def test_in_flight_recovery_over_the_wire(broker):
    """A consumer crash leaves messages in flight; a fresh connection
    recovers them for redelivery — state lives in the broker, not the
    connection."""
    with connect(broker, name="consumer-1") as bus:
        bus.send("node:w", {"n": 1})
        bus.receive("node:w")  # in flight, never acked
    with connect(broker, name="consumer-2") as bus:
        assert bus.receive("node:w") is None  # still marked in flight
        assert bus.recover_in_flight("node:w") == 1
        msg_id, body = bus.receive("node:w")
        assert body == {"n": 1}
        assert bus.deliveries("node:w", msg_id) == 2


# ---------------------------------------------------------------------------
# chaos rules behind the transport
# ---------------------------------------------------------------------------


def test_injector_installed_over_the_wire_drives_bus_sends():
    rules = [
        FaultRule("bus.send", "drop", schedule=frozenset({2})),
        FaultRule("bus.send", "duplicate", schedule=frozenset({3})),
    ]
    with BusServerThread() as server:
        with connect(server) as bus:
            bus.install_injector(FaultInjector(rules, seed=11))
            ids = [bus.send("node:w", {"n": n}) for n in range(3)]
            assert len(ids) == 3  # drop still returns an id
            assert bus.depth("node:w") == 3  # 3 - 1 dropped + 1 twin
            assert bus.injector_trace() == [
                ("bus.send", "node:w", "drop", 2),
                ("bus.send", "node:w", "duplicate", 3),
            ]
            stats = bus.stats("node:w")
            assert stats["dropped"] == 1
            assert stats["duplicated"] == 1


def test_snapshot_reports_connections_and_totals(broker):
    with connect(broker, name="alpha") as a, connect(broker, name="beta") as b:
        a.send("node:w", {"n": 1})
        snapshot = b.snapshot()
        names = {row["name"] for row in snapshot["connections"]}
        assert {"alpha", "beta"} <= names
        assert snapshot["accepted_total"] >= 2
        assert snapshot["queues"]["node:w"]["depth"] == 1
        assert snapshot["queues"]["node:w"]["sent"] == 1


def test_server_refuses_garbage_bytes(broker):
    import socket as socketlib

    host, port = broker.address
    with socketlib.create_connection((host, port), timeout=5) as raw:
        raw.sendall((2**31).to_bytes(4, "big"))
        reply = raw.recv(65536)
        assert b"frame" in reply
        assert raw.recv(65536) == b""  # then hangs up
