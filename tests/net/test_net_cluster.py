"""Workflow clusters over the real socket transport.

The tentpole claim of this subsystem: `WorkflowNode` code is
transport-agnostic.  Every test here runs the *existing* distributed
demo topology (Front calls Double remotely, adds one) with the only
change being the bus object handed to the nodes — a
:class:`SocketBus` per node against one broker instead of a shared
in-memory :class:`MessageBus`.  Request/reply, crash/rebuild with
in-flight recovery, and exactly-once semantics must hold unchanged.
"""

from __future__ import annotations

import pytest

from repro.net import BrokerProcess, BusServerThread, SocketBus
from repro.wfms.distributed import run_cluster
from repro.workloads.distributed_demo import (
    configure_requester,
    configure_worker,
    make_requester,
    make_worker,
)


@pytest.fixture()
def broker():
    with BusServerThread() as server:
        yield server


def connect(broker, name):
    host, port = broker.address
    return SocketBus(host, port, name=name)


def test_request_reply_over_sockets(broker):
    with connect(broker, "worker") as worker_bus, connect(
        broker, "front"
    ) as front_bus:
        worker = make_worker(worker_bus)
        front = make_requester(front_bus)
        iid = front.engine.start_process("Front", {"N": 7})
        run_cluster([worker, front], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 15  # 2*7 + 1


def test_many_requests_each_served_exactly_once(broker):
    with connect(broker, "worker") as worker_bus, connect(
        broker, "front"
    ) as front_bus:
        worker = make_worker(worker_bus)
        front = make_requester(front_bus)
        iids = [
            front.engine.start_process("Front", {"N": n}) for n in range(5)
        ]
        run_cluster([worker, front], watch=[(front, iid) for iid in iids])
        for n, iid in enumerate(iids):
            assert front.engine.output(iid)["Result"] == 2 * n + 1
        served = [
            i.instance_id
            for i in worker.engine.navigator.instances()
            if i.instance_id.startswith("req/")
        ]
        assert len(served) == len(set(served)) == 5


def test_node_crash_rebuild_and_in_flight_recovery(broker, tmp_path):
    """Crash the worker mid-conversation: its SocketBus survives, the
    broker recovers the in-flight request for redelivery, the rebuilt
    engine replays its journal and serves exactly once."""
    with connect(broker, "worker") as worker_bus, connect(
        broker, "front"
    ) as front_bus:
        worker = make_worker(
            worker_bus, journal_path=str(tmp_path / "worker.jsonl")
        )
        front = make_requester(
            front_bus,
            journal_path=str(tmp_path / "front.jsonl"),
            request_timeout=5.0,
            request_retries=6,
        )
        iid = front.engine.start_process("Front", {"N": 21})
        # let the request land on the worker, then tear the worker
        for __ in range(3):
            front.pump()
            worker.pump()
        worker.crash()  # recovers in-flight messages over the wire
        worker.rebuild(configure_worker)
        run_cluster([worker, front], watch=[(front, iid)])
        assert front.engine.output(iid)["Result"] == 43
        served = [
            i.instance_id
            for i in worker.engine.navigator.instances()
            if i.instance_id.startswith("req/")
        ]
        assert served == ["req/front/pi-0001/CallDouble"]


def test_cluster_against_broker_in_another_process(tmp_path):
    """The full topology with the broker in its own OS process — two
    engines, three processes, real sockets end to end."""
    with BrokerProcess() as broker:
        host, port = broker.address
        with SocketBus(host, port, name="worker") as worker_bus, SocketBus(
            host, port, name="front"
        ) as front_bus:
            worker = make_worker(worker_bus)
            front = make_requester(front_bus)
            iid = front.engine.start_process("Front", {"N": 4})
            run_cluster([worker, front], watch=[(front, iid)])
            assert front.engine.output(iid)["Result"] == 9
    assert not broker.alive()


def test_rebuild_reuses_the_same_connection(broker, tmp_path):
    """rebuild() constructs a fresh engine but keeps the node's bus —
    no reconnect storm, no lost queue state."""
    with connect(broker, "worker") as worker_bus:
        worker = make_worker(
            worker_bus, journal_path=str(tmp_path / "w.jsonl")
        )
        worker.crash()
        worker.rebuild(configure_worker)
        assert worker.bus is worker_bus
        assert worker_bus.reconnects == 0
