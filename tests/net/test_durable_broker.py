"""The durable broker end to end: restart preservation, op-level
idempotency, session resume, heartbeat reaping, and the monitor view.

These tests run the real :class:`BusServerThread` + :class:`SocketBus`
stack against a durable directory and bounce the broker — cleanly
(context-manager close) and abruptly (injected ``broker.crash``) —
asserting the DESIGN.md §15 contract: nothing acknowledged is lost,
nothing replayed is double-applied, consumers keep their in-flight
claims across the restart.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ConnectionLost, NetError, QueueOverflow
from repro.net import BusServerThread, SocketBus
from repro.resilience.faults import FaultInjector, FaultRule
from repro.tools.monitor import render_net


def connect(address, **kwargs):
    host, port = address
    kwargs.setdefault("connect_retries", 5)
    kwargs.setdefault("backoff", 0.02)
    return SocketBus(host, port, **kwargs)


# ---------------------------------------------------------------------------
# restart preservation
# ---------------------------------------------------------------------------


def test_clean_restart_preserves_queues_stats_and_ids(tmp_path):
    durable = str(tmp_path / "broker")
    with BusServerThread(durable_dir=durable, name="d") as server:
        with connect(server.address, name="producer") as bus:
            assert bus.server_info["durable"] is True
            assert bus.server_info["epoch"] == 1
            for n in range(3):
                bus.send("orders", {"n": n}, {"k": "v%d" % n})
            msg_id, __ = bus.receive("orders")
            bus.ack("orders", msg_id)
            before = bus.snapshot()["queues"]

    with BusServerThread(durable_dir=durable, name="d") as server:
        with connect(server.address, name="checker") as bus:
            assert bus.server_info["epoch"] == 2
            snap = bus.snapshot()
            after = snap["queues"]
            # delivered/redelivered drift in the replay window is the
            # documented exception; everything else matches exactly
            for stats in (before["orders"], after["orders"]):
                stats.pop("delivered", None)
                stats.pop("redelivered", None)
            assert after == before
            assert snap["durable"]["recovery"]["replayed_records"] == 4
            # the id sequence continues past recovered messages
            fresh = bus.send("orders", {"n": 99})
            taken = {bus.receive("orders")[0] for __ in range(3)}
            assert fresh not in taken or len(taken) == 3


def test_dlq_survives_restart_and_drains_over_the_wire(tmp_path):
    durable = str(tmp_path / "broker")
    with BusServerThread(durable_dir=durable, queue_capacity=2) as server:
        with connect(server.address, name="producer") as bus:
            bus.send("jobs", {"n": 0})
            bus.send("jobs", {"n": 1}, {"origin": "test"})
            with pytest.raises(QueueOverflow):
                bus.send("jobs", {"n": 2}, {"origin": "spill"})
            msg_id, __ = bus.receive("jobs")
            bus.dead_letter("jobs", msg_id, "poison")
            assert len(bus.dlq_entries("jobs")) == 2

    with BusServerThread(durable_dir=durable, queue_capacity=2) as server:
        with connect(server.address, name="operator") as bus:
            entries = bus.dlq_entries("jobs")
            reasons = sorted(
                row["headers"]["dead-letter-reason"] for row in entries
            )
            assert reasons == ["poison", "queue overflow: depth 2 at capacity 2"]
            origins = sorted(
                row["headers"].get("origin", "") for row in entries
            )
            assert origins == ["", "spill"]
            # drainable over the wire — and the drain itself is journaled
            assert bus.dlq_drain("jobs", requeue=True) == 2
            assert bus.depth("jobs") == 3

    with BusServerThread(durable_dir=durable, queue_capacity=2) as server:
        with connect(server.address, name="verifier") as bus:
            assert bus.depth("jobs") == 3
            assert bus.dlq_entries("jobs") == []


# ---------------------------------------------------------------------------
# op-level idempotency (satellite 1: the reconnect double-apply window)
# ---------------------------------------------------------------------------


def test_reply_loss_between_apply_and_reply_does_not_double_apply(tmp_path):
    """Regression for the PR 8 hole: a connection reset *after* the
    broker applied an op but *before* the reply frame went out made
    the client replay the op — and sends double-applied.  With op ids
    the replay hits the broker's dedup table instead."""
    with BusServerThread(durable_dir=str(tmp_path / "b")) as server:
        with connect(server.address, name="flaky") as bus:
            bus.install_injector(
                FaultInjector(
                    [
                        FaultRule(
                            "net.reply",
                            "reset",
                            match="flaky",
                            schedule=frozenset({2}),
                        )
                    ],
                    seed=11,
                )
            )
            first = bus.send("pay", {"amount": 5})  # applied, reply lost
            second = bus.send("pay", {"amount": 7})
            snap = bus.snapshot()
            assert bus.reconnects == 1
            assert snap["dedup_hits"] == 1
            assert snap["queues"]["pay"]["sent"] == 2
            assert snap["queues"]["pay"]["depth"] == 2
            assert first != second


def test_dedup_survives_broker_crash_via_retry_pending(tmp_path):
    """The worst window: broker journals the op, caches the reply,
    then dies before replying.  The client's ConnectionLost leaves the
    request pending; after a restart over the same directory,
    ``retry_pending`` replays the same op id and gets the *recovered*
    cached reply — never a second application."""
    durable = str(tmp_path / "broker")
    with BusServerThread(durable_dir=durable, name="d") as server:
        address = server.address
        with connect(address, name="payer", connect_retries=3) as bus:
            bus.install_injector(
                FaultInjector(
                    [
                        FaultRule(
                            "broker.crash",
                            "crash",
                            match="send",
                            schedule=frozenset({1}),
                        )
                    ],
                    seed=0,
                )
            )
            with pytest.raises(ConnectionLost):
                bus.send("pay", {"amount": 9})
            assert bus.pending_op == "send"
            assert server.server.crashed

            # restart over the same directory, same port
            with BusServerThread(
                durable_dir=durable, name="d", port=address[1]
            ) as restarted:
                msg_id = bus.retry_pending()
                assert msg_id == "m000000"
                snap = bus.snapshot()
                assert snap["epoch"] == 2
                assert snap["dedup_hits"] == 1
                assert snap["queues"]["pay"]["depth"] == 1
                assert snap["queues"]["pay"]["sent"] == 1
                assert bus.broker_restarts == 1
                assert restarted.server.recovery["replayed_records"] == 1


def test_dedup_survives_crash_when_checkpoint_lands_on_crashing_op(tmp_path):
    """Regression: the checkpoint used to snapshot the session table
    *before* the current op's dedup entry was stored, while its offset
    covered the op's journal record.  With ``checkpoint_every`` landing
    exactly on the op that crashes the broker, recovery replayed an
    empty journal suffix over a session table missing that op — and the
    client's replay double-applied.  The entry is now stored before the
    checkpoint, so the recovered table always includes the op covered
    by the checkpoint offset."""
    durable = str(tmp_path / "broker")
    with BusServerThread(
        durable_dir=durable, name="d", checkpoint_every=1
    ) as server:
        address = server.address
        with connect(address, name="payer", connect_retries=3) as bus:
            bus.install_injector(
                FaultInjector(
                    [
                        FaultRule(
                            "broker.crash",
                            "crash",
                            match="send",
                            schedule=frozenset({1}),
                        )
                    ],
                    seed=0,
                )
            )
            with pytest.raises(ConnectionLost):
                bus.send("pay", {"amount": 9})
            assert server.server.crashed

            with BusServerThread(
                durable_dir=durable, name="d", port=address[1]
            ) as restarted:
                # the crashing op is inside the checkpoint, not the
                # journal suffix
                assert restarted.server.recovery["replayed_records"] == 0
                assert bus.retry_pending() == "m000000"
                snap = bus.snapshot()
                assert snap["dedup_hits"] == 1
                assert snap["queues"]["pay"]["depth"] == 1
                assert snap["queues"]["pay"]["sent"] == 1


def test_retry_pending_without_pending_raises():
    with BusServerThread() as server:
        with connect(server.address) as bus:
            with pytest.raises(NetError):
                bus.retry_pending()


def test_session_table_is_bounded_lru(tmp_path):
    """Client churn must not grow the dedup table (and every
    checkpoint re-serializing it) without bound: beyond ``session_cap``
    the oldest-by-op-order session is evicted."""
    with BusServerThread(
        durable_dir=str(tmp_path / "b"), session_cap=2
    ) as server:
        clients = [
            connect(server.address, name="c%d" % n) for n in range(3)
        ]
        try:
            for n, bus in enumerate(clients):
                bus.send("q", {"n": n})
            snap = clients[0].snapshot()
            assert snap["session_cap"] == 2
            assert snap["sessions"] == 2
            assert snap["sessions_evicted"] == 1
        finally:
            for bus in clients:
                bus.close()


def test_concurrent_clients_never_share_a_session():
    """The session nonce is drawn atomically: same-named clients
    constructed concurrently from different threads (the traffic
    driver does this) get distinct op-id namespaces."""
    import concurrent.futures

    with BusServerThread() as server:
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            clients = list(
                pool.map(
                    lambda __: connect(server.address, name="twin"),
                    range(16),
                )
            )
        try:
            assert len({bus.session for bus in clients}) == 16
            assert all(bus.ping() == "pong" for bus in clients)
        finally:
            for bus in clients:
                bus.close()


# ---------------------------------------------------------------------------
# session resume: in-flight claims survive the bounce
# ---------------------------------------------------------------------------


def test_resume_reregisters_in_flight_claims(tmp_path):
    durable = str(tmp_path / "broker")
    with BusServerThread(durable_dir=durable, name="d") as server:
        address = server.address
        bus = connect(address, name="consumer")
        bus.send("work", {"n": 1})
        msg_id, __ = bus.receive("work")
        assert bus.in_flight() == [("work", msg_id)]

    try:
        # recovery cleared the (volatile) reservation: without resume
        # the message would be redelivered to anyone who polls first
        with BusServerThread(durable_dir=durable, name="d", port=address[1]):
            # any call reconnects; the client detects the new
            # incarnation and resumes its claims before the op runs
            bus.depth("work")
            assert bus.broker_restarts == 1
            with connect(address, name="thief") as other:
                assert other.receive("work") is None  # still reserved
            bus.ack("work", msg_id)
            assert bus.depth("work") == 0
            snap = bus.snapshot()
            assert snap["resumed_total"] == 1
    finally:
        bus.close()


# ---------------------------------------------------------------------------
# heartbeats and reaping (satellite 2)
# ---------------------------------------------------------------------------


def test_idle_connections_are_reaped_heartbeats_survive():
    with BusServerThread(heartbeat_timeout=0.3) as server:
        with connect(
            server.address, name="beater", heartbeat_interval=0.05
        ) as beater, connect(server.address, name="sleeper") as sleeper:
            sleeper.ping()  # frame once, then go silent
            deadline = time.time() + 3.0
            while time.time() < deadline:
                snap = beater.snapshot()
                if snap["reaped_total"] >= 1:
                    break
                time.sleep(0.05)
            assert snap["reaped_total"] == 1
            names = [row["name"] for row in snap["connections"]]
            assert "beater" in names
            assert "sleeper" not in names
            assert beater.heartbeats >= 1
            # the reaped client was not killed, only disconnected: its
            # next call transparently reconnects
            assert sleeper.ping() == "pong"
            assert sleeper.reconnects == 1


def test_half_open_connection_that_never_speaks_is_reaped():
    """A peer that connects and dies before sending any frame must
    still be reaped — the silent-from-birth half-open socket."""
    import socket

    with BusServerThread(heartbeat_timeout=0.3) as server:
        host, port = server.address
        mute = socket.create_connection((host, port))
        try:
            with connect(
                server.address, name="watcher", heartbeat_interval=0.05
            ) as watcher:
                deadline = time.time() + 3.0
                while time.time() < deadline:
                    snap = watcher.snapshot()
                    if snap["reaped_total"] >= 1:
                        break
                    time.sleep(0.05)
                assert snap["reaped_total"] == 1
                assert "watcher" in [
                    row["name"] for row in snap["connections"]
                ]
        finally:
            mute.close()


# ---------------------------------------------------------------------------
# monitor rendering
# ---------------------------------------------------------------------------


def test_monitor_net_view_renders_durability(tmp_path):
    with BusServerThread(
        durable_dir=str(tmp_path / "b"), checkpoint_every=2
    ) as server:
        with connect(server.address, name="producer") as bus:
            for n in range(5):
                bus.send("q", {"n": n})
            text = "\n".join(render_net(bus.snapshot()))
    assert "DURABLE epoch 1" in text
    assert "sync always" in text
    assert "checkpoints" in text
    assert "recovered: checkpoint @0" in text
    assert "dedup hits" in text
    assert "reaped" in text


def test_monitor_net_view_still_renders_volatile_brokers():
    with BusServerThread() as server:
        with connect(server.address, name="producer") as bus:
            bus.send("q", {"n": 1})
            text = "\n".join(render_net(bus.snapshot()))
    assert "DURABLE" not in text
    assert "sessions" in text
