"""Seeded chaos over the real transport, across OS processes.

The acceptance bar for the socket transport: the distributed chaos
assertions (exactly-once service, correct result, replayable fault
schedule) must hold with the broker in **another process** and the
chaos rules applied to **real socket traffic** — and two runs of the
same seed must produce bit-identical logical traces.

Why this is deterministic despite three OS processes: every bus
operation is a blocking request/reply issued from this (single)
driver thread, so the broker receives operations in exactly the order
the driver issues them; the broker-side injector consumes its seeded
RNG in that order.  Node crashes come from a *client-side* injector
(``node.pump`` schedule), which never touches the wire.  The traces
asserted equal are therefore: the broker's drop/duplicate/delay
decisions (fetched over the wire) and the client's crash decisions.
"""

from __future__ import annotations

import pytest

from repro.net import BrokerProcess, SocketBus
from repro.resilience.faults import (
    FaultInjector,
    FaultRule,
    InjectedCrash,
    chaos_rules,
)
from repro.wfms.distributed import run_cluster
from repro.workloads.distributed_demo import (
    configure_requester,
    configure_worker,
    make_requester,
    make_worker,
)

NET_SEEDS = range(4)

#: broker-side rules: drop/duplicate/delay real socket sends — the
#: same mix (and rates) as the in-memory distributed chaos suite.
BUS_RULES = dict(drop_p=0.3, duplicate_p=0.2, delay_p=0.2, max_fires=2)

#: client-side rule: one forced node crash mid-run.
CRASH_RULE = FaultRule("node.pump", "crash", schedule=frozenset({4}))


def run_socket_chaos(seed, directory):
    """One chaos run over a fresh broker process; returns
    (result, served, bus_trace, crash_trace)."""
    directory.mkdir(parents=True, exist_ok=True)
    crash_injector = FaultInjector([CRASH_RULE], seed=seed)
    with BrokerProcess(rules=chaos_rules(**BUS_RULES), seed=seed) as broker:
        host, port = broker.address
        with SocketBus(host, port, name="worker") as worker_bus, SocketBus(
            host, port, name="front"
        ) as front_bus, SocketBus(host, port, name="control") as control:
            worker = make_worker(
                worker_bus,
                journal_path=str(directory / "worker.jsonl"),
                fault_injector=crash_injector,
            )
            front = make_requester(
                front_bus,
                journal_path=str(directory / "front.jsonl"),
                fault_injector=crash_injector,
                request_timeout=5.0,
                request_retries=6,
            )
            iid = front.engine.start_process("Front", {"N": 7})
            for __ in range(10):
                try:
                    run_cluster([worker, front], watch=[(front, iid)])
                    break
                except InjectedCrash:
                    if worker.engine.crashed:
                        worker.rebuild(configure_worker)
                    if front.engine.crashed:
                        front.rebuild(configure_requester)
            else:
                pytest.fail(
                    "socket chaos did not converge (seed %d)" % seed
                )
            result = front.engine.output(iid)["Result"]
            served = sorted(
                i.instance_id
                for i in worker.engine.navigator.instances()
                if i.instance_id.startswith("req/")
            )
            bus_trace = control.injector_trace()
    return result, served, bus_trace, crash_injector.trace()


@pytest.mark.parametrize("seed", NET_SEEDS)
def test_exactly_once_and_replayable_over_real_sockets(seed, tmp_path):
    result, served, bus_trace, crash_trace = run_socket_chaos(
        seed, tmp_path / "a"
    )

    # the distributed guarantees, now across three OS processes: the
    # right answer, served exactly once, despite injected drops,
    # duplicates, delays and a forced node crash
    assert result == 15  # 2*7 + 1
    assert served == ["req/front/pi-0001/CallDouble"]

    # bit-identical logical traces across two runs of the same seed
    result2, served2, bus_trace2, crash_trace2 = run_socket_chaos(
        seed, tmp_path / "b"
    )
    assert bus_trace == bus_trace2
    assert crash_trace == crash_trace2
    assert (result, served) == (result2, served2)

    # the chaos actually happened behind the transport: at least one
    # seed's broker fired rules (guarded loosely per-seed; the suite
    # as a whole would catch a silently disabled injector)
    assert all(site == "bus.send" for site, *_ in bus_trace)
