"""The write-ahead bus log in isolation: record/replay round-trips,
checkpoint + compaction, torn tails, corrupt-checkpoint fallback, the
epoch counter, and the fault sites.

The invariant every test circles: a fresh :class:`MessageBus` fed the
checkpoint + log suffix converges on the live bus's durable state —
same queues (ids, bodies, headers, order), same DLQ, same stat
buckets modulo the documented volatile drift (``delivered`` /
``redelivered`` counters and delay holds live in the replay window
only up to the last checkpoint; in-flight reservations never
survive).
"""

from __future__ import annotations

import os

import pytest

from repro.errors import JournalError, RecoveryError, WorkflowError
from repro.net.buslog import (
    BUS_RECORD_TYPES,
    BusLog,
    replay_into,
)
from repro.resilience.faults import FaultInjector, FaultRule
from repro.wfms.messaging import MessageBus


def record_send(log, bus, queue, body, headers=None):
    """Send on the live bus and journal the effect, exactly as
    ``BusServer._send_journaled`` does."""
    msg_id, effect, entries = bus.send_detailed(queue, body, headers)
    log.record(
        {"type": "send", "queue": queue, "effect": effect, "entries": entries}
    )
    return msg_id


def durable_state(bus):
    """Export minus the volatile drift replay is allowed to lose."""
    state = bus.export_state()
    for bucket in state["stats"].values():
        bucket.pop("delivered", None)
        bucket.pop("redelivered", None)
    for rows in state["queues"].values():
        for row in rows:
            row.pop("deliveries", None)
    return state


def recovered_bus(directory):
    """A fresh bus rebuilt from the durable directory (fresh BusLog —
    a new broker incarnation — so the epoch bumps too)."""
    log = BusLog(directory)
    bus = MessageBus()
    info = log.recover_into(bus)
    log.close()
    return bus, info


# ---------------------------------------------------------------------------
# record/replay round-trip
# ---------------------------------------------------------------------------


def test_replay_converges_on_live_state(tmp_path):
    log = BusLog(tmp_path)
    live = MessageBus()
    record_send(log, live, "orders", {"n": 1}, {"trace-id": "t1"})
    m2 = record_send(log, live, "orders", {"n": 2})
    record_send(log, live, "billing", {"amount": 9})

    # consume one (receives are volatile: not journaled)
    msg_id, __ = live.receive("orders")
    live.ack("orders", msg_id)
    log.record({"type": "ack", "queue": "orders", "msg_id": msg_id})

    # poison another
    live.receive("orders")
    live.dead_letter("orders", m2, "poison")
    log.record(
        {"type": "dead_letter", "queue": "orders", "msg_id": m2,
         "reason": "poison"}
    )
    log.close()

    rebuilt, info = recovered_bus(tmp_path)
    assert durable_state(rebuilt) == durable_state(live)
    assert info["replayed_records"] == 5
    assert info["checkpoint_offset"] == 0

    # the DLQ entry kept its id, body, and reason header
    [entry] = rebuilt.dlq_entries("orders")
    assert entry["msg_id"] == m2
    assert entry["headers"]["dead-letter-reason"] == "poison"


def test_replay_applies_journaled_injector_effects(tmp_path):
    """Drop/duplicate/delay outcomes are journaled as effects; replay
    applies them without any injector installed."""
    log = BusLog(tmp_path)
    live = MessageBus()
    live.install_injector(
        FaultInjector(
            [
                FaultRule("bus.send", "drop", schedule=frozenset({1})),
                FaultRule("bus.send", "duplicate", schedule=frozenset({2})),
                FaultRule("bus.send", "delay", schedule=frozenset({3}), delay=2),
            ],
            seed=3,
        )
    )
    record_send(log, live, "q", {"n": 0})  # dropped
    record_send(log, live, "q", {"n": 1})  # duplicated
    record_send(log, live, "q", {"n": 2})  # delayed (hold=2)
    log.close()

    rebuilt, __ = recovered_bus(tmp_path)
    assert durable_state(rebuilt) == durable_state(live)
    stats = rebuilt.stats("q")
    assert stats["dropped"] == 1
    assert stats["duplicated"] == 1
    assert stats["delayed"] == 1
    # duplicate made two envelopes, drop none: 3 live messages
    assert rebuilt.depth("q") == 3


def test_replay_reject_and_drain(tmp_path):
    log = BusLog(tmp_path)
    live = MessageBus()
    msg_id = live.reject("q", {"n": 1}, {"k": "v"}, "queue overflow")
    log.record(
        {"type": "reject", "queue": "q", "msg_id": msg_id,
         "body": {"n": 1}, "headers": {"k": "v"}, "reason": "queue overflow"}
    )
    drained = live.dlq_drain("q", requeue=True)
    log.record(
        {"type": "dlq_drain", "queue": "q", "requeue": True,
         "drained": drained}
    )
    log.close()

    rebuilt, __ = recovered_bus(tmp_path)
    assert durable_state(rebuilt) == durable_state(live)
    assert rebuilt.depth("q") == 1


def test_replay_rejects_divergence_and_unknown_records(tmp_path):
    bus = MessageBus()
    with pytest.raises(RecoveryError):
        replay_into(bus, {"type": "ack", "queue": "q", "msg_id": "m000000"})
    with pytest.raises(RecoveryError):
        replay_into(
            bus, {"type": "dead_letter", "queue": "q", "msg_id": "m000000"}
        )
    with pytest.raises(RecoveryError):
        replay_into(bus, {"type": "receive", "queue": "q"})
    # a dlq_drain whose journaled count disagrees with what replay moved
    with pytest.raises(RecoveryError):
        replay_into(
            bus, {"type": "dlq_drain", "queue": "q", "requeue": True,
                  "drained": 5}
        )


def test_id_sequence_restored_past_replayed_ids(tmp_path):
    log = BusLog(tmp_path)
    live = MessageBus()
    for n in range(3):
        record_send(log, live, "q", {"n": n})
    log.close()

    rebuilt, __ = recovered_bus(tmp_path)
    fresh_id = rebuilt.send("q", {"n": 99})
    existing = {row["msg_id"] for row in rebuilt.export_state()["queues"]["q"]}
    assert fresh_id in existing
    assert len(existing) == 4  # no collision


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------


def test_checkpoint_compacts_and_recovery_is_suffix_only(tmp_path):
    log = BusLog(tmp_path, segment_max_records=4)
    live = MessageBus()
    for n in range(10):
        record_send(log, live, "q", {"n": n})
    offset = log.checkpoint(live.export_state(), {})
    assert offset == 10
    # post-checkpoint delta
    record_send(log, live, "q", {"n": 10})
    status = log.status()
    assert status["checkpoints"] == 1
    assert status["last_checkpoint_offset"] == 10
    assert status["records_since_checkpoint"] == 1
    log.close()

    rebuilt, info = recovered_bus(tmp_path)
    assert info["checkpoint_offset"] == 10
    assert info["restored_messages"] == 10
    assert info["replayed_records"] == 1
    assert durable_state(rebuilt) == durable_state(live)


def test_corrupt_newest_checkpoint_falls_back(tmp_path):
    log = BusLog(tmp_path)
    live = MessageBus()
    record_send(log, live, "q", {"n": 0})
    log.checkpoint(live.export_state(), {})
    record_send(log, live, "q", {"n": 1})
    second = log.checkpoint(live.export_state(), {})
    log.close()

    # tear the newest checkpoint the way a crash mid-write would
    with open(
        os.path.join(tmp_path, "buscheck-%08d.json" % second), "w"
    ) as handle:
        handle.write('{"torn":')

    rebuilt, info = recovered_bus(tmp_path)
    assert info["checkpoints_skipped"] == 1
    assert info["checkpoint_offset"] == 1
    assert durable_state(rebuilt) == durable_state(live)


def test_checkpoint_rebuilds_session_dedup_table(tmp_path):
    log = BusLog(tmp_path)
    live = MessageBus()
    msg_id, effect, entries = live.send_detailed("q", {"n": 1}, None)
    log.record(
        {"type": "send", "queue": "q", "effect": effect, "entries": entries,
         "client": "producer@1", "op_id": "producer@1#4",
         "reply": {"ok": True, "value": msg_id}}
    )
    log.close()

    __, info = recovered_bus(tmp_path)
    assert info["sessions"] == {
        "producer@1": {
            "op_id": "producer@1#4",
            "reply": {"ok": True, "value": msg_id},
        }
    }


# ---------------------------------------------------------------------------
# torn tails, epoch, validation, fault sites
# ---------------------------------------------------------------------------


def test_torn_tail_is_trimmed_on_recovery(tmp_path):
    log = BusLog(tmp_path)
    live = MessageBus()
    record_send(log, live, "q", {"n": 0})
    record_send(log, live, "q", {"n": 1})
    log.close()

    log_dir = os.path.join(tmp_path, "log")
    segments = sorted(
        name for name in os.listdir(log_dir) if name.endswith(".jsonl")
    )
    with open(os.path.join(log_dir, segments[-1]), "a") as handle:
        handle.write('{"type": "send", "queue": "q", "entr')  # torn append

    rebuilt, info = recovered_bus(tmp_path)
    assert info["replayed_records"] == 2
    assert rebuilt.depth("q") == 2


def test_epoch_bumps_per_open(tmp_path):
    epochs = []
    for __ in range(3):
        log = BusLog(tmp_path)
        epochs.append(log.epoch)
        log.close()
    assert epochs == [1, 2, 3]


def test_constructor_validation(tmp_path):
    with pytest.raises(ValueError):
        BusLog(tmp_path / "a", checkpoint_every=0)
    with pytest.raises(ValueError):
        BusLog(tmp_path / "b", keep_checkpoints=1)


def test_record_type_allowlist(tmp_path):
    log = BusLog(tmp_path)
    with pytest.raises(RecoveryError):
        log.record({"type": "receive", "queue": "q"})
    assert "receive" not in BUS_RECORD_TYPES
    log.close()


def test_buslog_append_fault_site(tmp_path):
    injector = FaultInjector(
        [FaultRule("buslog.append", "raise", schedule=frozenset({2}))],
        seed=0,
    )
    log = BusLog(tmp_path, injector=injector)
    log.record({"type": "nack", "queue": "q", "msg_id": "m000000"})
    with pytest.raises(JournalError):
        log.record({"type": "nack", "queue": "q", "msg_id": "m000001"})
    assert injector.trace() == [("buslog.append", "nack", "raise", 2)]
    log.abandon()
