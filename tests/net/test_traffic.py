"""The open-loop traffic driver and its latency accounting."""

from __future__ import annotations

import pytest

from repro.errors import NetError
from repro.net import BusServerThread, SocketBus
from repro.obs.metrics import Histogram
from repro.workloads.traffic import (
    LATENCY_BUCKETS,
    arrival_offsets,
    run_open_loop,
)

# ---------------------------------------------------------------------------
# arrival schedules
# ---------------------------------------------------------------------------


def test_fixed_offsets_match_the_rate():
    offsets = arrival_offsets(5, 100.0)
    assert offsets == [0.0, 0.01, 0.02, 0.03, 0.04]


def test_poisson_offsets_are_seeded_and_monotone():
    a = arrival_offsets(50, 200.0, distribution="poisson", seed=9)
    b = arrival_offsets(50, 200.0, distribution="poisson", seed=9)
    c = arrival_offsets(50, 200.0, distribution="poisson", seed=10)
    assert a == b  # same seed, same schedule
    assert a != c
    assert all(later > earlier for earlier, later in zip(a, a[1:]))
    # long-run rate in the right ballpark: 50 arrivals at 200/s take
    # about 0.25s (generous band; it's an expectation, not a bound)
    assert 0.05 < a[-1] < 1.0


def test_bad_schedule_arguments_raise():
    with pytest.raises(NetError, match="rate"):
        arrival_offsets(5, 0.0)
    with pytest.raises(NetError, match="distribution"):
        arrival_offsets(5, 10.0, distribution="uniform")


# ---------------------------------------------------------------------------
# the driver against a live broker
# ---------------------------------------------------------------------------


def test_open_loop_run_completes_and_reports(tmp_path):
    with BusServerThread() as broker:
        address = broker.address
        report = run_open_loop(
            lambda name: SocketBus(*address, name=name),
            rate=500.0,
            requests=40,
            distribution="poisson",
            seed=4,
        )
    assert report["sent"] == report["completed"] == 40
    assert report["overflowed"] == report["shed"] == 0
    latency = report["latency"]
    assert latency["count"] == 40
    assert 0 < latency["p50_ms"] <= latency["p99_ms"]
    assert report["throughput_per_sec"] > 0


def test_open_loop_counts_admission_rejections():
    """Overload against a tiny bounded queue with no consumer keeping
    up: the driver records rejections instead of blocking — every
    arrival is accounted for as sent, overflowed, or shed."""
    with BusServerThread(queue_capacity=1) as broker:
        address = broker.address
        report = run_open_loop(
            lambda name: SocketBus(*address, name=name),
            rate=3000.0,
            requests=60,
            distribution="fixed",
            drain_timeout=2.0,
        )
    assert report["sent"] + report["overflowed"] + report["shed"] == 60
    # the queue was bounded, so the backlog physically could not grow
    # unbounded — rejections are the release valve under overload
    assert report["completed"] <= report["sent"]


def test_open_loop_survives_broker_bounce(tmp_path):
    """A sweep keeps going when a durable broker is SIGKILLed and
    restarted underneath it: the clients reconnect (and resume their
    in-flight claims), op-id dedup absorbs the replays, and every
    request the driver sent completes exactly once."""
    import threading
    import time

    from repro.net import BrokerProcess

    durable = str(tmp_path / "broker")
    holder = {"proc": BrokerProcess(durable_dir=durable, port=0)}
    host, port = holder["proc"].address

    def bounce():
        time.sleep(0.2)
        holder["proc"].kill()
        holder["proc"] = BrokerProcess(durable_dir=durable, port=port)

    bouncer = threading.Thread(target=bounce, daemon=True)
    bouncer.start()
    try:
        report = run_open_loop(
            lambda name: SocketBus(
                host, port, name=name, connect_retries=8, backoff=0.02
            ),
            rate=300.0,
            requests=120,
            distribution="fixed",
            drain_timeout=15.0,
        )
        bouncer.join(timeout=10)
        with SocketBus(host, port, name="control") as control:
            assert control.server_info["epoch"] == 2  # bounced exactly once
        # nothing admitted was lost and nothing was double-counted
        # (arrivals may be dropped only if the outage outlives the
        # reconnect budget — counted, never hung)
        assert report["completed"] == report["sent"] >= 100
        assert report["overflowed"] == report["shed"] == 0
    finally:
        bouncer.join(timeout=10)
        holder["proc"].close()


# ---------------------------------------------------------------------------
# Histogram.quantile (the p50/p99 source)
# ---------------------------------------------------------------------------


def test_quantile_interpolates_within_buckets():
    histogram = Histogram(buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.5, 3.0):
        histogram.observe(value)
    # p50: target 2.0 of 4 observations -> upper edge of (1, 2] bucket
    assert histogram.quantile(0.5) == pytest.approx(1.5, abs=0.51)
    assert histogram.quantile(0.0) == pytest.approx(0.0, abs=1.01)
    # p100 lands in the (2, 4] bucket
    assert 2.0 <= histogram.quantile(1.0) <= 4.0
    # monotone in q
    quantiles = [histogram.quantile(q / 10) for q in range(11)]
    assert quantiles == sorted(quantiles)


def test_quantile_edge_cases():
    histogram = Histogram(buckets=(1.0, 2.0))
    assert histogram.quantile(0.99) == 0.0  # empty
    histogram.observe(10.0)  # overflow bucket only
    assert histogram.quantile(0.5) == 2.0  # clamps to last finite edge
    from repro.errors import ObservabilityError

    with pytest.raises(ObservabilityError):
        histogram.quantile(1.5)


def test_quantile_tracks_known_distribution():
    histogram = Histogram(buckets=LATENCY_BUCKETS)
    for i in range(1000):
        histogram.observe(0.001 + (i % 100) * 0.0001)  # 1ms..11ms uniform
    p50 = histogram.quantile(0.50)
    p99 = histogram.quantile(0.99)
    assert 0.004 < p50 < 0.009  # around 6ms
    assert 0.009 < p99 < 0.016  # near the top


def test_traffic_cli_writes_report(tmp_path, capsys):
    from repro.workloads.traffic import main

    out = tmp_path / "report.json"
    assert (
        main(
            [
                "--rates",
                "400",
                "--requests",
                "20",
                "--distribution",
                "fixed",
                "--json-out",
                str(out),
            ]
        )
        == 0
    )
    import json

    report = json.loads(out.read_text())
    assert report["runs"][0]["requests"] == 20
    assert "p99_ms" in report["runs"][0]["latency"]
    assert "rate/s" in capsys.readouterr().out
