"""Property tests for the wire format.

The load-bearing claim: a bus envelope — any JSON-native body, any
header set (span context, exactly-once request ids, dead-letter
reasons) — survives encode → frame → arbitrary socket chunking →
decode **identically**.  Everything the distributed guarantees ride on
(request-id deduplication, trace parenting) assumes the transport
never perturbs a message; this file is where that assumption is
checked rather than hoped.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.frames import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    decode_envelope,
    encode_envelope,
    encode_frame,
)

# JSON-native values only: the bus stores dict bodies that came from
# json-able sources; NaN/Inf are not JSON and not legal bus payloads.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)
_bodies = st.dictionaries(st.text(min_size=1, max_size=12), _values, max_size=5)
# Header values are strings by contract (trace ids, request ids,
# reasons); include the real header names among the arbitrary ones.
_header_names = st.one_of(
    st.sampled_from(
        [
            "trace-id",
            "span-id",
            "parent-span-id",
            "request-id",
            "dead-letter-reason",
        ]
    ),
    st.text(min_size=1, max_size=16),
)
_headers = st.dictionaries(_header_names, st.text(max_size=32), max_size=6)
_chunk_sizes = st.lists(st.integers(min_value=1, max_value=7), max_size=20)


def _feed_in_chunks(decoder, wire: bytes, sizes: list[int]):
    """Feed ``wire`` split at the (cyclic) chunk sizes — simulating
    every way a socket can fragment the byte stream."""
    frames = []
    position = 0
    index = 0
    while position < len(wire):
        size = sizes[index % len(sizes)] if sizes else len(wire)
        frames.extend(decoder.feed(wire[position : position + size]))
        position += size
        index += 1
    return frames


@settings(max_examples=200, deadline=None)
@given(
    msg_id=st.text(min_size=1, max_size=12),
    body=_bodies,
    headers=_headers,
    deliveries=st.integers(min_value=0, max_value=9),
    sizes=_chunk_sizes,
)
def test_envelope_roundtrip_identity_across_any_chunking(
    msg_id, body, headers, deliveries, sizes
):
    wire = encode_frame(encode_envelope(msg_id, body, headers, deliveries))
    frames = _feed_in_chunks(FrameDecoder(), wire, sizes)
    assert len(frames) == 1
    assert decode_envelope(frames[0]) == (msg_id, body, headers, deliveries)


@settings(max_examples=50, deadline=None)
@given(
    envelopes=st.lists(
        st.tuples(_bodies, _headers), min_size=1, max_size=5
    ),
    sizes=_chunk_sizes,
)
def test_frame_stream_preserves_order_and_boundaries(envelopes, sizes):
    """Many frames back-to-back through one decoder: nothing merges,
    splits, reorders, or leaks between frames."""
    wire = b"".join(
        encode_frame(encode_envelope("m%04d" % i, body, headers))
        for i, (body, headers) in enumerate(envelopes)
    )
    decoder = FrameDecoder()
    frames = _feed_in_chunks(decoder, wire, sizes)
    assert decoder.pending == 0
    assert [decode_envelope(f) for f in frames] == [
        ("m%04d" % i, body, headers, 0)
        for i, (body, headers) in enumerate(envelopes)
    ]


def test_partial_frame_stays_pending():
    wire = encode_frame({"op": "ping"})
    decoder = FrameDecoder()
    assert decoder.feed(wire[:3]) == []
    assert decoder.pending == 3
    assert decoder.feed(wire[3:]) == [{"op": "ping"}]
    assert decoder.pending == 0


def test_oversized_payload_refused_at_encode():
    with pytest.raises(FrameError, match="exceeds"):
        encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


def test_hostile_length_prefix_refused_at_decode():
    header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(FrameError, match="announces"):
        FrameDecoder().feed(header)


def test_undecodable_payload_raises():
    body = b"\xff\xfe not json"
    wire = len(body).to_bytes(4, "big") + body
    with pytest.raises(FrameError, match="undecodable"):
        FrameDecoder().feed(wire)


def test_frames_are_canonical_json():
    """Sorted keys + no whitespace: the same payload always encodes to
    the same bytes (trace comparisons may hash frames)."""
    a = encode_frame({"b": 1, "a": {"d": 2, "c": 3}})
    b = encode_frame({"a": {"c": 3, "d": 2}, "b": 1})
    assert a == b
    assert b" " not in a
    assert json.loads(a[4:]) == {"a": {"c": 3, "d": 2}, "b": 1}


def test_malformed_envelope_rejected():
    with pytest.raises(FrameError, match="malformed envelope"):
        decode_envelope({"msg_id": "m1", "body": {}})
    with pytest.raises(FrameError, match="objects"):
        decode_envelope(
            {"msg_id": "m1", "body": [], "headers": {}, "deliveries": 0}
        )
