"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro.errors import (
    ConditionError,
    DeadlockError,
    FDLSyntaxError,
    LockTimeoutError,
    ModelError,
    ReproError,
    SpecSyntaxError,
    TransactionAborted,
    TransactionError,
    WellFormednessError,
    WorkflowError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc_type in (
            WorkflowError,
            TransactionError,
            ModelError,
            FDLSyntaxError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_deadlock_and_timeout_are_aborts(self):
        assert issubclass(DeadlockError, TransactionAborted)
        assert issubclass(LockTimeoutError, TransactionAborted)
        assert DeadlockError().reason == "deadlock"
        assert LockTimeoutError().reason == "lock timeout"

    def test_transaction_aborted_reason_defaults_to_message(self):
        exc = TransactionAborted("boom")
        assert exc.reason == "boom"
        exc2 = TransactionAborted("boom", reason="why")
        assert exc2.reason == "why"

    def test_fdl_syntax_error_carries_position(self):
        exc = FDLSyntaxError("bad", 3, 7)
        assert exc.line == 3 and exc.column == 7
        assert "line 3:7" in str(exc)
        bare = FDLSyntaxError("bad")
        assert "line" not in str(bare)

    def test_spec_syntax_error_carries_line(self):
        exc = SpecSyntaxError("bad", 9)
        assert "line 9" in str(exc)

    def test_wellformedness_is_model_error(self):
        assert issubclass(WellFormednessError, ModelError)

    def test_condition_error_is_workflow_error(self):
        assert issubclass(ConditionError, WorkflowError)


class TestPublicAPI:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_package_exports(self):
        import repro.core

        for name in repro.core.__all__:
            assert getattr(repro.core, name, None) is not None, name

    def test_wfms_package_exports(self):
        import repro.wfms

        for name in repro.wfms.__all__:
            assert getattr(repro.wfms, name, None) is not None, name

    def test_tx_package_exports(self):
        import repro.tx

        for name in repro.tx.__all__:
            assert getattr(repro.tx, name, None) is not None, name

    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_from_docstring(self):
        # The module docstring's quickstart must keep working verbatim.
        from repro import Activity, Engine, ProcessDefinition

        engine = Engine()
        engine.register_program("hello", lambda ctx: 0)
        defn = ProcessDefinition("Hi")
        defn.add_activity(Activity("Greet", program="hello"))
        engine.register_definition(defn)
        result = engine.run_process("Hi")
        assert result.finished
