"""Tests for the command-line tools."""

import io

import pytest

from repro.tools.fdl import main as fdl_main
from repro.tools.fmtm import main as fmtm_main

SAGA = """
MODEL SAGA 'travel'
  STEP 'flight'
  STEP 'hotel'
END 'travel'
"""

FLEX = """
MODEL FLEXIBLE 'f'
  SUBTRANSACTION 'a' COMPENSATABLE
  SUBTRANSACTION 'p' PIVOT
  SUBTRANSACTION 'r' RETRIABLE
  PATH 'a' 'p'
  PATH 'a' 'r'
END 'f'
"""

CONTRACT = """
MODEL CONTRACT 'order'
  CONTEXT 'Amount' LONG
  STEP 'reserve'
  STEP 'insure' WHEN "Amount > 100"
END 'order'
"""


@pytest.fixture
def spec_file(tmp_path):
    def write(text, name="spec.fmtm"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


def run_fmtm(*argv):
    out = io.StringIO()
    code = fmtm_main(list(argv), out=out)
    return code, out.getvalue()


def run_fdl(*argv):
    out = io.StringIO()
    code = fdl_main(list(argv), out=out)
    return code, out.getvalue()


class TestFmtmTool:
    def test_translate_saga(self, spec_file):
        code, output = run_fmtm(spec_file(SAGA))
        assert code == 0
        assert "Saga_travel" in output
        assert "build_template" in output

    def test_run_saga_success(self, spec_file):
        code, output = run_fmtm(spec_file(SAGA), "--run")
        assert code == 0
        assert "committed: True" in output
        assert "'flight': 1" in output

    def test_run_saga_with_abort(self, spec_file):
        code, output = run_fmtm(spec_file(SAGA), "--run", "--abort", "hotel")
        assert code == 0
        assert "committed: False" in output
        assert "compensated: ['flight']" in output

    def test_run_flexible_fallback(self, spec_file):
        code, output = run_fmtm(spec_file(FLEX), "--run", "--abort", "p")
        assert code == 0
        assert "committed: True" in output
        assert "committed_path: ['a', 'r']" in output

    def test_run_contract_with_input(self, spec_file):
        code, output = run_fmtm(
            spec_file(CONTRACT), "--run", "--input", "Amount=50"
        )
        assert code == 0
        assert "skipped: ['insure']" in output

    def test_fdl_out_written(self, spec_file, tmp_path):
        fdl_path = tmp_path / "out.fdl"
        code, output = run_fmtm(spec_file(SAGA), "--fdl-out", str(fdl_path))
        assert code == 0
        assert fdl_path.exists()
        assert "PROCESS 'Saga_travel'" in fdl_path.read_text()

    def test_missing_file_is_an_error(self):
        code, output = run_fmtm("/nonexistent/spec.fmtm")
        assert code == 1
        assert "error:" in output

    def test_bad_spec_is_an_error(self, spec_file):
        code, output = run_fmtm(spec_file("MODEL SAGA 'x'\n"))
        assert code == 1
        assert "error:" in output

    def test_bad_input_pair_is_an_error(self, spec_file):
        code, output = run_fmtm(
            spec_file(CONTRACT), "--run", "--input", "Amount"
        )
        assert code == 1
        assert "NAME=VALUE" in output

    def test_dag_saga_routes_to_parallel_translation(self, spec_file):
        text = """
        MODEL SAGA 'dag'
          STEP 'a'
          STEP 'b'
          STEP 'c'
          ORDER 'a' 'b'
          ORDER 'a' 'c'
        END 'dag'
        """
        code, output = run_fmtm(spec_file(text), "--run", "--abort", "b")
        assert code == 0
        assert "PSaga_dag" in output
        assert "committed: False" in output


class TestFdlTool:
    @pytest.fixture
    def fdl_file(self, spec_file, tmp_path):
        fdl_path = tmp_path / "doc.fdl"
        run_fmtm(spec_file(SAGA), "--fdl-out", str(fdl_path))
        return str(fdl_path)

    def test_check(self, fdl_file):
        code, output = run_fdl("check", fdl_file)
        assert code == 0
        assert "ok: 1 process(es)" in output

    def test_summary(self, fdl_file):
        code, output = run_fdl("summary", fdl_file)
        assert code == 0
        assert "PROCESS Saga_travel" in output
        assert "block" in output

    def test_roundtrip(self, fdl_file):
        code, output = run_fdl("roundtrip", fdl_file)
        assert code == 0
        assert "stable" in output

    def test_check_invalid_file(self, tmp_path):
        bad = tmp_path / "bad.fdl"
        bad.write_text("PROCESS 'x' END 'y'")
        code, output = run_fdl("check", str(bad))
        assert code == 1
        assert "error:" in output

    def test_missing_file(self):
        code, output = run_fdl("check", "/nonexistent.fdl")
        assert code == 1
