"""Tests for the command-line tools."""

import io

import pytest

from repro.tools.fdl import main as fdl_main
from repro.tools.fmtm import main as fmtm_main

SAGA = """
MODEL SAGA 'travel'
  STEP 'flight'
  STEP 'hotel'
END 'travel'
"""

FLEX = """
MODEL FLEXIBLE 'f'
  SUBTRANSACTION 'a' COMPENSATABLE
  SUBTRANSACTION 'p' PIVOT
  SUBTRANSACTION 'r' RETRIABLE
  PATH 'a' 'p'
  PATH 'a' 'r'
END 'f'
"""

CONTRACT = """
MODEL CONTRACT 'order'
  CONTEXT 'Amount' LONG
  STEP 'reserve'
  STEP 'insure' WHEN "Amount > 100"
END 'order'
"""


@pytest.fixture
def spec_file(tmp_path):
    def write(text, name="spec.fmtm"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


def run_fmtm(*argv):
    out = io.StringIO()
    code = fmtm_main(list(argv), out=out)
    return code, out.getvalue()


def run_fdl(*argv):
    out = io.StringIO()
    code = fdl_main(list(argv), out=out)
    return code, out.getvalue()


class TestFmtmTool:
    def test_translate_saga(self, spec_file):
        code, output = run_fmtm(spec_file(SAGA))
        assert code == 0
        assert "Saga_travel" in output
        assert "build_template" in output

    def test_run_saga_success(self, spec_file):
        code, output = run_fmtm(spec_file(SAGA), "--run")
        assert code == 0
        assert "committed: True" in output
        assert "'flight': 1" in output

    def test_run_saga_with_abort(self, spec_file):
        code, output = run_fmtm(spec_file(SAGA), "--run", "--abort", "hotel")
        assert code == 0
        assert "committed: False" in output
        assert "compensated: ['flight']" in output

    def test_run_flexible_fallback(self, spec_file):
        code, output = run_fmtm(spec_file(FLEX), "--run", "--abort", "p")
        assert code == 0
        assert "committed: True" in output
        assert "committed_path: ['a', 'r']" in output

    def test_run_contract_with_input(self, spec_file):
        code, output = run_fmtm(
            spec_file(CONTRACT), "--run", "--input", "Amount=50"
        )
        assert code == 0
        assert "skipped: ['insure']" in output

    def test_fdl_out_written(self, spec_file, tmp_path):
        fdl_path = tmp_path / "out.fdl"
        code, output = run_fmtm(spec_file(SAGA), "--fdl-out", str(fdl_path))
        assert code == 0
        assert fdl_path.exists()
        assert "PROCESS 'Saga_travel'" in fdl_path.read_text()

    def test_missing_file_is_an_error(self):
        code, output = run_fmtm("/nonexistent/spec.fmtm")
        assert code == 1
        assert "error:" in output

    def test_bad_spec_is_an_error(self, spec_file):
        code, output = run_fmtm(spec_file("MODEL SAGA 'x'\n"))
        assert code == 1
        assert "error:" in output

    def test_bad_input_pair_is_an_error(self, spec_file):
        code, output = run_fmtm(
            spec_file(CONTRACT), "--run", "--input", "Amount"
        )
        assert code == 1
        assert "NAME=VALUE" in output

    def test_dag_saga_routes_to_parallel_translation(self, spec_file):
        text = """
        MODEL SAGA 'dag'
          STEP 'a'
          STEP 'b'
          STEP 'c'
          ORDER 'a' 'b'
          ORDER 'a' 'c'
        END 'dag'
        """
        code, output = run_fmtm(spec_file(text), "--run", "--abort", "b")
        assert code == 0
        assert "PSaga_dag" in output
        assert "committed: False" in output


class TestFdlTool:
    @pytest.fixture
    def fdl_file(self, spec_file, tmp_path):
        fdl_path = tmp_path / "doc.fdl"
        run_fmtm(spec_file(SAGA), "--fdl-out", str(fdl_path))
        return str(fdl_path)

    def test_check(self, fdl_file):
        code, output = run_fdl("check", fdl_file)
        assert code == 0
        assert "ok: 1 process(es)" in output

    def test_summary(self, fdl_file):
        code, output = run_fdl("summary", fdl_file)
        assert code == 0
        assert "PROCESS Saga_travel" in output
        assert "block" in output

    def test_roundtrip(self, fdl_file):
        code, output = run_fdl("roundtrip", fdl_file)
        assert code == 0
        assert "stable" in output

    def test_check_invalid_file(self, tmp_path):
        bad = tmp_path / "bad.fdl"
        bad.write_text("PROCESS 'x' END 'y'")
        code, output = run_fdl("check", str(bad))
        assert code == 1
        assert "error:" in output

    def test_missing_file(self):
        code, output = run_fdl("check", "/nonexistent.fdl")
        assert code == 1


class TestMonitorNetViews:
    """The monitor's NET and DLQ commands over a live broker and over
    a snapshot dump."""

    def test_net_view_from_live_broker_and_from_file(self, tmp_path, capsys):
        import json

        from repro.net import BusServerThread, SocketBus
        from repro.tools.monitor import main as monitor_main

        with BusServerThread(queue_capacity=2, name="test-broker") as broker:
            host, port = broker.address
            with SocketBus(host, port, name="seeder") as bus:
                bus.send("node:w", {"n": 1})
                assert monitor_main(["net", "%s:%d" % (host, port)]) == 0
                live = capsys.readouterr().out
                assert "BROKER test-broker" in live
                assert "seeder" in live and "node:w" in live
                assert "capacity 2" in live
                # the same render from a snapshot dump, broker gone
                path = tmp_path / "net.json"
                path.write_text(json.dumps(bus.snapshot()))
        assert monitor_main(["net", str(path)]) == 0
        assert "BROKER test-broker" in capsys.readouterr().out

    def test_dlq_inspect_and_drain(self, capsys):
        from repro.net import BusServerThread, SocketBus
        from repro.tools.monitor import main as monitor_main

        with BusServerThread(queue_capacity=1) as broker:
            host, port = broker.address
            target = "%s:%d" % (host, port)
            with SocketBus(host, port, name="seeder") as bus:
                bus.send("node:w", {"n": 1})
                try:
                    bus.send("node:w", {"n": 2})
                except Exception:
                    pass
                assert monitor_main(["dlq", target]) == 0
                shown = capsys.readouterr().out
                assert "DEAD LETTERS (1)" in shown
                assert "queue overflow" in shown
                assert (
                    monitor_main(
                        ["dlq", target, "--queue", "node:w", "--drain"]
                    )
                    == 0
                )
                assert "requeued 1" in capsys.readouterr().out
                assert bus.depth("node:w") == 2
                assert bus.dlq_entries() == []

    def test_flows_view_from_snapshot_dump(self, tmp_path, capsys):
        import json

        from repro.flow import install_flows, step, workflow
        from repro.tools.monitor import main as monitor_main
        from repro.wfms import Engine

        @step
        def double(x):
            return x * 2

        @workflow
        def doubler(flow, x):
            return double(double(x))

        engine = Engine()
        rt = install_flows(engine, [doubler], seed=11)
        rt.start("doubler", 21)
        engine.run()
        path = tmp_path / "flows.json"
        path.write_text(json.dumps(rt.snapshot()))
        assert monitor_main(["flows", str(path)]) == 0
        shown = capsys.readouterr().out
        assert "FLOWS (1 registered)" in shown
        assert "doubler" in shown
        assert "replayed 1 loop / 0 resume" in shown

    def test_dlq_requires_live_target(self, capsys):
        from repro.tools.monitor import main as monitor_main

        assert monitor_main(["dlq", "not-a-target"]) == 2
        assert "HOST:PORT" in capsys.readouterr().out

    def test_net_bad_target_is_an_error(self, capsys):
        from repro.tools.monitor import main as monitor_main

        assert monitor_main(["net", "no/such/file"]) == 1
        assert "error" in capsys.readouterr().out
