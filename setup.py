"""Legacy setup script.

The reproduction environment is offline and has no ``wheel`` package,
so PEP 517 editable installs (which build a wheel) cannot work.  This
script lets ``pip install -e .`` fall back to ``setup.py develop``.
Metadata mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Workflow-based implementation of advanced transaction models "
        "(reproduction of Alonso et al., ICDE 1996)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
