"""Workloads used by the examples, tests and benchmarks.

* :mod:`repro.workloads.travel` — the travel-booking saga (flight,
  hotel, car across autonomous sites), the classic Sagas motivation.
* :mod:`repro.workloads.banking` — multidatabase funds transfer as a
  flexible transaction, plus the paper's Figure 3 example spec.
* :mod:`repro.workloads.orders` — an order-fulfilment business process
  exercising every Figure 1 metamodel element (roles, manual steps,
  AND/OR joins, loops, data flow).
* :mod:`repro.workloads.generator` — seeded random generators: linear
  sagas, well-formed flexible specifications and layered DAG processes
  for the engine benchmarks and property-based tests.
"""

from repro.workloads.travel import TravelWorkload
from repro.workloads.banking import TransferWorkload, fig3_spec, fig3_bindings
from repro.workloads.orders import build_order_process, order_organization
from repro.workloads.generator import (
    random_dag_process,
    random_flexible_spec,
    random_saga_spec,
)

__all__ = [
    "TransferWorkload",
    "TravelWorkload",
    "build_order_process",
    "fig3_bindings",
    "fig3_spec",
    "order_organization",
    "random_dag_process",
    "random_flexible_spec",
    "random_saga_spec",
]
