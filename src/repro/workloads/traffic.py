"""Open-loop traffic driver for the socket transport.

Closed-loop load tests (send, wait, send again) famously flatter a
system: when the server slows down, the load generator slows down with
it — the *coordinated omission* problem.  This driver is **open
loop**: the request arrival times are computed up front from the
target rate (fixed spacing or a seeded Poisson process) and each
request is fired at its scheduled instant whether or not earlier
requests have completed.  When the broker can't keep up, queueing
delay shows up in the tail latency instead of silently stretching the
schedule — which is exactly the regime the broker's bounded queues and
load shedding exist for, and the only honest way to measure them.

Topology (three connections to one broker):

* the **arrival loop** (caller's thread) sends one request per
  scheduled arrival to the service queue, stamping the send time in
  the body; typed admission rejections (overflow, shed) are counted,
  not retried — an open-loop driver never blocks on the system under
  test;
* a **responder** thread plays the service: receive, reply to the
  request's reply queue, ack;
* a **collector** thread drains the reply queue and observes
  ``reply_received - request_sent`` wall-clock latency into a
  :class:`repro.obs.metrics.Histogram`, from whose buckets the report
  reads p50/p99 (:meth:`~repro.obs.metrics.Histogram.quantile`).

The report is JSON-native; the CLI (``python -m
repro.workloads.traffic``) sweeps a list of rates and writes the
report file CI uploads as an artifact.  Committed reference numbers
live in README.md §Networking.
"""

from __future__ import annotations

import json
import random
import threading
import time
from typing import Any

from repro.errors import ConnectionLost, LoadShedded, NetError, QueueOverflow
from repro.obs.metrics import Histogram

#: Latency buckets (seconds): exponential from 0.2 ms to ~28 s —
#: sub-millisecond resolution where the healthy broker lives, enough
#: headroom to see an overloaded tail without saturating the +Inf slot.
LATENCY_BUCKETS = tuple(0.0002 * (1.5**k) for k in range(30))

#: Idle poll interval for the responder/collector loops (seconds).
_POLL = 0.0005


def arrival_offsets(
    requests: int,
    rate: float,
    *,
    distribution: str = "fixed",
    seed: int = 0,
) -> list[float]:
    """Scheduled send offsets (seconds from start) for ``requests``
    arrivals at ``rate``/sec.

    ``fixed`` spaces arrivals evenly (offset i/rate); ``poisson``
    draws seeded exponential inter-arrival gaps with mean 1/rate —
    same long-run rate, bursty like real traffic.
    """
    if rate <= 0:
        raise NetError("arrival rate must be positive")
    if distribution == "fixed":
        return [i / rate for i in range(requests)]
    if distribution == "poisson":
        rng = random.Random(seed)
        offsets: list[float] = []
        clock = 0.0
        for __ in range(requests):
            clock += rng.expovariate(rate)
            offsets.append(clock)
        return offsets
    raise NetError(
        "unknown arrival distribution %r (fixed or poisson)" % distribution
    )


def _responder(
    make_bus, queue: str, counters: dict[str, int], stop: threading.Event
) -> None:
    """The echoing service: every request is answered to its
    ``reply_to`` queue with the original send stamp."""
    with make_bus("traffic-responder") as bus:
        while not stop.is_set():
            try:
                taken = bus.receive(queue)
                if taken is None:
                    time.sleep(_POLL)
                    continue
                msg_id, body = taken
                try:
                    bus.send(
                        body["reply_to"],
                        {"id": body["id"], "sent_at": body["sent_at"]},
                    )
                except (QueueOverflow, LoadShedded):
                    # Under overload the *reply* queue can reject too;
                    # the request is still consumed (the collector just
                    # never sees its reply) — the service must not die
                    # with it.
                    pass
                bus.ack(queue, msg_id)
            except ConnectionLost:
                # Broker bounce mid-sweep: count it and keep serving —
                # the client reconnects (and resumes its in-flight
                # claims) on the next call.
                counters["lost"] += 1
                time.sleep(_POLL)


def _collector(
    make_bus,
    reply_queue: str,
    histogram: Histogram,
    counters: dict[str, int],
    stop: threading.Event,
) -> None:
    """Drain replies, observing wall-clock latency per request."""
    with make_bus("traffic-collector") as bus:
        while not stop.is_set():
            try:
                taken = bus.receive(reply_queue)
                if taken is None:
                    time.sleep(_POLL)
                    continue
                msg_id, body = taken
                histogram.observe(time.perf_counter() - body["sent_at"])
                bus.ack(reply_queue, msg_id)
                counters["completed"] += 1
            except ConnectionLost:
                counters["lost"] += 1
                time.sleep(_POLL)


def run_open_loop(
    make_bus,
    *,
    rate: float,
    requests: int,
    distribution: str = "fixed",
    seed: int = 0,
    queue: str = "node:traffic",
    reply_queue: str = "replies:traffic",
    drain_timeout: float = 10.0,
) -> dict[str, Any]:
    """One open-loop run; returns the latency/throughput report.

    ``make_bus(name)`` builds a fresh bus connection — pass e.g.
    ``lambda name: SocketBus(host, port, name=name)``.  Three
    connections are used (arrivals, responder, collector), matching
    the broker's one-outstanding-request-per-connection discipline.
    """
    histogram = Histogram(buckets=LATENCY_BUCKETS)
    counters = {"completed": 0, "lost": 0}
    stop = threading.Event()
    offsets = arrival_offsets(
        requests, rate, distribution=distribution, seed=seed
    )
    threads = [
        threading.Thread(
            target=_responder,
            args=(make_bus, queue, counters, stop),
            name="traffic-responder",
            daemon=True,
        ),
        threading.Thread(
            target=_collector,
            args=(make_bus, reply_queue, histogram, counters, stop),
            name="traffic-collector",
            daemon=True,
        ),
    ]
    for thread in threads:
        thread.start()
    sent = overflowed = shed = 0
    try:
        with make_bus("traffic-arrivals") as bus:
            start = time.perf_counter()
            for index, offset in enumerate(offsets):
                # Open loop: fire at the scheduled instant, late or
                # not — never wait on the system under test.
                lag = start + offset - time.perf_counter()
                if lag > 0:
                    time.sleep(lag)
                try:
                    bus.send(
                        queue,
                        {
                            "id": index,
                            "reply_to": reply_queue,
                            "sent_at": time.perf_counter(),
                        },
                    )
                    sent += 1
                except QueueOverflow:
                    overflowed += 1
                except LoadShedded:
                    shed += 1
                except ConnectionLost:
                    # The broker is down *right now* (bounce window
                    # longer than the reconnect budget).  Open loop:
                    # drop this arrival, keep the schedule.
                    counters["lost"] += 1
            deadline = time.perf_counter() + drain_timeout
            while (
                counters["completed"] < sent
                and time.perf_counter() < deadline
            ):
                time.sleep(_POLL)
            elapsed = time.perf_counter() - start
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=5)
    completed = counters["completed"]
    return {
        "rate": rate,
        "distribution": distribution,
        "seed": seed,
        "requests": requests,
        "sent": sent,
        "overflowed": overflowed,
        "shed": shed,
        "lost": counters["lost"],
        "completed": completed,
        "elapsed_sec": round(elapsed, 4),
        "throughput_per_sec": round(completed / elapsed, 1) if elapsed else 0.0,
        "latency": {
            "count": histogram.count,
            "mean_ms": round(1e3 * histogram.sum / histogram.count, 3)
            if histogram.count
            else 0.0,
            "p50_ms": round(1e3 * histogram.quantile(0.50), 3),
            "p99_ms": round(1e3 * histogram.quantile(0.99), 3),
        },
    }


def run_sweep(
    make_bus,
    rates: list[float],
    *,
    requests: int = 200,
    distribution: str = "fixed",
    seed: int = 0,
) -> list[dict[str, Any]]:
    """One report per rate, same connection factory throughout."""
    return [
        run_open_loop(
            make_bus,
            rate=rate,
            requests=requests,
            distribution=distribution,
            seed=seed,
        )
        for rate in rates
    ]


def main(argv: list[str] | None = None) -> int:
    """CLI: sweep arrival rates against a broker (an in-process one by
    default) and print/write the latency report."""
    import argparse
    import os

    parser = argparse.ArgumentParser(
        description="open-loop traffic driver for the socket transport"
    )
    parser.add_argument(
        "--rates",
        default="50,200,500",
        help="comma-separated arrival rates per second (default: 50,200,500)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=200,
        help="requests per rate point (default: 200)",
    )
    parser.add_argument(
        "--distribution",
        choices=("fixed", "poisson"),
        default="poisson",
        help="arrival process (default: poisson)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="drive an existing broker instead of starting one",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        help="bound the in-process broker's queues (admission control)",
    )
    parser.add_argument(
        "--json-out", metavar="FILE", help="write the full report as JSON"
    )
    args = parser.parse_args(argv)
    rates = [float(rate) for rate in args.rates.split(",") if rate]

    from repro.net.client import SocketBus

    def sweep_against(address) -> list[dict[str, Any]]:
        return run_sweep(
            lambda name: SocketBus(*address, name=name),
            rates,
            requests=args.requests,
            distribution=args.distribution,
            seed=args.seed,
        )

    if args.connect:
        host, __, port = args.connect.rpartition(":")
        runs = sweep_against((host, int(port)))
    else:
        from repro.net.server import BusServerThread

        with BusServerThread(queue_capacity=args.queue_capacity) as broker:
            runs = sweep_against(broker.address)

    print(
        "%10s %8s %8s %8s %8s %10s %10s"
        % ("rate/s", "sent", "done", "rejected", "tput/s", "p50 ms", "p99 ms")
    )
    for run in runs:
        print(
            "%10.0f %8d %8d %8d %8.0f %10.3f %10.3f"
            % (
                run["rate"],
                run["sent"],
                run["completed"],
                run["overflowed"] + run["shed"],
                run["throughput_per_sec"],
                run["latency"]["p50_ms"],
                run["latency"]["p99_ms"],
            )
        )
    if args.json_out:
        report = {
            "distribution": args.distribution,
            "requests_per_rate": args.requests,
            "seed": args.seed,
            "cpu_count": os.cpu_count(),
            "runs": runs,
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.json_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
