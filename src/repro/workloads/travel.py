"""The travel-booking saga.

The canonical long-lived transaction from the Sagas paper: book a
flight, a hotel and a car at three *autonomous* sites; if any booking
fails, the earlier bookings are cancelled (compensated).  Bindings run
against a :class:`Multidatabase`, so each booking really is a local
ACID transaction that may unilaterally abort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TransactionAborted
from repro.tx.database import Transaction
from repro.tx.failures import FailurePolicy
from repro.tx.multidb import Multidatabase
from repro.tx.subtransaction import Subtransaction
from repro.core.sagas import SagaSpec, SagaStep

#: (step name, site, resource key) of the classic itinerary.
ITINERARY = (
    ("book_flight", "airline", "seats"),
    ("book_hotel", "hotel", "rooms"),
    ("book_car", "rental", "cars"),
)


@dataclass
class TravelWorkload:
    """A bound travel-booking saga over three sites.

    >>> workload = TravelWorkload.fresh(capacity=5)
    >>> spec = workload.spec
    >>> sorted(workload.actions)
    ['book_car', 'book_flight', 'book_hotel']
    """

    mdb: Multidatabase
    spec: SagaSpec
    actions: dict[str, Subtransaction]
    compensations: dict[str, Subtransaction]
    customer: str = "cust-1"
    recorder: list = field(default_factory=list)

    @classmethod
    def fresh(
        cls,
        *,
        capacity: int = 5,
        customer: str = "cust-1",
        policies: dict[str, FailurePolicy] | None = None,
    ) -> "TravelWorkload":
        """Build a workload with ``capacity`` units at each site.

        ``policies`` optionally injects a failure policy per step name.
        """
        mdb = Multidatabase()
        recorder: list = []
        for __, site, key in ITINERARY:
            database = mdb.add_site(site)
            with database.begin() as txn:
                txn.write(key, capacity)
        spec = SagaSpec(
            "travel", [SagaStep(name) for name, __, __ in ITINERARY]
        )
        policies = policies or {}
        actions: dict[str, Subtransaction] = {}
        compensations: dict[str, Subtransaction] = {}
        for name, site, key in ITINERARY:
            database = mdb.site(site)
            sub = Subtransaction(
                name,
                database,
                _book(key, customer),
                recorder=recorder,
            )
            if name in policies:
                sub.policy = policies[name]
            actions[name] = sub
            compensations[name] = Subtransaction(
                "cancel_%s" % name,
                database,
                _cancel(key, customer),
                recorder=recorder,
            )
        return cls(mdb, spec, actions, compensations, customer, recorder)

    def bookings(self) -> dict[str, int]:
        """site -> remaining capacity (for assertions)."""
        out = {}
        for __, site, key in ITINERARY:
            out[site] = self.mdb.site(site).get(key)
        return out

    def reservation_flags(self) -> dict[str, bool]:
        """site -> whether this customer holds a reservation."""
        out = {}
        for __, site, key in ITINERARY:
            out[site] = bool(
                self.mdb.site(site).get("resv:%s" % self.customer)
            )
        return out

    def is_consistent(self) -> bool:
        """All-or-nothing: either every site holds the reservation or
        none does — the saga guarantee's effect on the data."""
        flags = list(self.reservation_flags().values())
        return all(flags) or not any(flags)


def _book(key: str, customer: str):
    def body(txn: Transaction) -> None:
        available = txn.read(key, 0)
        if available <= 0:
            raise TransactionAborted(
                "no %s left" % key, reason="sold out"
            )
        txn.write(key, available - 1)
        txn.write("resv:%s" % customer, 1)

    return body


def _cancel(key: str, customer: str):
    def body(txn: Transaction) -> None:
        if txn.read("resv:%s" % customer, 0):
            txn.write("resv:%s" % customer, 0)
            txn.increment(key, 1)

    return body
