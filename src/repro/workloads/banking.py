"""Flexible-transaction workloads.

Two pieces:

* :func:`fig3_spec` / :func:`fig3_bindings` — the paper's Figure 3
  example, verbatim: eight subtransactions (t1 compensatable; t2, t4,
  t8 pivots; t3, t7 retriable; t5, t6 compensatable) and the three
  preference-ordered paths.  The FIG3/FIG4/APP-F experiments run it
  under scripted aborts.
* :class:`TransferWorkload` — a realistic multidatabase funds
  transfer: debit at the customer's bank (pivot), then credit through
  the preferred clearing house, falling back to a slower-but-reliable
  one; booking the audit record is retriable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TransactionAborted
from repro.tx.database import SimDatabase, Transaction
from repro.tx.failures import FailurePolicy
from repro.tx.multidb import Multidatabase
from repro.tx.subtransaction import Subtransaction, write_value
from repro.core.flexible import FlexibleMember, FlexibleSpec

FIG3_MEMBERS = (
    FlexibleMember("t1", compensatable=True),
    FlexibleMember("t2"),                      # pivot
    FlexibleMember("t3", retriable=True),
    FlexibleMember("t4"),                      # pivot
    FlexibleMember("t5", compensatable=True),
    FlexibleMember("t6", compensatable=True),
    FlexibleMember("t7", retriable=True),
    FlexibleMember("t8"),                      # pivot
)

FIG3_PATHS = (
    ("t1", "t2", "t4", "t5", "t6", "t8"),   # p1, preferred
    ("t1", "t2", "t4", "t7"),               # p2
    ("t1", "t2", "t3"),                     # p3
)


def fig3_spec() -> FlexibleSpec:
    """The flexible transaction of the paper's Figure 3."""
    return FlexibleSpec(
        "fig3",
        list(FIG3_MEMBERS),
        [list(path) for path in FIG3_PATHS],
    )


def fig3_bindings(
    database: SimDatabase,
    policies: dict[str, FailurePolicy] | None = None,
    recorder: list | None = None,
) -> tuple[dict[str, Subtransaction], dict[str, Subtransaction]]:
    """Actions/compensations for the Figure 3 example: each member
    writes a flag key, each compensation clears it."""
    policies = policies or {}
    actions: dict[str, Subtransaction] = {}
    compensations: dict[str, Subtransaction] = {}
    for member in FIG3_MEMBERS:
        sub = Subtransaction(
            member.name,
            database,
            write_value(member.name, 1),
            recorder=recorder,
        )
        if member.name in policies:
            sub.policy = policies[member.name]
        actions[member.name] = sub
        compensations[member.name] = Subtransaction(
            "c%s" % member.name,
            database,
            write_value(member.name, 0),
            recorder=recorder,
        )
    return actions, compensations


@dataclass
class TransferWorkload:
    """Funds transfer across a multidatabase as a flexible transaction.

    Members:

    * ``debit`` — withdraw at the customer's bank.  Compensatable (a
      refund undoes it).
    * ``credit_fast`` — credit through the fast clearing house.  A
      pivot: once the beneficiary is credited there, it cannot be
      undone, and the house may unilaterally reject.
    * ``credit_slow`` — credit through the reliable house.  Retriable.
    * ``audit`` — record the transfer in the audit store.  Retriable.

    Paths (preference order)::

        debit -> credit_fast -> audit
        debit -> credit_slow -> audit
    """

    mdb: Multidatabase
    spec: FlexibleSpec
    actions: dict[str, Subtransaction]
    compensations: dict[str, Subtransaction]
    amount: int = 100
    recorder: list = field(default_factory=list)

    @classmethod
    def fresh(
        cls,
        *,
        balance: int = 500,
        amount: int = 100,
        policies: dict[str, FailurePolicy] | None = None,
    ) -> "TransferWorkload":
        mdb = Multidatabase()
        bank = mdb.add_site("bank")
        fast = mdb.add_site("fast_house")
        slow = mdb.add_site("slow_house")
        audit = mdb.add_site("audit")
        with bank.begin() as txn:
            txn.write("balance", balance)
        spec = FlexibleSpec(
            "transfer",
            [
                FlexibleMember("debit", compensatable=True),
                FlexibleMember("credit_fast"),            # pivot
                FlexibleMember("credit_slow", retriable=True),
                FlexibleMember("audit", retriable=True),
            ],
            [
                ["debit", "credit_fast", "audit"],
                ["debit", "credit_slow", "audit"],
            ],
        )
        recorder: list = []
        policies = policies or {}
        actions = {
            "debit": Subtransaction(
                "debit", bank, _debit(amount), recorder=recorder
            ),
            "credit_fast": Subtransaction(
                "credit_fast", fast, _credit(amount), recorder=recorder
            ),
            "credit_slow": Subtransaction(
                "credit_slow", slow, _credit(amount), recorder=recorder
            ),
            "audit": Subtransaction(
                "audit", audit, write_value("transfer", amount),
                recorder=recorder,
            ),
        }
        for name, policy in policies.items():
            actions[name].policy = policy
        compensations = {
            "debit": Subtransaction(
                "refund", bank, _refund(amount), recorder=recorder
            ),
        }
        return cls(mdb, spec, actions, compensations, amount, recorder)

    def balances(self) -> dict[str, int]:
        return {
            "bank": self.mdb.site("bank").get("balance", 0),
            "fast_house": self.mdb.site("fast_house").get("credited", 0),
            "slow_house": self.mdb.site("slow_house").get("credited", 0),
            "audit": self.mdb.site("audit").get("transfer", 0),
        }

    def money_conserved(self, initial_balance: int = 500) -> bool:
        """Funds either moved once or not at all — never duplicated or
        lost, the flexible-transaction 'atomicity' over the federation."""
        balance = self.mdb.site("bank").get("balance", 0)
        credited = self.mdb.site("fast_house").get(
            "credited", 0
        ) + self.mdb.site("slow_house").get("credited", 0)
        return balance + credited == initial_balance and credited in (
            0,
            self.amount,
        )


def _debit(amount: int):
    def body(txn: Transaction) -> None:
        balance = txn.read("balance", 0)
        if balance < amount:
            raise TransactionAborted(
                "insufficient funds", reason="insufficient funds"
            )
        txn.write("balance", balance - amount)

    return body


def _refund(amount: int):
    def body(txn: Transaction) -> None:
        txn.increment("balance", amount)

    return body


def _credit(amount: int):
    def body(txn: Transaction) -> None:
        txn.increment("credited", amount)

    return body
