"""Seeded random workload generators.

Used by the engine-throughput benchmarks (layered DAG processes), the
failure-rate sweeps (random sagas and flexible specifications) and the
property-based tests.  Everything is deterministic given the seed.
"""

from __future__ import annotations

import random

from repro.tx.database import SimDatabase
from repro.tx.failures import AbortProbability, FailurePolicy
from repro.tx.subtransaction import Subtransaction, write_value
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.model import Activity, ProcessDefinition, StartCondition
from repro.core.flexible import FlexibleMember, FlexibleSpec
from repro.core.sagas import SagaSpec, SagaStep

#: Program name every generated DAG activity uses.
DAG_PROGRAM = "work"


def random_dag_process(
    *,
    layers: int,
    width: int,
    seed: int = 0,
    edge_probability: float = 0.5,
    fail_probability: float = 0.0,
    name: str = "",
) -> ProcessDefinition:
    """A layered random DAG process of ``layers`` x ``width`` program
    activities; edges only go from layer *i* to layer *i+1*.

    With ``fail_probability`` > 0, some edges carry ``RC = 0``
    conditions so dead-path elimination gets exercised (the registered
    ``work`` program must then return 0/1 as it sees fit).
    """
    rng = random.Random(seed)
    d = ProcessDefinition(
        name or "DAG_%dx%d_s%d" % (layers, width, seed)
    )
    grid = [
        ["a_%d_%d" % (layer, i) for i in range(width)]
        for layer in range(layers)
    ]
    for layer in grid:
        for node in layer:
            d.add_activity(
                Activity(
                    node,
                    program=DAG_PROGRAM,
                    start_condition=(
                        StartCondition.ANY
                        if rng.random() < 0.3
                        else StartCondition.ALL
                    ),
                )
            )
    for layer_index in range(layers - 1):
        for target in grid[layer_index + 1]:
            sources = [
                node
                for node in grid[layer_index]
                if rng.random() < edge_probability
            ]
            if not sources:
                sources = [rng.choice(grid[layer_index])]
            for source in sources:
                condition = None
                if fail_probability and rng.random() < fail_probability:
                    condition = "RC = 0"
                d.connect(source, target, condition)
    return d


def random_saga_spec(*, length: int, seed: int = 0, name: str = "") -> SagaSpec:
    """A linear saga of ``length`` steps with conventional names."""
    if length < 1:
        raise ValueError("length must be >= 1")
    rng = random.Random(seed)
    label = name or "saga%d_s%d" % (length, seed)
    steps = [
        SagaStep("s%02d" % i) for i in range(1, length + 1)
    ]
    rng.random()  # reserved for future shape variation; keeps seeds stable
    return SagaSpec(label, steps)


def saga_bindings(
    spec: SagaSpec,
    database: SimDatabase,
    *,
    policies: dict[str, FailurePolicy] | None = None,
    abort_probability: float = 0.0,
    seed: int = 0,
    recorder: list | None = None,
) -> tuple[dict[str, Subtransaction], dict[str, Subtransaction]]:
    """Bind a generated saga to a database.

    Each step writes its own key; compensation clears it.  Policies can
    be given per step or drawn i.i.d. from ``abort_probability``.
    """
    policies = dict(policies or {})
    actions: dict[str, Subtransaction] = {}
    compensations: dict[str, Subtransaction] = {}
    for index, step in enumerate(spec.steps):
        policy = policies.get(step.name)
        if policy is None and abort_probability:
            policy = AbortProbability(abort_probability, seed=seed + index)
        sub = Subtransaction(
            step.name, database, write_value(step.name, 1), recorder=recorder
        )
        if policy is not None:
            sub.policy = policy
        actions[step.name] = sub
        compensations[step.name] = Subtransaction(
            "c_%s" % step.name,
            database,
            write_value(step.name, 0),
            recorder=recorder,
        )
    return actions, compensations


def random_flexible_spec(
    *, branches: int = 2, seed: int = 0, name: str = ""
) -> FlexibleSpec:
    """A well-formed-by-construction flexible specification.

    Shape: a compensatable prefix, a pivot, then ``branches``
    alternatives — each alternative is a run of compensatables ending
    in a pivot, except the last, which is a single retriable member
    (the guaranteed way out).  This is exactly the [ZNBB94] shape, so
    `check_well_formed` accepts every generated spec (asserted by the
    property tests).
    """
    if branches < 1:
        raise ValueError("branches must be >= 1")
    rng = random.Random(seed)
    label = name or "flex%d_s%d" % (branches, seed)
    members: list[FlexibleMember] = []
    prefix: list[str] = []
    for i in range(rng.randint(1, 3)):
        member = FlexibleMember("pre%d" % i, compensatable=True)
        members.append(member)
        prefix.append(member.name)
    pivot = FlexibleMember("pivot")
    members.append(pivot)
    prefix.append(pivot.name)
    paths: list[list[str]] = []
    for branch in range(branches - 1):
        branch_members: list[str] = []
        for i in range(rng.randint(1, 3)):
            member = FlexibleMember(
                "b%d_c%d" % (branch, i), compensatable=True
            )
            members.append(member)
            branch_members.append(member.name)
        closer = FlexibleMember("b%d_end" % branch)
        members.append(closer)
        branch_members.append(closer.name)
        paths.append(prefix + branch_members)
    fallback = FlexibleMember("fallback", retriable=True)
    members.append(fallback)
    paths.append(prefix + [fallback.name])
    return FlexibleSpec(label, members, paths)


def flexible_bindings(
    spec: FlexibleSpec,
    database: SimDatabase,
    *,
    abort_probability: float = 0.0,
    seed: int = 0,
    recorder: list | None = None,
) -> tuple[dict[str, Subtransaction], dict[str, Subtransaction]]:
    """Bind a flexible spec to a database; retriable members get a
    bounded abort probability so they always terminate."""
    actions: dict[str, Subtransaction] = {}
    compensations: dict[str, Subtransaction] = {}
    for index, (name, member) in enumerate(sorted(spec.members.items())):
        sub = Subtransaction(
            name, database, write_value(name, 1), recorder=recorder
        )
        if abort_probability:
            # Decorrelate member RNGs across scenario seeds (a plain
            # seed+index collides between nearby scenarios).
            sub.policy = AbortProbability(
                min(abort_probability, 0.9), seed=seed * 131 + index
            )
        actions[name] = sub
        if member.compensatable:
            compensations[name] = Subtransaction(
                "c_%s" % name,
                database,
                write_value(name, 0),
                recorder=recorder,
            )
    return actions, compensations
