"""An order-fulfilment business process (the FIG1 workload).

Exercises every element of the Figure 1 metamodel in one realistic
process:

* a process input container (the order) and output container,
* data connectors threading the order value through the steps,
* a **manual** approval step assigned by role, with an escalation
  deadline (organization + worklists + notifications),
* an AND-split / AND-join (inventory check and credit check run in
  parallel, shipping needs both),
* an OR-join (an order is billed whether it shipped normally or via
  the express fallback),
* a program activity with an exit-condition **loop** (packing retries
  until complete),
* a **block** activity (the shipping sub-workflow),
* dead-path elimination (the rejection branch dies on approval, and
  vice versa).
"""

from __future__ import annotations

from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.engine import Engine
from repro.wfms.model import (
    PROCESS_INPUT,
    PROCESS_OUTPUT,
    Activity,
    ActivityKind,
    ProcessDefinition,
    StaffAssignment,
    StartCondition,
    StartMode,
)
from repro.wfms.organization import Organization


def order_organization() -> Organization:
    org = Organization()
    org.add_role("approver", "approves orders")
    org.add_role("packer", "packs orders")
    org.add_role("supervisor", "handles escalations")
    org.add_person("sue", "Sue", roles=("supervisor",), level=2)
    org.add_person("al", "Al", roles=("approver",), level=1, manager="sue")
    org.add_person("amy", "Amy", roles=("approver",), level=1, manager="sue")
    org.add_person("pat", "Pat", roles=("packer",), level=1, manager="sue")
    return org


def register_order_programs(engine: Engine, *, pack_attempts: int = 2) -> None:
    """Register the order process's programs on ``engine``.

    ``pack_attempts`` controls how many times packing must run before
    its exit condition holds (the loop element).
    """

    def approve(ctx) -> int:
        amount = ctx.get_input("Amount")
        ctx.set_output("Approved", 1 if amount <= 1000 else 0)
        return 0

    def check_inventory(ctx) -> int:
        ctx.set_output("InStock", 1)
        return 0

    def check_credit(ctx) -> int:
        amount = ctx.get_input("Amount")
        ctx.set_output("CreditOK", 1 if amount <= 5000 else 0)
        return 0

    def pack(ctx) -> int:
        ctx.set_output("Complete", 1 if ctx.attempt >= pack_attempts else 0)
        return 0

    def ship(ctx) -> int:
        ctx.set_output("Shipped", 1)
        return 0

    def bill(ctx) -> int:
        ctx.set_output("Billed", ctx.get_input("Amount"))
        return 0

    def reject(ctx) -> int:
        ctx.set_output("Rejected", 1)
        return 0

    for name, program in [
        ("approve_order", approve),
        ("check_inventory", check_inventory),
        ("check_credit", check_credit),
        ("pack_order", pack),
        ("ship_order", ship),
        ("bill_customer", bill),
        ("reject_order", reject),
    ]:
        engine.register_program(name, program, replace=True)


def build_order_process(*, manual_approval: bool = True) -> ProcessDefinition:
    """Build the order-fulfilment definition."""
    amount = VariableDecl("Amount", DataType.LONG)
    d = ProcessDefinition(
        "OrderFulfillment",
        description="order fulfilment exercising the full metamodel",
        input_spec=[amount, VariableDecl("Customer", DataType.STRING)],
        output_spec=[
            VariableDecl("Billed", DataType.LONG),
            VariableDecl("Rejected", DataType.LONG),
        ],
    )
    d.add_activity(
        Activity(
            "Approve",
            program="approve_order",
            input_spec=[amount],
            output_spec=[VariableDecl("Approved", DataType.LONG)],
            start_mode=(
                StartMode.MANUAL if manual_approval else StartMode.AUTOMATIC
            ),
            staff=StaffAssignment(
                roles=("approver",),
                notify_after=60.0,
                notify_role="supervisor",
            ),
            description="a person approves or rejects the order",
        )
    )
    d.add_activity(
        Activity(
            "CheckInventory",
            program="check_inventory",
            output_spec=[VariableDecl("InStock", DataType.LONG)],
        )
    )
    d.add_activity(
        Activity(
            "CheckCredit",
            program="check_credit",
            input_spec=[amount],
            output_spec=[VariableDecl("CreditOK", DataType.LONG)],
        )
    )
    # Shipping block: pack (loops until complete), then ship.
    shipping = ProcessDefinition(
        "Shipping", output_spec=[VariableDecl("Shipped", DataType.LONG)]
    )
    shipping.add_activity(
        Activity(
            "Pack",
            program="pack_order",
            output_spec=[VariableDecl("Complete", DataType.LONG)],
            exit_condition="Complete = 1",
            max_iterations=10,
            staff=StaffAssignment(roles=("packer",)),
        )
    )
    shipping.add_activity(
        Activity(
            "Ship",
            program="ship_order",
            output_spec=[VariableDecl("Shipped", DataType.LONG)],
        )
    )
    shipping.connect("Pack", "Ship", "RC = 0")
    shipping.map_data("Ship", PROCESS_OUTPUT, [("Shipped", "Shipped")])
    d.add_activity(
        Activity(
            "ShipOrder",
            kind=ActivityKind.BLOCK,
            block=shipping,
            output_spec=[VariableDecl("Shipped", DataType.LONG)],
            start_condition=StartCondition.ALL,  # AND-join
        )
    )
    d.add_activity(
        Activity(
            "Bill",
            program="bill_customer",
            input_spec=[amount],
            output_spec=[VariableDecl("Billed", DataType.LONG)],
            start_condition=StartCondition.ANY,  # OR-join
        )
    )
    d.add_activity(
        Activity(
            "Reject",
            program="reject_order",
            output_spec=[VariableDecl("Rejected", DataType.LONG)],
        )
    )

    d.connect("Approve", "CheckInventory", "Approved = 1")
    d.connect("Approve", "CheckCredit", "Approved = 1")
    d.connect("Approve", "Reject", "Approved = 0")
    d.connect("CheckInventory", "ShipOrder", "InStock = 1")
    d.connect("CheckCredit", "ShipOrder", "CreditOK = 1")
    d.connect("ShipOrder", "Bill", "Shipped = 1")
    # Express fallback: even an out-of-stock order is billed (deposit).
    d.connect("CheckCredit", "Bill", "CreditOK = 0")

    d.map_data(PROCESS_INPUT, "Approve", [("Amount", "Amount")])
    d.map_data(PROCESS_INPUT, "CheckCredit", [("Amount", "Amount")])
    d.map_data(PROCESS_INPUT, "Bill", [("Amount", "Amount")])
    d.map_data("Bill", PROCESS_OUTPUT, [("Billed", "Billed")])
    d.map_data("Reject", PROCESS_OUTPUT, [("Rejected", "Rejected")])
    return d
