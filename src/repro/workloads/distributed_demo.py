"""Builders for the distributed-workflow demo topology.

A ``worker`` node serves a ``Double`` process; a requester node runs a
``Front`` process that calls it remotely and then adds one.  Shared by
the distributed tests, the DIST benchmark and the example.
"""

from __future__ import annotations

from repro.wfms import Activity, DataType, ProcessDefinition, VariableDecl
from repro.wfms.distributed import WorkflowNode
from repro.wfms.messaging import MessageBus
from repro.wfms.model import PROCESS_INPUT, PROCESS_OUTPUT


def configure_worker(node: WorkflowNode) -> None:
    """(Re-)register the worker's Double process on ``node``."""

    def double(ctx):
        ctx.set_output("Out", ctx.get_input("In") * 2)
        return 0

    node.engine.register_program("double", double, replace=True)
    defn = ProcessDefinition(
        "Double",
        input_spec=[VariableDecl("In", DataType.LONG)],
        output_spec=[VariableDecl("Out", DataType.LONG)],
    )
    defn.add_activity(
        Activity(
            "D",
            program="double",
            input_spec=[VariableDecl("In", DataType.LONG)],
            output_spec=[VariableDecl("Out", DataType.LONG)],
        )
    )
    defn.map_data(PROCESS_INPUT, "D", [("In", "In")])
    defn.map_data("D", PROCESS_OUTPUT, [("Out", "Out")])
    node.serve(defn)


def make_worker(
    bus: MessageBus,
    name: str = "worker",
    journal_path: str | None = None,
    observability=None,
    **node_kwargs,
) -> WorkflowNode:
    node = WorkflowNode(
        name,
        bus,
        journal_path=journal_path,
        observability=observability,
        **node_kwargs,
    )
    configure_worker(node)
    return node


def configure_requester(
    node: WorkflowNode,
    worker: str = "worker",
    remote_kwargs: dict | None = None,
) -> None:
    """(Re-)register the requester's Front process on ``node``.

    ``remote_kwargs`` forwards resilience knobs (``timeout``,
    ``retries``, ``poll_interval``) to the remote activity."""
    remote = node.remote_activity(
        "CallDouble",
        process="Double",
        node=worker,
        input_spec=[VariableDecl("In", DataType.LONG)],
        output_spec=[VariableDecl("Out", DataType.LONG)],
        **(remote_kwargs or {}),
    )

    def add_one(ctx):
        ctx.set_output("Final", ctx.get_input("Base") + 1)
        return 0

    node.engine.register_program("add_one", add_one, replace=True)
    defn = ProcessDefinition(
        "Front",
        input_spec=[VariableDecl("N", DataType.LONG)],
        output_spec=[VariableDecl("Result", DataType.LONG)],
    )
    defn.add_activity(remote)
    defn.add_activity(
        Activity(
            "AddOne",
            program="add_one",
            input_spec=[VariableDecl("Base", DataType.LONG)],
            output_spec=[VariableDecl("Final", DataType.LONG)],
        )
    )
    defn.connect("CallDouble", "AddOne", "Done = 1")
    defn.map_data(PROCESS_INPUT, "CallDouble", [("N", "In")])
    defn.map_data("CallDouble", "AddOne", [("Out", "Base")])
    defn.map_data("AddOne", PROCESS_OUTPUT, [("Final", "Result")])
    node.engine.register_definition(defn)


def make_requester(
    bus: MessageBus,
    name: str = "front",
    worker: str = "worker",
    journal_path: str | None = None,
    observability=None,
    remote_kwargs: dict | None = None,
    **node_kwargs,
) -> WorkflowNode:
    node = WorkflowNode(
        name,
        bus,
        journal_path=journal_path,
        observability=observability,
        **node_kwargs,
    )
    configure_requester(node, worker, remote_kwargs=remote_kwargs)
    return node
