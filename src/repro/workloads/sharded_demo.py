"""Builders for sharded-execution workloads.

Two topologies over a :class:`~repro.wfms.sharding.ShardedEngine`:

* :func:`configure_sharded_math` — the distributed demo's Front/Double
  pair with the worker target replaced by :data:`ANY_SHARD`: every
  shard serves ``Double``, every shard can own a ``Front`` root, and
  the call crosses shards (or loops back) by the partition rule.
  ``Front(N)`` yields ``Final = 2*N + 1``.

* :func:`configure_sharded_saga` — a cross-shard saga against a shared
  :class:`~repro.tx.SimDatabase`: a local step (``local=1``), a remote
  step served by whichever shard the request id hashes to
  (``remote=1``), and a local finish (``final=1``); the failure edges
  route through a remote compensation (``remote=0``) and a local one
  (``local=0``), both OR-joins, in reverse order.  The saga guarantee
  across shard boundaries is then checkable from the database alone:
  ``final=1`` implies ``local=1 and remote=1``; anything else implies
  ``local=0`` and ``remote != 1``.

Shared by ``tests/wfms/test_sharding.py``, the sharded chaos suite and
the sharded benchmarks.
"""

from __future__ import annotations

from typing import Any

from repro.resilience.policies import RetryPolicy
from repro.tx import SimDatabase, Subtransaction
from repro.tx.subtransaction import write_value
from repro.wfms import (
    Activity,
    DataType,
    ProcessDefinition,
    StartCondition,
    VariableDecl,
)
from repro.wfms.model import PROCESS_INPUT, PROCESS_OUTPUT
from repro.wfms.sharding import ANY_SHARD, ShardedEngine


def configure_sharded_math(
    sharded: ShardedEngine, remote_kwargs: dict[str, Any] | None = None
) -> None:
    """Register Front/Double on every shard (Front's remote call
    targets :data:`ANY_SHARD`).  ``remote_kwargs`` forwards resilience
    knobs (``timeout``, ``retries``, ``poll_interval``)."""

    def configure(node) -> None:
        def double(ctx):
            ctx.set_output("Out", ctx.get_input("In") * 2)
            return 0

        node.engine.register_program("double", double, replace=True)
        served = ProcessDefinition(
            "Double",
            input_spec=[VariableDecl("In", DataType.LONG)],
            output_spec=[VariableDecl("Out", DataType.LONG)],
        )
        served.add_activity(
            Activity(
                "D",
                program="double",
                input_spec=[VariableDecl("In", DataType.LONG)],
                output_spec=[VariableDecl("Out", DataType.LONG)],
            )
        )
        served.map_data(PROCESS_INPUT, "D", [("In", "In")])
        served.map_data("D", PROCESS_OUTPUT, [("Out", "Out")])
        node.serve(served)

        remote = node.remote_activity(
            "CallDouble",
            process="Double",
            node=ANY_SHARD,
            input_spec=[VariableDecl("In", DataType.LONG)],
            output_spec=[VariableDecl("Out", DataType.LONG)],
            **(remote_kwargs or {}),
        )

        def add_one(ctx):
            ctx.set_output("Final", ctx.get_input("Base") + 1)
            return 0

        node.engine.register_program("add_one", add_one, replace=True)
        front = ProcessDefinition(
            "Front",
            input_spec=[VariableDecl("N", DataType.LONG)],
            output_spec=[VariableDecl("Final", DataType.LONG)],
        )
        front.add_activity(remote)
        front.add_activity(
            Activity(
                "AddOne",
                program="add_one",
                input_spec=[VariableDecl("Base", DataType.LONG)],
                output_spec=[VariableDecl("Final", DataType.LONG)],
            )
        )
        front.connect("CallDouble", "AddOne")
        front.map_data(PROCESS_INPUT, "CallDouble", [("N", "In")])
        front.map_data("CallDouble", "AddOne", [("Out", "Base")])
        front.map_data("AddOne", PROCESS_OUTPUT, [("Final", "Final")])
        if "Front" not in node.engine.definitions():
            node.engine.register_definition(front)

    sharded.configure(configure)


#: Retry policy for the saga's subtransaction programs.  max_retries
#: must exceed the chaos rules' per-rule ``max_fires`` so injected
#: program faults are always absorbed by retries, never escalated —
#: compensations in particular must eventually run.
_SAGA_RETRY = dict(max_retries=6, base_delay=0.5, escalate_rc=1)


def configure_sharded_saga(
    sharded: ShardedEngine,
    db: SimDatabase,
    *,
    work_kwargs: dict[str, Any] | None = None,
    undo_kwargs: dict[str, Any] | None = None,
) -> None:
    """Register the cross-shard saga (``ShardSaga``) on every shard.

    ``work_kwargs`` tunes the forward remote call (tight budgets make
    escalation-driven aborts reachable under chaos); ``undo_kwargs``
    tunes the compensation call (generous budgets so the undo always
    lands — a saga may abort, but its compensation must not).
    """
    work_options = dict(
        timeout=5.0, retries=1, escalate_rc=1, **(work_kwargs or {})
    )
    undo_options = dict(
        timeout=30.0, retries=8, escalate_rc=1, **(undo_kwargs or {})
    )

    def configure(node) -> None:
        engine = node.engine

        def txn_program(name: str, key: str, value, ok_member: bool = False):
            def program(ctx):
                outcome = Subtransaction(
                    name, db, write_value(key, value)
                ).execute()
                if ok_member:
                    ctx.set_output("Ok", 1 if outcome.committed else 0)
                    return 0
                return 0 if outcome.committed else 1

            return program

        # Served remote processes: forward work and its compensation.
        engine.register_program(
            "txn_work", txn_program("work", "remote", 1, ok_member=True),
            replace=True,
        )
        work = ProcessDefinition(
            "ShardWork", output_spec=[VariableDecl("Ok", DataType.LONG)]
        )
        work.add_activity(
            Activity(
                "W",
                program="txn_work",
                output_spec=[VariableDecl("Ok", DataType.LONG)],
            )
        )
        work.map_data("W", PROCESS_OUTPUT, [("Ok", "Ok")])
        node.serve(work)

        engine.register_program(
            "txn_undo", txn_program("undo", "remote", 0), replace=True
        )
        undo = ProcessDefinition("ShardUndo")
        undo.add_activity(Activity("U", program="txn_undo"))
        node.serve(undo)

        # The requesting saga: S1 -> CallWork -> S3, with failure
        # edges into CallUndo -> C1 (both OR-joins).
        engine.register_program(
            "txn_s1", txn_program("s1", "local", 1), replace=True
        )
        engine.register_program(
            "txn_s3", txn_program("s3", "final", 1), replace=True
        )
        engine.register_program(
            "txn_c1", txn_program("c1", "local", 0), replace=True
        )
        for program in ("txn_work", "txn_undo", "txn_s1", "txn_s3", "txn_c1"):
            engine.set_retry(program, RetryPolicy(**_SAGA_RETRY))

        call_work = node.remote_activity(
            "CallWork",
            process="ShardWork",
            node=ANY_SHARD,
            output_spec=[VariableDecl("Ok", DataType.LONG)],
            **work_options,
        )
        call_undo = node.remote_activity(
            "CallUndo", process="ShardUndo", node=ANY_SHARD, **undo_options
        )
        call_undo.start_condition = StartCondition.ANY

        saga = ProcessDefinition("ShardSaga")
        saga.add_activity(Activity("S1", program="txn_s1"))
        saga.add_activity(call_work)
        saga.add_activity(Activity("S3", program="txn_s3"))
        saga.add_activity(call_undo)
        saga.add_activity(
            Activity(
                "C1", program="txn_c1", start_condition=StartCondition.ANY
            )
        )
        saga.connect("S1", "CallWork", "RC = 0")
        saga.connect("S1", "C1", "RC <> 0")
        saga.connect("CallWork", "S3", "RC = 0 AND Ok = 1")
        saga.connect("CallWork", "CallUndo", "RC <> 0 OR Ok = 0")
        saga.connect("S3", "CallUndo", "RC <> 0")
        saga.connect("CallUndo", "C1")
        if "ShardSaga" not in engine.definitions():
            engine.register_definition(saga)

    sharded.configure(configure)


def saga_outcome(db: SimDatabase) -> tuple[str, Any, Any, Any]:
    """Classify a finished ShardSaga run from the shared database:
    ``("committed" | "aborted", local, remote, final)``."""
    local = db.get("local")
    remote = db.get("remote")
    final = db.get("final")
    verdict = "committed" if final == 1 else "aborted"
    return (verdict, local, remote, final)
