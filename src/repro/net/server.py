"""The asyncio broker: authoritative queues behind a socket.

:class:`BusServer` owns the real :class:`~repro.wfms.messaging.
MessageBus`.  Clients (:class:`repro.net.client.SocketBus`) connect
over TCP and speak a boring request/reply protocol of length-prefixed
JSON frames (:mod:`repro.net.frames`): one frame in, one frame out,
each request naming a bus operation (``send``, ``receive``, ``ack``,
``nack``, ``dead_letter``, ``recover_in_flight``, ...).  Because every
queue mutation happens *here*, the whole PR 4 resilience contract
transfers to the network for free:

* an installed :class:`~repro.resilience.faults.FaultInjector` sits
  behind the transport — a ``send`` arriving over a socket runs
  through ``MessageBus.send`` and is dropped/duplicated/delayed by
  exactly the rules (and RNG stream) the in-memory chaos suite uses,
  so seeded schedules stay bit-identical over TCP;
* the ``net.connection`` fault site models the network's own failure
  mode: a firing rule resets the client connection before the frame
  is served, exercising the client's reconnect-with-backoff.

Production admission control (all broker-side, per ``send``):

* **bounded queues** — ``queue_capacity`` (global default) and
  ``capacities`` (per-queue overrides) cap queue depth.  An over-
  capacity send is *nacked*: the message goes straight to the queue's
  dead-letter queue with reason ``queue overflow`` (the existing DLQ
  path — inspectable, replayable) and the sender gets a typed
  ``overflow`` rejection, never a silent drop;
* **breaker-driven load shedding** — with a ``breaker_factory``, each
  queue gets a :class:`~repro.resilience.policies.CircuitBreaker`
  whose failures are overflow rejections and whose clock is the
  admission counter (deterministic, no wall time).  While open, sends
  are rejected up front with a typed ``shed`` reply — the overloaded
  queue is not even probed — and a cooldown later a trial admission
  closes it again.

The server is single-loop asyncio with synchronous op handlers, so
operations apply in frame-arrival order — with clients issuing one
blocking request at a time, that order is the callers' issue order,
which is what keeps multi-process chaos runs replayable.

Durability (``durable_dir``): every state-mutating op is journaled to
a write-ahead :class:`~repro.net.buslog.BusLog` *after* it applied
and *before* the reply frame goes out.  A broker restarted over the
same directory rebuilds queues, DLQ, stats, the id sequence and the
per-session op-id dedup table from checkpoint + log suffix, so an
acknowledged send can never be lost and a request replayed across the
restart can never double-apply.  The ``broker.crash`` fault site
(consulted post-journal, pre-reply — the worst window) and a failing
bus log both kill the broker abruptly: ``os._exit`` in a broker
process (``hard_crash``), an immediate stop-without-replies in a
thread.

Session hygiene: with ``heartbeat_timeout`` set, connections silent
for that long (no frames — well-behaved idle clients send ``ping``
heartbeats) are reaped, so half-open sockets don't pin broker state
forever; ``reaped_total`` lands in the monitor NET view.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any

from repro.errors import (
    JournalError,
    LoadShedded,
    NetError,
    QueueOverflow,
    RecoveryError,
    WorkflowError,
)
from repro.net.buslog import BusLog
from repro.net.frames import FrameDecoder, FrameError, encode_envelope, encode_frame
from repro.obs import resolve_observability
from repro.wfms.messaging import DLQ_PREFIX, MessageBus

#: Protocol version spoken by this server (2 adds op-id dedup, the
#: ``resume`` op and the instance/epoch restart token in ``hello``).
PROTOCOL = 2


class _BrokerDied(BaseException):
    """Internal control flow for an abrupt broker death (injected
    ``broker.crash`` or a failing bus log).  BaseException-derived so
    no ``except WorkflowError`` handler can accidentally survive it."""


def _session_of(op_id: str) -> str:
    """The client-session prefix of an op id (``session#seq``)."""
    return op_id.rsplit("#", 1)[0]


def _rule_to_wire(rule) -> dict[str, Any]:
    """A FaultRule as JSON-native data (for install_injector over the
    wire and the BrokerProcess config)."""
    return {
        "site": rule.site,
        "action": rule.action,
        "match": rule.match,
        "probability": rule.probability,
        "schedule": sorted(rule.schedule),
        "max_fires": rule.max_fires,
        "delay": rule.delay,
    }


def _rules_from_wire(rows: list[dict[str, Any]]):
    from repro.resilience.faults import FaultRule

    return [
        FaultRule(
            row["site"],
            row.get("action", ""),
            match=row.get("match", "*"),
            probability=row.get("probability", 0.0),
            schedule=frozenset(row.get("schedule", ())),
            max_fires=row.get("max_fires"),
            delay=row.get("delay", 1),
        )
        for row in rows
    ]


class BusServer:
    """One broker: an asyncio TCP server over one authoritative bus.

    ``queue_capacity`` bounds every non-DLQ queue (``None`` keeps the
    legacy unbounded behaviour); ``capacities`` overrides per queue
    name.  ``breaker_factory`` (zero-argument, returning a
    :class:`~repro.resilience.policies.CircuitBreaker`) enables load
    shedding per queue.  ``fault_injector`` is installed on the bus
    (drop/duplicate/delay behind the transport) and consulted at the
    ``net.connection`` site once per received frame, ``net.reply``
    once per served frame, and ``broker.crash`` after apply+journal.

    ``durable_dir`` arms the write-ahead bus log (recovery runs in
    the constructor); ``durable_sync`` / ``checkpoint_every`` /
    ``keep_checkpoints`` forward to :class:`~repro.net.buslog.BusLog`.
    ``heartbeat_timeout`` reaps connections silent for that many
    seconds.  ``session_cap`` bounds the per-session op-id dedup
    table (LRU by op order — deterministic), so client churn cannot
    grow it, or the checkpoints that serialize it, without bound.
    ``hard_crash`` makes a fatal broker death ``os._exit``
    the process (the broker-process configuration — indistinguishable
    from SIGKILL).
    """

    #: process-wide incarnation counter for non-durable instance tokens.
    _incarnations = 0

    def __init__(
        self,
        bus: MessageBus | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "broker",
        queue_capacity: int | None = None,
        capacities: dict[str, int] | None = None,
        breaker_factory=None,
        fault_injector=None,
        observability=None,
        durable_dir: str | None = None,
        durable_sync: str = "always",
        checkpoint_every: int | None = None,
        keep_checkpoints: int = 2,
        heartbeat_timeout: float | None = None,
        session_cap: int = 1024,
        hard_crash: bool = False,
    ):
        if queue_capacity is not None and queue_capacity < 1:
            raise NetError("queue_capacity must be >= 1")
        if session_cap < 1:
            raise NetError("session_cap must be >= 1")
        self.bus = bus if bus is not None else MessageBus()
        self.name = name
        self._host = host
        self._port = port
        self.address: tuple[str, int] | None = None
        self._capacity = queue_capacity
        self._capacities = dict(capacities or {})
        self._breaker_factory = breaker_factory
        self._breakers: dict[str, Any] = {}
        self._admissions = 0
        self._injector = fault_injector
        if fault_injector is not None:
            self.bus.install_injector(fault_injector)
        self._hard_crash = hard_crash
        self.crashed = False
        self._heartbeat_timeout = heartbeat_timeout
        self._reaper_task: Any = None
        self._reaped_total = 0
        self._resumed_total = 0
        self._dedup_hits = 0
        #: latest (op_id, reply) per client session — the idempotency
        #: table a replayed request hits instead of re-applying.
        #: Insertion-ordered LRU, bounded by ``session_cap`` so client
        #: churn cannot grow the table (and every checkpoint
        #: re-serializing it) without bound.  Eviction follows op
        #: order, so same-seed runs evict identically.
        self._sessions: dict[str, dict[str, Any]] = {}
        self._session_cap = session_cap
        self._sessions_evicted = 0
        self._pending_record: dict[str, Any] | None = None
        self._log: BusLog | None = None
        self.recovery: dict[str, Any] | None = None
        epoch = 0
        if durable_dir is not None:
            self._log = BusLog(
                durable_dir,
                sync=durable_sync,
                checkpoint_every=checkpoint_every,
                keep_checkpoints=keep_checkpoints,
                injector=fault_injector,
                obs=observability,
            )
            info = self._log.recover_into(self.bus)
            self._sessions = info.pop("sessions")
            while len(self._sessions) > self._session_cap:
                del self._sessions[next(iter(self._sessions))]
            self.recovery = info
            epoch = self._log.epoch
        self.epoch = epoch
        BusServer._incarnations += 1
        #: restart token clients compare across reconnects: stable for
        #: one broker incarnation, different for the next.  Durable
        #: brokers use the persisted epoch (survives the process);
        #: volatile ones a process-local incarnation id.
        self.instance = (
            "%s#%d" % (name, epoch)
            if self._log is not None
            else "%s#%d.%d" % (name, os.getpid(), BusServer._incarnations)
        )
        self._server: asyncio.AbstractServer | None = None
        self._closing: asyncio.Event | None = None
        self._conn_ids = 0
        self._conn_tasks: set[Any] = set()
        #: live connections: id -> accounting row (the NET view).
        self._connections: dict[int, dict[str, Any]] = {}
        self._accepted_total = 0
        self._resets_total = 0
        self._frames_in_total = 0
        self._frames_out_total = 0
        self.obs = resolve_observability(observability)
        metrics = self.obs.metrics
        self._c_requests = metrics.counter(
            "net_requests_total",
            "Broker requests served, by operation",
            labels=("op",),
        )
        self._c_overflows = metrics.counter(
            "net_overflows_total",
            "Sends nacked at admission (bounded queue full, dead-lettered)",
            labels=("queue",),
        )
        self._c_sheds = metrics.counter(
            "net_sheds_total",
            "Sends rejected by an open admission breaker",
            labels=("queue",),
        )
        self._g_connections = metrics.gauge(
            "net_connections", "Live broker connections"
        )
        self._g_queue_depth = metrics.gauge(
            "net_queue_depth",
            "Broker queue depth after the last touching operation",
            labels=("queue",),
        )
        self._c_bytes = metrics.counter(
            "net_bytes_total",
            "Bytes moved over broker sockets",
            labels=("direction",),
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port) —
        with ``port=0`` the OS picks a free one."""
        if self._server is not None:
            raise NetError("server already started")
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        sockets = self._server.sockets or []
        self.address = sockets[0].getsockname()[:2]
        if self._heartbeat_timeout is not None:
            self._reaper_task = asyncio.get_running_loop().create_task(
                self._reap_idle()
            )
        return self.address

    async def stop(self) -> None:
        """Stop accepting and drop every live connection."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            try:
                await self._reaper_task
            except asyncio.CancelledError:
                pass
            self._reaper_task = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()
        self._connections.clear()
        self._g_connections.set(0)
        if self._log is not None and not self.crashed:
            # Clean shutdown: make the log suffix durable.  A crashed
            # broker already abandoned the log (the disk is the
            # problem, or the crash was the point).
            self._log.close()

    async def _reap_idle(self) -> None:
        """Close connections that went silent for ``heartbeat_timeout``
        seconds — clients missing N heartbeats, or half-open sockets
        whose peer is gone.  The reaped task cleans itself up through
        the normal connection-handler exit path."""
        assert self._heartbeat_timeout is not None
        loop = asyncio.get_running_loop()
        interval = max(self._heartbeat_timeout / 2.0, 0.01)
        while True:
            await asyncio.sleep(interval)
            now = loop.time()
            for row in list(self._connections.values()):
                if row.get("_reaped"):
                    continue
                if now - row["_last_frame"] <= self._heartbeat_timeout:
                    continue
                row["_reaped"] = True
                row["state"] = "reaped"
                self._reaped_total += 1
                try:
                    row["_writer"].close()
                except Exception:
                    pass

    def request_stop(self) -> None:
        """Ask the serve loop to exit (same-loop safe; from another
        thread use ``loop.call_soon_threadsafe``)."""
        if self._closing is not None:
            self._closing.set()

    async def serve_until_stopped(self, on_started=None) -> None:
        """Start, optionally signal readiness, and serve until
        :meth:`request_stop` (e.g. via the ``shutdown`` op)."""
        await self.start()
        if on_started is not None:
            on_started()
        assert self._closing is not None
        await self._closing.wait()
        await self.stop()

    # -- connection handling ----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_ids += 1
        self._accepted_total += 1
        conn_id = self._conn_ids
        peer = writer.get_extra_info("peername")
        row: dict[str, Any] = {
            "id": conn_id,
            "name": "conn-%d" % conn_id,
            "peer": "%s:%s" % (peer[0], peer[1]) if peer else "?",
            "state": "open",
            "frames_in": 0,
            "frames_out": 0,
            "last_op": "",
            "resets": 0,
            "_writer": writer,
            # Accept time, so a peer that never sends a frame (a
            # half-open socket dead from birth) is still reaped.
            "_last_frame": asyncio.get_running_loop().time(),
        }
        self._connections[conn_id] = row
        self._g_connections.set(len(self._connections))
        decoder = FrameDecoder()
        reset = False
        try:
            while not reset:
                data = await reader.read(65536)
                if not data:
                    break
                self._c_bytes.labels("in").inc(len(data))
                try:
                    requests = decoder.feed(data)
                except FrameError as exc:
                    # Unframeable bytes: answer once, then hang up —
                    # the stream offset is unrecoverable.
                    payload = encode_frame(
                        {"ok": False, "code": "frame", "error": str(exc)}
                    )
                    writer.write(payload)
                    break
                shutdown = False
                for request in requests:
                    self._frames_in_total += 1
                    row["frames_in"] += 1
                    row["_last_frame"] = asyncio.get_running_loop().time()
                    if self._injector is not None and self._injector.on_connection(
                        row["name"]
                    ):
                        # Injected network fault: reset the connection
                        # without serving (or replying to) this frame.
                        row["resets"] += 1
                        self._resets_total += 1
                        reset = True
                        break
                    response, shutdown = self._dispatch(row, request)
                    if self._injector is not None and self._injector.on_reply(
                        row["name"]
                    ):
                        # Injected reply loss: the op *applied* (and
                        # was journaled), the client never hears back.
                        # Its replayed request must hit the op-id
                        # dedup, not re-apply.
                        row["resets"] += 1
                        self._resets_total += 1
                        reset = True
                        break
                    payload = encode_frame(response)
                    self._c_bytes.labels("out").inc(len(payload))
                    self._frames_out_total += 1
                    row["frames_out"] += 1
                    writer.write(payload)
                    if shutdown:
                        break
                await writer.drain()
                if shutdown:
                    self.request_stop()
                    break
        except _BrokerDied:
            self._abrupt_stop()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server stop: close the socket, don't propagate
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._connections.pop(conn_id, None)
            self._g_connections.set(len(self._connections))
            try:
                writer.close()
            except Exception:
                pass

    # -- crash path --------------------------------------------------------

    def _die(self, reason: str) -> None:
        """Fatal broker failure: raise the internal control exception
        the connection handler turns into an abrupt stop (or
        ``os._exit`` when ``hard_crash``)."""
        raise _BrokerDied(reason)

    def _abrupt_stop(self) -> None:
        """Die without replying to anyone.  In a broker process this
        is ``os._exit`` — no atexit, no flushes, exactly a SIGKILL; in
        a thread the log is abandoned (its durable prefix stays
        replayable), every connection dropped, and the serve loop
        asked to exit."""
        if self._hard_crash:
            os._exit(137)
        self.crashed = True
        if self._log is not None:
            self._log.abandon()
        for row in list(self._connections.values()):
            try:
                row["_writer"].close()
            except Exception:
                pass
        self.request_stop()

    # -- dispatch ----------------------------------------------------------

    def _dispatch(
        self, conn: dict[str, Any], request: Any
    ) -> tuple[dict[str, Any], bool]:
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "code": "error", "error": "malformed request"}, False
        op = request["op"]
        conn["last_op"] = op
        self._c_requests.labels(op).inc()
        op_id = request.get("op_id")
        session = _session_of(op_id) if op_id else None
        if session is not None:
            cached = self._sessions.get(session)
            if cached is not None and cached.get("op_id") == op_id:
                # The client replayed a request whose reply it never
                # saw (reconnect after a mid-op drop, or a broker
                # restart): return the original outcome, apply
                # nothing.  The session is demonstrably live, so
                # refresh its LRU position.
                del self._sessions[session]
                self._sessions[session] = cached
                self._dedup_hits += 1
                return dict(cached["reply"]), False
        span = None
        if self.obs.tracer.enabled:
            span = self.obs.tracer.start_span(
                "net.%s" % op,
                kind="server",
                attributes={"queue": request.get("queue", "")},
            )
        self._pending_record = None
        try:
            value, shutdown = self._apply(conn, op, request)
            if span is not None:
                span.finish()
            response: dict[str, Any] = {"ok": True, "value": value}
        except QueueOverflow as exc:
            if span is not None:
                span.finish("overflow")
            shutdown = False
            response = {"ok": False, "code": "overflow", "error": str(exc),
                        "queue": exc.queue}
        except LoadShedded as exc:
            if span is not None:
                span.finish("shed")
            shutdown = False
            response = {"ok": False, "code": "shed", "error": str(exc),
                        "queue": exc.queue}
        except WorkflowError as exc:
            if span is not None:
                span.finish("error")
            shutdown = False
            response = {"ok": False, "code": "error", "error": str(exc)}
        record, self._pending_record = self._pending_record, None
        if session is not None:
            # Store the dedup entry *before* journaling: a checkpoint
            # taken below covers the just-appended record, so its
            # session table must already include this op — otherwise a
            # crash between checkpoint and reply recovers a table
            # missing exactly the op the client is about to replay.
            # LRU order: re-insertion moves the session to the back.
            self._sessions.pop(session, None)
            self._sessions[session] = {"op_id": op_id, "reply": response}
            while len(self._sessions) > self._session_cap:
                evicted = next(iter(self._sessions))
                del self._sessions[evicted]
                self._sessions_evicted += 1
        if record is not None and self._log is not None:
            # Journal the applied mutation (with the reply, so
            # recovery rebuilds the dedup table) *before* the reply
            # frame can go out.  A failing bus log is fatal — the
            # broker must not acknowledge what it cannot make durable.
            if session is not None:
                record["client"] = session
                record["op_id"] = op_id
                record["reply"] = response
            try:
                self._log.record(record)
            except JournalError as exc:
                self._die("bus log failed: %s" % exc)
            if self._log.due():
                try:
                    self._log.checkpoint(
                        self.bus.export_state(), self._sessions
                    )
                except (JournalError, RecoveryError):
                    # A torn/aborted checkpoint is survivable: the log
                    # keeps growing and recovery falls back to the
                    # previous snapshot.
                    self._log.checkpoint_failures += 1
        if self._injector is not None and self._injector.on_broker_crash(op):
            # The worst window: applied and journaled, reply unsent.
            self._die("injected broker crash on %r" % op)
        return response, shutdown

    def _apply(
        self, conn: dict[str, Any], op: str, request: dict[str, Any]
    ) -> tuple[Any, bool]:
        bus = self.bus
        if op == "send":
            queue = request.get("queue", "")
            msg_id = self._admit_send(
                queue, request.get("body") or {}, request.get("headers") or {}
            )
            self._g_queue_depth.labels(queue).set(bus.depth(queue))
            return msg_id, False
        if op == "receive":
            queue = request.get("queue", "")
            taken = bus.receive_with_headers(queue)
            if taken is None:
                return None, False
            msg_id, body, headers = taken
            return (
                encode_envelope(
                    msg_id, body, headers, bus.deliveries(queue, msg_id)
                ),
                False,
            )
        if op == "ack":
            queue = request.get("queue", "")
            msg_id = request.get("msg_id", "")
            bus.ack(queue, msg_id)
            self._note({"type": "ack", "queue": queue, "msg_id": msg_id})
            self._g_queue_depth.labels(queue).set(bus.depth(queue))
            return None, False
        if op == "nack":
            queue = request.get("queue", "")
            msg_id = request.get("msg_id", "")
            bus.nack(queue, msg_id)
            self._note({"type": "nack", "queue": queue, "msg_id": msg_id})
            return None, False
        if op == "dead_letter":
            queue = request.get("queue", "")
            msg_id = request.get("msg_id", "")
            reason = request.get("reason", "")
            target = bus.dead_letter(queue, msg_id, reason)
            self._note(
                {
                    "type": "dead_letter",
                    "queue": queue,
                    "msg_id": msg_id,
                    "reason": reason,
                }
            )
            return target, False
        if op == "recover_in_flight":
            queue = request.get("queue")
            recovered = bus.recover_in_flight(queue)
            self._note({"type": "recover_in_flight", "queue": queue})
            return recovered, False
        if op == "resume":
            # Session resume after a broker restart: the consumer
            # re-registers the messages it held in flight, so nobody
            # else is delivered them while it finishes.  Idempotent —
            # unknown or already-reserved ids are skipped.
            resumed = 0
            for pair in request.get("in_flight") or []:
                if (
                    isinstance(pair, (list, tuple))
                    and len(pair) == 2
                    and bus.mark_in_flight(str(pair[0]), str(pair[1]))
                ):
                    resumed += 1
            self._resumed_total += resumed
            return resumed, False
        if op == "depth":
            return bus.depth(request.get("queue", "")), False
        if op == "deliveries":
            return (
                bus.deliveries(
                    request.get("queue", ""), request.get("msg_id", "")
                ),
                False,
            )
        if op == "queues":
            return bus.queues(), False
        if op == "stats":
            return bus.stats(request.get("queue")), False
        if op == "dlq_inspect":
            return bus.dlq_entries(request.get("queue")), False
        if op == "dlq_drain":
            queue = request.get("queue", "")
            requeue = bool(request.get("requeue", True))
            drained = bus.dlq_drain(queue, requeue=requeue)
            if drained:
                self._note(
                    {
                        "type": "dlq_drain",
                        "queue": queue,
                        "requeue": requeue,
                        "drained": drained,
                    }
                )
            return drained, False
        if op == "install_injector":
            from repro.resilience.faults import FaultInjector

            injector = FaultInjector(
                _rules_from_wire(request.get("rules") or []),
                seed=int(request.get("seed", 0)),
            )
            self._injector = injector
            bus.install_injector(injector)
            if self._log is not None:
                self._log.set_injector(injector)
            return None, False
        if op == "injector_trace":
            if self._injector is None:
                return [], False
            return [list(entry) for entry in self._injector.trace()], False
        if op == "snapshot":
            return self.snapshot(), False
        if op == "hello":
            name = request.get("name")
            if name:
                conn["name"] = str(name)
            return {
                "server": self.name,
                "proto": PROTOCOL,
                "instance": self.instance,
                "epoch": self.epoch,
                "durable": self._log is not None,
            }, False
        if op == "ping":
            return "pong", False
        if op == "shutdown":
            return None, True
        raise NetError("unknown operation %r" % op)

    def _note(self, record: dict[str, Any]) -> None:
        """Stage the bus-log record for the operation that just
        applied; ``_dispatch`` journals it (stamped with the client's
        op id and the reply) before the reply frame goes out.  No-op
        without a durable log."""
        if self._log is not None:
            self._pending_record = record

    # -- admission control -------------------------------------------------

    def _capacity_for(self, queue: str) -> int | None:
        override = self._capacities.get(queue)
        return override if override is not None else self._capacity

    def _breaker_for(self, queue: str):
        if self._breaker_factory is None:
            return None
        breaker = self._breakers.get(queue)
        if breaker is None:
            breaker = self._breakers[queue] = self._breaker_factory()
        return breaker

    def _send_journaled(
        self, queue: str, body: dict[str, Any], headers: dict[str, str]
    ) -> str:
        """Send and stage the effect record (what the injector decided
        — the enqueued envelopes — not the request, so recovery replay
        never re-consults the RNG)."""
        msg_id, effect, entries = self.bus.send_detailed(queue, body, headers)
        self._note(
            {
                "type": "send",
                "queue": queue,
                "effect": effect,
                "entries": entries,
            }
        )
        return msg_id

    def _admit_send(
        self, queue: str, body: dict[str, Any], headers: dict[str, str]
    ) -> str:
        """The bounded-queue + breaker admission gate in front of
        ``MessageBus.send``.  DLQ queues are exempt (rejecting a
        rejection would lose it)."""
        if not queue or queue.startswith(DLQ_PREFIX):
            return self._send_journaled(queue, body, headers)
        self._admissions += 1
        now = float(self._admissions)
        breaker = self._breaker_for(queue)
        if breaker is not None and not breaker.allow(now):
            self.bus._stat(queue, "shed")
            self._c_sheds.labels(queue).inc()
            raise LoadShedded(
                "queue %r is shedding load (admission breaker open)" % queue,
                queue=queue,
            )
        capacity = self._capacity_for(queue)
        if capacity is not None and self.bus.depth(queue) >= capacity:
            reason = "queue overflow: depth %d at capacity %d" % (
                self.bus.depth(queue),
                capacity,
            )
            msg_id = self.bus.reject(queue, body, headers, reason)
            self._note(
                {
                    "type": "reject",
                    "queue": queue,
                    "msg_id": msg_id,
                    "body": dict(body),
                    "headers": dict(headers),
                    "reason": reason,
                }
            )
            if breaker is not None:
                breaker.record_failure(now)
            self._c_overflows.labels(queue).inc()
            raise QueueOverflow(
                "queue %r is full (capacity %d); message dead-lettered"
                % (queue, capacity),
                queue=queue,
            )
        if breaker is not None:
            breaker.record_success(now)
        return self._send_journaled(queue, body, headers)

    # -- monitoring --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The NET view: broker identity, per-connection state, queue
        depths with full stat buckets, breaker states, injector
        summary — rendered by ``repro.tools.monitor``'s ``net`` view."""
        queues = {}
        for name in self.bus.queues():
            stats = self.bus.stats(name)
            stats["depth"] = self.bus.depth(name)
            queues[name] = stats
        connections = [
            {k: v for k, v in row.items() if not k.startswith("_")}
            for row in sorted(
                self._connections.values(), key=lambda r: r["id"]
            )
        ]
        injector = None
        if self._injector is not None:
            injector = {
                "rules": len(self._injector.rules),
                "fired": len(self._injector.fired),
            }
        durable = None
        if self._log is not None:
            durable = self._log.status()
            durable["recovery"] = dict(self.recovery or {})
        return {
            "broker": self.name,
            "address": list(self.address) if self.address else None,
            "instance": self.instance,
            "epoch": self.epoch,
            "connections": connections,
            "accepted_total": self._accepted_total,
            "resets_total": self._resets_total,
            "reaped_total": self._reaped_total,
            "resumed_total": self._resumed_total,
            "dedup_hits": self._dedup_hits,
            "sessions": len(self._sessions),
            "session_cap": self._session_cap,
            "sessions_evicted": self._sessions_evicted,
            "frames_in_total": self._frames_in_total,
            "frames_out_total": self._frames_out_total,
            "queue_capacity": self._capacity,
            "capacities": dict(self._capacities),
            "breakers": {
                queue: breaker.state
                for queue, breaker in sorted(self._breakers.items())
            },
            "queues": queues,
            "injector": injector,
            "durable": durable,
        }


# ---------------------------------------------------------------------------
# runners: background thread and OS process
# ---------------------------------------------------------------------------


class BusServerThread:
    """Run a :class:`BusServer` on a daemon thread's event loop.

    The constructor blocks until the server is bound, so ``address``
    is immediately usable.  ``close()`` stops the loop and joins the
    thread; it is idempotent and also runs via context manager exit.
    """

    def __init__(self, server: BusServer | None = None, **server_kwargs):
        import threading

        self.server = server if server is not None else BusServer(**server_kwargs)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-net-broker", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise NetError("broker thread did not start within 10s")
        if self._failure is not None:
            raise NetError("broker thread failed: %s" % self._failure)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(
                self.server.serve_until_stopped(on_started=self._started.set)
            )
        except BaseException as exc:  # surfaced to the constructor
            self._failure = exc
            self._started.set()
        finally:
            self._loop.close()

    @property
    def address(self) -> tuple[str, int]:
        assert self.server.address is not None
        return self.server.address

    def close(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_stop)
            self._thread.join(timeout=10)

    def __enter__(self) -> "BusServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _broker_main(connection, config: dict[str, Any]) -> None:
    """Entry point of the broker child process: build the bus (and an
    injector from the wire-shaped rules), serve, and report the bound
    address through the pipe."""
    injector = None
    rules = config.get("rules")
    if rules is not None:
        from repro.resilience.faults import FaultInjector

        injector = FaultInjector(
            _rules_from_wire(rules), seed=config.get("seed", 0)
        )
    server = BusServer(
        MessageBus(),
        fault_injector=injector,
        hard_crash=True,
        **config.get("server", {}),
    )

    async def main() -> None:
        await server.serve_until_stopped(
            on_started=lambda: connection.send(server.address)
        )

    try:
        asyncio.run(main())
    except BaseException as exc:
        try:
            connection.send(("error", "%s: %s" % (type(exc).__name__, exc)))
        except Exception:
            pass
    finally:
        connection.close()


class BrokerProcess:
    """A broker in its own OS process (the multi-process chaos and
    traffic configurations).

    ``rules``/``seed`` build a server-side
    :class:`~repro.resilience.faults.FaultInjector` in the child —
    rules are shipped as plain data, so the parent never shares state
    with it; fetch its chaos trace over the wire
    (:meth:`SocketBus.injector_trace`).  ``server_kwargs`` forward to
    :class:`BusServer` (capacities, breaker factory is not picklable —
    use ``queue_capacity``/``capacities`` here and breakers only
    in-process).

    Use as a context manager; exit asks the broker to shut down over
    the wire and falls back to terminating the process.
    """

    def __init__(
        self,
        *,
        rules=None,
        seed: int = 0,
        start_method: str | None = None,
        **server_kwargs,
    ):
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        parent_end, child_end = context.Pipe()
        config: dict[str, Any] = {"server": dict(server_kwargs), "seed": seed}
        if rules is not None:
            config["rules"] = [_rule_to_wire(rule) for rule in rules]
        self._process = context.Process(
            target=_broker_main, args=(child_end, config), daemon=True
        )
        self._process.start()
        child_end.close()
        if not parent_end.poll(15):
            self._process.terminate()
            raise NetError("broker process did not report an address")
        started = parent_end.recv()
        if isinstance(started, tuple) and started and started[0] == "error":
            self._process.join(timeout=5)
            raise NetError("broker process failed: %s" % started[1])
        self.address: tuple[str, int] = tuple(started)
        self._pipe = parent_end

    @property
    def pid(self) -> int | None:
        return self._process.pid

    def alive(self) -> bool:
        return self._process.is_alive()

    def kill(self) -> None:
        """SIGKILL the broker — no shutdown op, no flushes, no
        goodbyes.  The chaos suites use this to model a hard host
        failure; a durable broker restarted over the same directory
        must recover everything the log made durable."""
        if self._process.is_alive():
            self._process.kill()
        self._process.join(timeout=10)

    def wait(self, timeout: float = 10.0) -> None:
        """Join the broker process (e.g. after an injected
        ``broker.crash`` killed it from the inside)."""
        self._process.join(timeout=timeout)

    def close(self) -> None:
        if self._process.is_alive():
            from repro.net.client import SocketBus

            try:
                with SocketBus(
                    *self.address, name="broker-control", connect_retries=2
                ) as control:
                    control.shutdown_server()
            except NetError:
                pass
            self._process.join(timeout=10)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout=5)
        self._pipe.close()

    def __enter__(self) -> "BrokerProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
