"""SocketBus: the MessageBus interface over a TCP connection.

A :class:`SocketBus` is a drop-in bus for everything that takes one —
:class:`~repro.wfms.distributed.WorkflowNode`, the sharded engine's
drivers, the workload demos.  Each method is one request/reply
round-trip to the broker (:class:`repro.net.server.BusServer`): the
call blocks, the broker applies the operation to the authoritative
in-memory bus, and the reply carries the same value the in-memory
method would have returned — including the same typed errors
(``unknown message`` acks, empty-queue ``None``\\ s), so caller code
and its tests cannot tell the transports apart.

The client owns a private asyncio event loop and drives it to
completion per call, which keeps the public surface synchronous (the
workflow engine is synchronous by design — determinism before
concurrency) and guarantees at most one request in flight per client.
That single-outstanding-request discipline is what makes multi-process
chaos runs replayable: the broker serves frames in arrival order, and
arrival order equals the driver's issue order.

Failure handling:

* connection loss (including injected ``net.connection`` resets) is
  retried transparently: reconnect with exponential backoff, replay
  the pending request.  The broker consumes a reset *before* serving
  the frame, so an injected reset never half-applies an operation.
  After ``reconnect_budget`` consecutive failures the call raises
  :class:`~repro.errors.ConnectionLost`;
* typed broker rejections come back as the matching exception —
  ``overflow`` as :class:`~repro.errors.QueueOverflow` (the message is
  in the DLQ), ``shed`` as :class:`~repro.errors.LoadShedded`
  (nothing was stored), anything else as :class:`~repro.errors.
  NetError` carrying the broker's message.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.errors import ConnectionLost, LoadShedded, NetError, QueueOverflow
from repro.net.frames import FrameDecoder, decode_envelope, encode_frame


class SocketBus:
    """A synchronous bus proxy over one broker TCP connection.

    ``connect_retries``/``backoff``/``max_backoff`` govern both the
    initial connect and every reconnect; ``timeout`` bounds a single
    request/reply round-trip.  Use as a context manager or ``close()``
    explicitly.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: str = "client",
        connect_retries: int = 12,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
        timeout: float = 30.0,
    ):
        self._host = host
        self._port = port
        self.name = name
        self._connect_retries = max(1, connect_retries)
        self._backoff = backoff
        self._max_backoff = max_backoff
        self._timeout = timeout
        self._loop = asyncio.new_event_loop()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._decoder = FrameDecoder()
        self._closed = False
        #: consecutive-reconnect accounting, surfaced for tests and
        #: the monitor: total reconnects over the client's life.
        self.reconnects = 0
        self.server_info: dict[str, Any] = {}
        self._connect_initial()

    # -- connection management --------------------------------------------

    def _connect_initial(self) -> None:
        failure: Exception | None = None
        for attempt in range(self._connect_retries):
            try:
                self._loop.run_until_complete(self._open())
                return
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                failure = exc
                self._drop_connection()
                time.sleep(self._sleep_for(attempt))
        raise ConnectionLost(
            "could not connect to broker at %s:%d after %d attempts (%s)"
            % (self._host, self._port, self._connect_retries, failure)
        )

    def _sleep_for(self, attempt: int) -> float:
        return min(self._backoff * (2**attempt), self._max_backoff)

    async def _open(self) -> None:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port),
            timeout=self._timeout,
        )
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self.server_info = await self._roundtrip(
            {"op": "hello", "name": self.name}
        )

    def _drop_connection(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._reader = None
        self._writer = None
        self._decoder = FrameDecoder()

    async def _roundtrip(self, request: dict[str, Any]) -> Any:
        """One frame out, one frame in; raises the typed error a
        non-ok reply encodes."""
        assert self._reader is not None and self._writer is not None
        self._writer.write(encode_frame(request))
        await self._writer.drain()
        frames: list[Any] = []
        while not frames:
            data = await asyncio.wait_for(
                self._reader.read(65536), timeout=self._timeout
            )
            if not data:
                raise ConnectionResetError("broker closed the connection")
            frames = self._decoder.feed(data)
        response = frames[0]
        if not isinstance(response, dict):
            raise NetError("malformed broker response: %r" % (response,))
        if response.get("ok"):
            return response.get("value")
        code = response.get("code", "error")
        message = response.get("error", "broker error")
        if code == "overflow":
            raise QueueOverflow(message, queue=response.get("queue", ""))
        if code == "shed":
            raise LoadShedded(message, queue=response.get("queue", ""))
        raise NetError(message)

    def _call(self, op: str, **params: Any) -> Any:
        """Issue one operation, reconnecting and replaying on
        connection failure.  Safe for injected resets (the broker
        never serves a frame it resets on); real mid-reply losses are
        covered by the application-level exactly-once request ids."""
        if self._closed:
            raise NetError("SocketBus %r is closed" % self.name)
        request = dict(params)
        request["op"] = op
        failure: Exception | None = None
        for attempt in range(self._connect_retries):
            try:
                if self._reader is None:
                    self._loop.run_until_complete(self._open())
                return self._loop.run_until_complete(self._roundtrip(request))
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ) as exc:
                failure = exc
                self._drop_connection()
                self.reconnects += 1
                time.sleep(self._sleep_for(attempt))
        raise ConnectionLost(
            "lost broker %s:%d and exhausted %d reconnect attempts (%s)"
            % (self._host, self._port, self._connect_retries, failure)
        )

    # -- the MessageBus interface -----------------------------------------

    def send(
        self,
        queue: str,
        body: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> str:
        return self._call(
            "send", queue=queue, body=dict(body), headers=dict(headers or {})
        )

    def receive(self, queue: str) -> tuple[str, dict[str, Any]] | None:
        taken = self.receive_with_headers(queue)
        if taken is None:
            return None
        msg_id, body, __ = taken
        return msg_id, body

    def receive_with_headers(
        self, queue: str
    ) -> tuple[str, dict[str, Any], dict[str, str]] | None:
        wire = self._call("receive", queue=queue)
        if wire is None:
            return None
        msg_id, body, headers, __ = decode_envelope(wire)
        return msg_id, body, headers

    def ack(self, queue: str, msg_id: str) -> None:
        self._call("ack", queue=queue, msg_id=msg_id)

    def nack(self, queue: str, msg_id: str) -> None:
        self._call("nack", queue=queue, msg_id=msg_id)

    def dead_letter(self, queue: str, msg_id: str, reason: str) -> str:
        return self._call(
            "dead_letter", queue=queue, msg_id=msg_id, reason=reason
        )

    def recover_in_flight(self, queue: str | None = None) -> int:
        return self._call("recover_in_flight", queue=queue)

    def depth(self, queue: str) -> int:
        return self._call("depth", queue=queue)

    def deliveries(self, queue: str, msg_id: str) -> int:
        return self._call("deliveries", queue=queue, msg_id=msg_id)

    def queues(self) -> list[str]:
        return self._call("queues")

    def stats(self, queue: str | None = None) -> dict[str, Any]:
        return self._call("stats", queue=queue)

    # -- dead-letter operations -------------------------------------------

    def dlq_entries(self, queue: str | None = None) -> list[dict[str, Any]]:
        return self._call("dlq_inspect", queue=queue)

    def dlq_drain(self, queue: str, *, requeue: bool = True) -> int:
        return self._call("dlq_drain", queue=queue, requeue=requeue)

    # -- chaos and monitoring ---------------------------------------------

    def install_injector(self, injector: Any) -> None:
        """Ship an injector's rules and seed to the broker, which
        builds its own :class:`~repro.resilience.faults.FaultInjector`
        over them — the chaos adversary runs *behind* the transport,
        exactly where the in-memory suite puts it."""
        from repro.net.server import _rule_to_wire

        self._call(
            "install_injector",
            rules=[_rule_to_wire(rule) for rule in injector.rules],
            seed=injector.seed,
        )

    def injector_trace(self) -> list[tuple[str, str, str, int]]:
        """The broker-side chaos trace, in the same tuple shape as
        :meth:`FaultInjector.trace` — what multi-process chaos runs
        diff across replays."""
        return [tuple(entry) for entry in self._call("injector_trace")]

    def snapshot(self) -> dict[str, Any]:
        return self._call("snapshot")

    def ping(self) -> str:
        return self._call("ping")

    def shutdown_server(self) -> None:
        self._call("shutdown")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._drop_connection()
        self._loop.close()

    def __enter__(self) -> "SocketBus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return "SocketBus(%s:%d, name=%r, %s, reconnects=%d)" % (
            self._host,
            self._port,
            self.name,
            state,
            self.reconnects,
        )
