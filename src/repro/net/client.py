"""SocketBus: the MessageBus interface over a TCP connection.

A :class:`SocketBus` is a drop-in bus for everything that takes one —
:class:`~repro.wfms.distributed.WorkflowNode`, the sharded engine's
drivers, the workload demos.  Each method is one request/reply
round-trip to the broker (:class:`repro.net.server.BusServer`): the
call blocks, the broker applies the operation to the authoritative
in-memory bus, and the reply carries the same value the in-memory
method would have returned — including the same typed errors
(``unknown message`` acks, empty-queue ``None``\\ s), so caller code
and its tests cannot tell the transports apart.

The client is a plain blocking socket — no event loop.  The public
surface is synchronous (the workflow engine is synchronous by design —
determinism before concurrency), every blocking-socket call is
documented thread-safe, and a lock serializing callers (including the
heartbeat thread) guarantees at most one request in flight per
client.
That single-outstanding-request discipline is what makes multi-process
chaos runs replayable: the broker serves frames in arrival order, and
arrival order equals the driver's issue order.

Failure handling:

* every request is stamped with a unique, monotonic **op id**
  (``session#seq``).  Connection loss (including injected
  ``net.connection``/``net.reply`` resets) is retried transparently —
  reconnect with exponential backoff, replay the pending request
  *with the same op id* — and the broker's per-session dedup table
  guarantees a replayed request that already applied returns its
  cached reply instead of applying twice.  After ``connect_retries``
  consecutive failures the call raises :class:`~repro.errors.
  ConnectionLost`; the request stays pending and
  :meth:`retry_pending` re-issues it (same op id) once the caller has
  e.g. restarted the broker;
* the client tracks which messages it holds **in flight**.  The hello
  reply carries the broker's ``instance`` token; when a reconnect
  lands on a *different* incarnation (a restarted durable broker,
  whose recovery cleared all in-flight reservations), the client
  first replays a ``resume`` op re-registering its claims, then
  replays the pending request;
* typed broker rejections come back as the matching exception —
  ``overflow`` as :class:`~repro.errors.QueueOverflow` (the message is
  in the DLQ), ``shed`` as :class:`~repro.errors.LoadShedded`
  (nothing was stored), anything else as :class:`~repro.errors.
  NetError` carrying the broker's message;
* an optional **heartbeat** thread pings the broker every
  ``heartbeat_interval`` seconds while the client is otherwise idle,
  so a broker configured with ``heartbeat_timeout`` never reaps a
  live-but-quiet client.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from typing import Any

from repro.errors import ConnectionLost, LoadShedded, NetError, QueueOverflow
from repro.net.frames import FrameDecoder, decode_envelope, encode_frame


class SocketBus:
    """A synchronous bus proxy over one broker TCP connection.

    ``connect_retries``/``backoff``/``max_backoff`` govern both the
    initial connect and every reconnect; ``timeout`` bounds a single
    request/reply round-trip.  ``heartbeat_interval`` (seconds,
    ``None`` disables) starts a daemon thread pinging the broker while
    the client is idle.  Use as a context manager or ``close()``
    explicitly.
    """

    #: process-wide session nonce: two clients sharing a ``name`` must
    #: not share an op-id namespace on the broker's dedup table.
    #: ``itertools.count`` hands out values atomically, so clients
    #: constructed concurrently from different threads (the traffic
    #: driver does) can never draw the same nonce.
    _session_seq = itertools.count(1)

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: str = "client",
        connect_retries: int = 12,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
        timeout: float = 30.0,
        heartbeat_interval: float | None = None,
        resume_in_flight: bool = True,
    ):
        self._host = host
        self._port = port
        self.name = name
        self._connect_retries = max(1, connect_retries)
        self._backoff = backoff
        self._max_backoff = max_backoff
        self._timeout = timeout
        self._sock: socket.socket | None = None
        self._decoder = FrameDecoder()
        self._closed = False
        #: this client's op-id namespace on the broker.
        self.session = "%s@%d" % (name, next(SocketBus._session_seq))
        self._op_seq = 0
        self._pending: dict[str, Any] | None = None
        self._resume_in_flight = resume_in_flight
        #: (queue, msg_id) pairs this client received and has not yet
        #: acked/nacked/dead-lettered — re-registered on broker restart.
        self._in_flight: set[tuple[str, str]] = set()
        self._instance: str | None = None
        #: serializes requests between caller and heartbeat threads
        #: (at most one request in flight per client).
        self._lock = threading.RLock()
        #: consecutive-reconnect accounting, surfaced for tests and
        #: the monitor: total reconnects over the client's life.
        self.reconnects = 0
        #: how many reconnects landed on a different broker
        #: incarnation (i.e. the broker restarted underneath us).
        self.broker_restarts = 0
        self.heartbeats = 0
        self.server_info: dict[str, Any] = {}
        self._hb_stop: threading.Event | None = None
        self._hb_thread: threading.Thread | None = None
        self._connect_initial()
        if heartbeat_interval is not None:
            self._hb_stop = threading.Event()
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(heartbeat_interval,),
                name="socketbus-heartbeat-%s" % name,
                daemon=True,
            )
            self._hb_thread.start()

    # -- connection management --------------------------------------------

    def _connect_initial(self) -> None:
        failure: Exception | None = None
        for attempt in range(self._connect_retries):
            try:
                self._open()
                return
            except OSError as exc:
                failure = exc
                self._drop_connection()
                time.sleep(self._sleep_for(attempt))
        raise ConnectionLost(
            "could not connect to broker at %s:%d after %d attempts (%s)"
            % (self._host, self._port, self._connect_retries, failure)
        )

    def _sleep_for(self, attempt: int) -> float:
        return min(self._backoff * (2**attempt), self._max_backoff)

    def _open(self) -> None:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        # Request/reply over small frames: never wait out Nagle.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self._timeout)
        self._sock = sock
        self._decoder = FrameDecoder()
        info = self._roundtrip({"op": "hello", "name": self.name})
        instance = (info or {}).get("instance")
        restarted = (
            self._instance is not None and instance != self._instance
        )
        self._instance = instance
        self.server_info = info
        if restarted:
            # The broker we knew died; this is a new incarnation whose
            # recovery cleared every in-flight reservation.  Re-claim
            # ours before any other consumer can be delivered them.
            self.broker_restarts += 1
            if self._resume_in_flight and self._in_flight:
                self._roundtrip(
                    {
                        "op": "resume",
                        "name": self.name,
                        "in_flight": [
                            list(pair) for pair in sorted(self._in_flight)
                        ],
                    }
                )

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        self._decoder = FrameDecoder()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _roundtrip(self, request: dict[str, Any]) -> Any:
        """One frame out, one frame in; raises the typed error a
        non-ok reply encodes.  A ``recv``/``sendall`` past ``timeout``
        raises :class:`TimeoutError` (an ``OSError``), which the retry
        loops treat like any other connection failure."""
        assert self._sock is not None
        self._sock.sendall(encode_frame(request))
        frames: list[Any] = []
        while not frames:
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionResetError("broker closed the connection")
            frames = self._decoder.feed(data)
        response = frames[0]
        if not isinstance(response, dict):
            raise NetError("malformed broker response: %r" % (response,))
        if response.get("ok"):
            return response.get("value")
        code = response.get("code", "error")
        message = response.get("error", "broker error")
        if code == "overflow":
            raise QueueOverflow(message, queue=response.get("queue", ""))
        if code == "shed":
            raise LoadShedded(message, queue=response.get("queue", ""))
        raise NetError(message)

    def _issue(self, request: dict[str, Any]) -> Any:
        """Drive one request to a reply, reconnecting and replaying on
        connection failure.  The replayed frame carries the *same op
        id*, so an operation that applied before the drop is answered
        from the broker's dedup table, never applied twice."""
        failure: Exception | None = None
        for attempt in range(self._connect_retries):
            try:
                if self._sock is None:
                    self._open()
                return self._roundtrip(request)
            except OSError as exc:
                failure = exc
                self._drop_connection()
                self.reconnects += 1
                time.sleep(self._sleep_for(attempt))
        raise ConnectionLost(
            "lost broker %s:%d and exhausted %d reconnect attempts (%s)"
            % (self._host, self._port, self._connect_retries, failure)
        )

    def _perform(self, request: dict[str, Any]) -> Any:
        """Issue ``request`` (kept pending until a reply arrives) and
        update the in-flight ledger from the outcome."""
        self._pending = request
        try:
            value = self._issue(request)
        except ConnectionLost:
            # Keep the request pending: the caller may restart the
            # broker and retry_pending() it (same op id — still safe).
            raise
        except NetError:
            # A typed broker reply: the round-trip completed.
            self._pending = None
            raise
        self._pending = None
        self._track(request, value)
        return value

    def _track(self, request: dict[str, Any], value: Any) -> None:
        op = request.get("op")
        if op == "receive":
            if isinstance(value, dict) and value.get("msg_id"):
                self._in_flight.add((request["queue"], value["msg_id"]))
        elif op in ("ack", "nack", "dead_letter"):
            self._in_flight.discard((request["queue"], request["msg_id"]))
        elif op == "recover_in_flight":
            queue = request.get("queue")
            if queue is None:
                self._in_flight.clear()
            else:
                self._in_flight = {
                    pair for pair in self._in_flight if pair[0] != queue
                }

    def _call(self, op: str, **params: Any) -> Any:
        """Issue one operation with a fresh op id."""
        if self._closed:
            raise NetError("SocketBus %r is closed" % self.name)
        request = dict(params)
        request["op"] = op
        self._op_seq += 1
        request["op_id"] = "%s#%d" % (self.session, self._op_seq)
        with self._lock:
            return self._perform(request)

    def retry_pending(self) -> Any:
        """Re-issue the request a :class:`~repro.errors.
        ConnectionLost` left pending — same op id, so it is safe even
        if the lost broker had already applied it.  Chaos drivers call
        this after restarting a durable broker."""
        with self._lock:
            if self._pending is None:
                raise NetError(
                    "SocketBus %r has no pending request to retry" % self.name
                )
            return self._perform(self._pending)

    @property
    def pending_op(self) -> str | None:
        """Operation name of the request a ConnectionLost left pending."""
        return self._pending.get("op") if self._pending else None

    def in_flight(self) -> list[tuple[str, str]]:
        """The (queue, msg_id) pairs this client currently holds."""
        return sorted(self._in_flight)

    # -- heartbeats --------------------------------------------------------

    def _heartbeat_loop(self, interval: float) -> None:
        assert self._hb_stop is not None
        while not self._hb_stop.wait(interval):
            # Never contend with a real call (that *is* liveness), and
            # never touch a pending request awaiting retry_pending().
            if not self._lock.acquire(blocking=False):
                continue
            try:
                if self._closed or self._pending is not None:
                    continue
                try:
                    if self._sock is None:
                        self._open()
                    self._roundtrip({"op": "ping"})
                    self.heartbeats += 1
                except Exception:
                    # Best effort: the next real call reconnects.
                    self._drop_connection()
            finally:
                self._lock.release()

    # -- the MessageBus interface -----------------------------------------

    def send(
        self,
        queue: str,
        body: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> str:
        return self._call(
            "send", queue=queue, body=dict(body), headers=dict(headers or {})
        )

    def receive(self, queue: str) -> tuple[str, dict[str, Any]] | None:
        taken = self.receive_with_headers(queue)
        if taken is None:
            return None
        msg_id, body, __ = taken
        return msg_id, body

    def receive_with_headers(
        self, queue: str
    ) -> tuple[str, dict[str, Any], dict[str, str]] | None:
        wire = self._call("receive", queue=queue)
        if wire is None:
            return None
        msg_id, body, headers, __ = decode_envelope(wire)
        return msg_id, body, headers

    def ack(self, queue: str, msg_id: str) -> None:
        self._call("ack", queue=queue, msg_id=msg_id)

    def nack(self, queue: str, msg_id: str) -> None:
        self._call("nack", queue=queue, msg_id=msg_id)

    def dead_letter(self, queue: str, msg_id: str, reason: str) -> str:
        return self._call(
            "dead_letter", queue=queue, msg_id=msg_id, reason=reason
        )

    def recover_in_flight(self, queue: str | None = None) -> int:
        return self._call("recover_in_flight", queue=queue)

    def depth(self, queue: str) -> int:
        return self._call("depth", queue=queue)

    def deliveries(self, queue: str, msg_id: str) -> int:
        return self._call("deliveries", queue=queue, msg_id=msg_id)

    def queues(self) -> list[str]:
        return self._call("queues")

    def stats(self, queue: str | None = None) -> dict[str, Any]:
        return self._call("stats", queue=queue)

    # -- dead-letter operations -------------------------------------------

    def dlq_entries(self, queue: str | None = None) -> list[dict[str, Any]]:
        return self._call("dlq_inspect", queue=queue)

    def dlq_drain(self, queue: str, *, requeue: bool = True) -> int:
        return self._call("dlq_drain", queue=queue, requeue=requeue)

    # -- chaos and monitoring ---------------------------------------------

    def install_injector(self, injector: Any) -> None:
        """Ship an injector's rules and seed to the broker, which
        builds its own :class:`~repro.resilience.faults.FaultInjector`
        over them — the chaos adversary runs *behind* the transport,
        exactly where the in-memory suite puts it."""
        from repro.net.server import _rule_to_wire

        self._call(
            "install_injector",
            rules=[_rule_to_wire(rule) for rule in injector.rules],
            seed=injector.seed,
        )

    def injector_trace(self) -> list[tuple[str, str, str, int]]:
        """The broker-side chaos trace, in the same tuple shape as
        :meth:`FaultInjector.trace` — what multi-process chaos runs
        diff across replays."""
        return [tuple(entry) for entry in self._call("injector_trace")]

    def snapshot(self) -> dict[str, Any]:
        return self._call("snapshot")

    def ping(self) -> str:
        return self._call("ping")

    def shutdown_server(self) -> None:
        self._call("shutdown")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        if self._hb_stop is not None:
            self._hb_stop.set()
            if self._hb_thread is not None:
                self._hb_thread.join(timeout=5)
        with self._lock:
            self._closed = True
            self._drop_connection()

    def __enter__(self) -> "SocketBus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return "SocketBus(%s:%d, name=%r, %s, reconnects=%d)" % (
            self._host,
            self._port,
            self.name,
            state,
            self.reconnects,
        )
