"""Write-ahead bus log: the broker's durability substrate.

PR 8 put the authoritative :class:`~repro.wfms.messaging.MessageBus`
behind a socket — and thereby into one process's volatile memory.  A
broker crash silently destroyed every queue, in-flight envelope, DLQ
entry and stat bucket, even though every *node* could replay its own
journal.  :class:`BusLog` closes that hole with the same machinery the
engine store uses (:mod:`repro.store`):

* a :class:`BusLogJournal` — a :class:`~repro.store.segments.
  SegmentedJournal` whose record types are the **state-mutating bus
  operations** (``send``, ``reject``, ``ack``, ``nack``,
  ``dead_letter``, ``dlq_drain``, ``recover_in_flight``) and whose
  fault sites are ``buslog.append`` / ``buslog.fsync``.  The
  ``always | batch | never`` sync policies apply unchanged;
* checkpoints — atomic, checksummed snapshots of the full bus state
  (:func:`repro.store.snapshot.write_checkpoint`) tagged with the
  journal offset they cover, retired and compacted exactly like the
  engine's, so recovery is O(delta since last checkpoint);
* an ``EPOCH`` file bumped on every open — the broker-restart token
  clients compare in the hello reply to detect that their session
  died with a previous broker incarnation.

**Effects, not intents.**  A ``send`` record stores what the
fault injector *decided* (the enqueued envelopes, or none for a drop)
rather than the request parameters, so replay applies the journaled
outcome directly and never re-consults the RNG — the determinism
contract extends across broker restarts for free.

**Receives are deliberately not journaled.**  Delivery is volatile by
design: a broker crash clears every in-flight reservation (the same
at-least-once semantics as a consumer crash), and surviving consumers
re-reserve their messages via session resume
(:meth:`~repro.wfms.messaging.MessageBus.mark_in_flight`).  The cost
is that ``delivered``/``redelivered`` stat counters only survive up
to the last checkpoint; the benefit is that the hot receive path pays
no durability point.

Each journaled record also carries the issuing client's **op id** and
the broker's reply, so recovery rebuilds the per-session dedup table:
a request replayed across a broker restart (client applied, broker
died before replying) returns the cached reply instead of
double-applying.
"""

from __future__ import annotations

import os
import re
import tempfile
from typing import Any

from repro.errors import RecoveryError
from repro.store.segments import SegmentedJournal
from repro.store.snapshot import fsync_dir, load_checkpoint, write_checkpoint
from repro.wfms.messaging import MessageBus, _Envelope, dlq_name

#: The state-mutating bus operations the log journals.  Everything
#: else (``receive``, ``depth``, ``stats``, ...) is either volatile by
#: design or read-only.
BUS_RECORD_TYPES = frozenset(
    {
        "send",
        "reject",
        "ack",
        "nack",
        "dead_letter",
        "dlq_drain",
        "recover_in_flight",
    }
)

CHECKPOINT_TEMPLATE = "buscheck-%08d.json"
_CHECKPOINT_RE = re.compile(r"^buscheck-(\d{8})\.json$")
EPOCH_NAME = "EPOCH"
LOG_DIRNAME = "log"


class BusLogJournal(SegmentedJournal):
    """The broker's segmented journal: bus-op record types, consulted
    at the ``buslog.append`` / ``buslog.fsync`` fault sites."""

    record_types = BUS_RECORD_TYPES
    fault_scope = "buslog"


def _msg_seq(msg_id: str) -> int:
    """The counter value behind an ``m%06d`` message id (-1 for
    foreign ids, which cannot collide with generated ones anyway)."""
    if msg_id.startswith("m") and msg_id[1:].isdigit():
        return int(msg_id[1:])
    return -1


def replay_into(bus: MessageBus, record: dict[str, Any]) -> None:
    """Apply one journaled bus record to ``bus``.

    Replays the journaled *effect* — envelopes are rebuilt with their
    recorded ids, acks remove by id regardless of in-flight state
    (delivery reservations are volatile and not journaled) — so a
    replayed history converges on the pre-crash queues without
    consulting any injector.
    """
    rtype = record.get("type")
    queue = record.get("queue", "")
    if rtype == "send":
        bus._stat(queue, "sent")
        effect = record.get("effect", "enqueued")
        if effect != "enqueued":
            bus._stat(
                queue,
                {"dropped": "dropped", "duplicated": "duplicated",
                 "delayed": "delayed"}[effect],
            )
        for row in record.get("entries") or []:
            bus._queues.setdefault(queue, []).append(
                _Envelope(
                    row["msg_id"],
                    dict(row.get("body") or {}),
                    dict(row.get("headers") or {}),
                    hold=int(row.get("hold", 0)),
                )
            )
        return
    if rtype == "reject":
        envelope = _Envelope(
            record["msg_id"],
            dict(record.get("body") or {}),
            dict(record.get("headers") or {}),
        )
        envelope.headers["dead-letter-reason"] = record.get("reason", "")
        target = dlq_name(queue)
        bus._queues.setdefault(target, []).append(envelope)
        bus._stat(queue, "overflowed")
        bus._stat(target, "sent")
        return
    if rtype == "ack":
        msg_id = record.get("msg_id", "")
        envelopes = bus._queues.get(queue, [])
        for index, envelope in enumerate(envelopes):
            if envelope.msg_id == msg_id:
                del envelopes[index]
                bus._stat(queue, "acked")
                return
        raise RecoveryError(
            "bus log replays ack of unknown message %s on %s"
            % (msg_id, queue)
        )
    if rtype == "nack":
        # The reservation being returned was never journaled; on
        # replay the envelope is already deliverable.  Keep the stat.
        bus._stat(queue, "nacked")
        return
    if rtype == "dead_letter":
        msg_id = record.get("msg_id", "")
        envelopes = bus._queues.get(queue, [])
        for index, envelope in enumerate(envelopes):
            if envelope.msg_id == msg_id:
                del envelopes[index]
                envelope.in_flight = False
                envelope.headers["dead-letter-reason"] = record.get(
                    "reason", ""
                )
                target = dlq_name(queue)
                bus._queues.setdefault(target, []).append(envelope)
                bus._stat(queue, "dead_lettered")
                bus._stat(target, "sent")
                return
        raise RecoveryError(
            "bus log replays dead_letter of unknown message %s on %s"
            % (msg_id, queue)
        )
    if rtype == "dlq_drain":
        drained = bus.dlq_drain(
            queue, requeue=bool(record.get("requeue", True))
        )
        expected = record.get("drained")
        if expected is not None and drained != expected:
            raise RecoveryError(
                "bus log replay diverged: dlq_drain(%s) moved %d "
                "messages, the record says %d" % (queue, drained, expected)
            )
        return
    if rtype == "recover_in_flight":
        # In-flight reservations are volatile; on replay there is
        # nothing to recover.  (No stat bucket either — parity with
        # the live operation.)
        return
    raise RecoveryError("bus log holds unknown record type %r" % rtype)


class BusLog:
    """One broker's durable directory: journal + checkpoints + epoch.

    Layout under ``directory``::

        EPOCH                 restart counter (bumped every open)
        buscheck-%08d.json    checkpoints, numbered by covered offset
        log/                  the BusLogJournal segment directory

    ``sync`` is the journal's durability policy
    (``always | batch | never``); ``checkpoint_every`` (records)
    arms :meth:`due` for the broker's automatic checkpointing;
    ``keep_checkpoints`` bounds retained snapshots (the newest may
    always be torn by a crash, so at least 2 are kept).
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        sync: str = "always",
        checkpoint_every: int | None = None,
        keep_checkpoints: int = 2,
        segment_max_records: int | None = 1024,
        injector=None,
        obs=None,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if keep_checkpoints < 2:
            raise ValueError(
                "keep_checkpoints must be >= 2 (the newest checkpoint "
                "may be torn by the crash being recovered from)"
            )
        self._directory = os.fspath(directory)
        os.makedirs(self._directory, exist_ok=True)
        self._checkpoint_every = checkpoint_every
        self._keep_checkpoints = keep_checkpoints
        self._injector = injector
        self.epoch = self._bump_epoch()
        self.journal = BusLogJournal(
            os.path.join(self._directory, LOG_DIRNAME),
            sync=sync,
            segment_max_records=segment_max_records,
            injector=injector,
            obs=obs,
        )
        self._since_checkpoint = 0
        self._last_checkpoint_offset: int | None = None
        self.checkpoint_failures = 0
        newest = self._checkpoint_offsets()
        if newest:
            self._last_checkpoint_offset = newest[-1]

    # -- layout ---------------------------------------------------------

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def sync(self) -> str:
        return self.journal.sync

    def _epoch_path(self) -> str:
        return os.path.join(self._directory, EPOCH_NAME)

    def _checkpoint_path(self, offset: int) -> str:
        return os.path.join(self._directory, CHECKPOINT_TEMPLATE % offset)

    def _checkpoint_offsets(self) -> list[int]:
        """Covered offsets of every checkpoint file, oldest first."""
        offsets = []
        for name in os.listdir(self._directory):
            matched = _CHECKPOINT_RE.match(name)
            if matched:
                offsets.append(int(matched.group(1)))
        return sorted(offsets)

    def _bump_epoch(self) -> int:
        """Read, increment and atomically rewrite the EPOCH file —
        each open of the durable directory is a new broker
        incarnation, observable by clients in the hello reply."""
        path = self._epoch_path()
        prior = 0
        try:
            with open(path, "r", encoding="utf-8") as handle:
                prior = int(handle.read().strip() or 0)
        except (OSError, ValueError):
            prior = 0
        epoch = prior + 1
        fd, tmp = tempfile.mkstemp(
            prefix=EPOCH_NAME + ".", suffix=".tmp", dir=self._directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write("%d\n" % epoch)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        fsync_dir(self._directory)
        return epoch

    def set_injector(self, injector) -> None:
        """Swap the fault injector (``install_injector`` over the
        wire installs one after the broker already opened its log)."""
        self._injector = injector
        self.journal._injector = injector

    # -- appends --------------------------------------------------------

    def record(self, record: dict[str, Any]) -> None:
        """Journal one state-mutating bus op (may raise
        :class:`~repro.errors.JournalError` — the broker treats a
        failing bus log as fatal, exactly like a failing disk)."""
        self.journal.append(record)
        self._since_checkpoint += 1

    def due(self) -> bool:
        """Whether the automatic checkpoint interval has elapsed."""
        return (
            self._checkpoint_every is not None
            and self._since_checkpoint >= self._checkpoint_every
        )

    # -- checkpoints ----------------------------------------------------

    def checkpoint(
        self, bus_state: dict[str, Any], sessions: dict[str, Any]
    ) -> int:
        """One durable snapshot of the whole broker state; returns the
        covered offset.

        Protocol (the :class:`~repro.store.durable.DurableStore`
        discipline): flush the journal, rotate the active segment so a
        compaction boundary exists at the offset, atomically write the
        checkpoint, verify it by reloading, retire old snapshots, then
        compact the journal below the offset.
        """
        self.journal.flush()
        self.journal.rotate()
        offset = self.journal.next_index
        state = {
            "offset": offset,
            "bus": bus_state,
            "sessions": sessions,
        }
        path = self._checkpoint_path(offset)
        write_checkpoint(path, state, injector=self._injector)
        if load_checkpoint(path) is None:
            raise RecoveryError(
                "checkpoint %s failed post-write verification" % path
            )
        self._last_checkpoint_offset = offset
        self._since_checkpoint = 0
        self._retire_checkpoints()
        # Compact only below the *oldest retained* checkpoint: the
        # newest may be torn by the next crash, and its fallback needs
        # the journal suffix from the older snapshot's offset.
        retained = self._checkpoint_offsets()
        if retained:
            self.journal.compact(retained[0], injector=self._injector)
        return offset

    def _retire_checkpoints(self) -> None:
        for offset in self._checkpoint_offsets()[: -self._keep_checkpoints]:
            try:
                os.unlink(self._checkpoint_path(offset))
            except OSError:
                pass

    def latest_checkpoint(self) -> tuple[dict[str, Any] | None, int]:
        """Newest checkpoint state that verifies, plus how many newer
        ones were skipped as torn/corrupt (falling back to an older
        snapshot costs replay time, never correctness)."""
        skipped = 0
        for offset in reversed(self._checkpoint_offsets()):
            state = load_checkpoint(self._checkpoint_path(offset))
            if state is not None:
                return state, skipped
            skipped += 1
        return None, skipped

    # -- recovery -------------------------------------------------------

    def recover_into(self, bus: MessageBus) -> dict[str, Any]:
        """Rebuild the bus (queues, DLQ, stats, id counter) and the
        per-session dedup table from checkpoint + journal suffix;
        returns the recovery report the broker surfaces in its
        snapshot."""
        state, skipped = self.latest_checkpoint()
        offset = 0
        sessions: dict[str, Any] = {}
        restored = 0
        if state is not None:
            offset = int(state.get("offset", 0))
            restored = bus.restore_state(state.get("bus") or {})
            sessions = {
                name: dict(entry)
                for name, entry in (state.get("sessions") or {}).items()
            }
        suffix = self.journal.suffix(offset)
        counter = bus._counter
        for record in suffix:
            replay_into(bus, record)
            for row in record.get("entries") or []:
                counter = max(counter, _msg_seq(row["msg_id"]) + 1)
            if record.get("msg_id"):
                counter = max(counter, _msg_seq(record["msg_id"]) + 1)
            session = record.get("client")
            if session and record.get("op_id"):
                # Re-insertion keeps the table's LRU order: the
                # broker's session cap evicts oldest-first.
                sessions.pop(session, None)
                sessions[session] = {
                    "op_id": record["op_id"],
                    "reply": record.get("reply"),
                }
        bus._counter = counter
        return {
            "checkpoint_offset": offset,
            "checkpoints_skipped": skipped,
            "restored_messages": restored,
            "replayed_records": len(suffix),
            "sessions": sessions,
        }

    # -- lifecycle / inspection ----------------------------------------

    def status(self) -> dict[str, Any]:
        """Durability status for the monitor's NET view."""
        offsets = self._checkpoint_offsets()
        return {
            "directory": self._directory,
            "epoch": self.epoch,
            "sync": self.sync,
            "records": self.journal.next_index,
            "unflushed": self.journal.unflushed(),
            "segments_live": self.journal.segments_live,
            "checkpoints": len(offsets),
            "last_checkpoint_offset": self._last_checkpoint_offset,
            "records_since_checkpoint": self._since_checkpoint,
            "checkpoint_failures": self.checkpoint_failures,
        }

    def flush(self) -> None:
        self.journal.flush()

    def close(self) -> None:
        self.journal.close()

    def abandon(self) -> None:
        """Release the journal without a final commit — the failing-
        disk path (a flush would only raise again)."""
        self.journal.abandon()
