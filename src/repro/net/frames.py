"""Wire format: length-prefixed JSON frames.

One frame is ``<4-byte big-endian length><payload>`` where the payload
is UTF-8 JSON with sorted keys and no insignificant whitespace.  The
format is deliberately boring: every value the in-memory
:class:`~repro.wfms.messaging.MessageBus` holds (message bodies,
headers, stat buckets) is already JSON-native, so a message **envelope
round-trips the wire bit-for-bit** — span-context headers (PR 3),
request ids and delivery counts (PR 4) included.  The property test in
``tests/net/test_frames.py`` asserts exactly that, including frames
split across arbitrary read boundaries.

:class:`FrameDecoder` is the incremental half: feed it whatever the
socket produced (single bytes, half a header, three frames at once)
and it yields every completed payload, buffering the rest.  A frame
longer than :data:`MAX_FRAME_BYTES` raises :class:`FrameError` —
a corrupt or hostile length prefix must not make the decoder allocate
gigabytes.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.errors import NetError


class FrameError(NetError):
    """The byte stream is not a well-formed frame sequence."""


#: Hard ceiling on one frame's payload (16 MiB) — a sanity bound, not
#: a tuning knob; workflow envelopes are a few hundred bytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(payload: Any) -> bytes:
    """One framed message: length prefix + compact sorted-key JSON."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            "frame payload of %d bytes exceeds the %d-byte limit"
            % (len(body), MAX_FRAME_BYTES)
        )
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame decoder over an arbitrary chunking.

    ``feed(data)`` returns every payload completed by ``data`` (zero
    or more) and keeps the unfinished tail buffered; ``pending`` tells
    how many buffered bytes await completion.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Any]:
        self._buffer.extend(data)
        frames: list[Any] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    "frame header announces %d bytes (limit %d)"
                    % (length, MAX_FRAME_BYTES)
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            try:
                frames.append(json.loads(body.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise FrameError("undecodable frame payload: %s" % exc)


# ---------------------------------------------------------------------------
# message envelopes
# ---------------------------------------------------------------------------


def encode_envelope(
    msg_id: str,
    body: dict[str, Any],
    headers: dict[str, str],
    deliveries: int = 0,
) -> dict[str, Any]:
    """The wire shape of one bus message.

    Identical field semantics to the in-memory envelope: the body and
    headers are carried verbatim (span context and exactly-once
    request ids live inside them), ``deliveries`` is the broker's
    delivery count for the redelivery/dead-letter machinery.
    """
    return {
        "msg_id": msg_id,
        "body": body,
        "headers": headers,
        "deliveries": deliveries,
    }


def decode_envelope(
    wire: dict[str, Any],
) -> tuple[str, dict[str, Any], dict[str, str], int]:
    """Inverse of :func:`encode_envelope`; raises :class:`FrameError`
    on a malformed envelope."""
    try:
        msg_id = wire["msg_id"]
        body = wire["body"]
        headers = wire["headers"]
        deliveries = wire.get("deliveries", 0)
    except (TypeError, KeyError) as exc:
        raise FrameError("malformed envelope: missing %s" % exc)
    if not isinstance(body, dict) or not isinstance(headers, dict):
        raise FrameError("malformed envelope: body/headers must be objects")
    return msg_id, body, headers, deliveries
