"""Real socket transport for the message bus (``repro.net``).

Through PR 7 every distributed topology — :class:`WorkflowNode`
clusters, :class:`ShardedEngine` — shared one in-memory
:class:`~repro.wfms.messaging.MessageBus` object.  This package puts a
real network between the nodes without changing a line of node code:

* :mod:`repro.net.frames` — the wire format: length-prefixed JSON
  frames whose envelopes carry the existing message bodies, headers
  (span context, delivery ids) and stat semantics byte-for-byte;
* :mod:`repro.net.server` — :class:`BusServer`, an asyncio broker
  owning the **authoritative** MessageBus.  Because the queues (and
  any installed :class:`~repro.resilience.faults.FaultInjector`) live
  behind the transport, the chaos suite's drop/duplicate/delay rules
  apply to socket traffic unchanged;
* :mod:`repro.net.client` — :class:`SocketBus`, a client proxy
  implementing the MessageBus interface over a TCP connection, with
  reconnect-with-backoff, typed admission errors, op-level idempotency
  and broker-restart session resume;
* :mod:`repro.net.buslog` — :class:`BusLog`, the write-ahead log +
  checkpoint store that makes a broker durable: every state-mutating
  bus op is journaled (by its *effects*, so replay never re-rolls the
  chaos dice) and a restarted ``BusServer(durable_dir=...)`` rebuilds
  queues, DLQ, stats and its idempotency table from checkpoint +
  log suffix.

Production concerns are first-class at the broker: bounded per-queue
depth (overflow nacks the send and feeds the existing dead-letter
path), breaker-driven load shedding (typed rejection at admission,
never a silent drop), per-connection accounting for the monitor's NET
view, and DLQ inspect/drain operations for operators.

See DESIGN.md §14 for the framing format and the
chaos-behind-the-injector contract, and §15 for the bus log format
and the recovery/determinism contract across broker restarts.
"""

from repro.net.buslog import BusLog, BusLogJournal, replay_into
from repro.net.client import SocketBus
from repro.net.frames import (
    FrameDecoder,
    FrameError,
    MAX_FRAME_BYTES,
    decode_envelope,
    encode_envelope,
    encode_frame,
)
from repro.net.server import (
    BrokerProcess,
    BusServer,
    BusServerThread,
)

__all__ = [
    "BrokerProcess",
    "BusLog",
    "BusLogJournal",
    "BusServer",
    "BusServerThread",
    "FrameDecoder",
    "FrameError",
    "MAX_FRAME_BYTES",
    "SocketBus",
    "decode_envelope",
    "encode_envelope",
    "encode_frame",
    "replay_into",
]
