"""Exception hierarchy for the whole reproduction.

Every package raises subclasses of :class:`ReproError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Workflow engine (repro.wfms)
# ---------------------------------------------------------------------------

class WorkflowError(ReproError):
    """Base class for workflow-engine errors."""


class DefinitionError(WorkflowError):
    """A process definition is structurally invalid (bad graph, missing
    activity, duplicate names, type clashes, ...)."""


class ConditionError(WorkflowError):
    """A transition/start/exit condition failed to parse or evaluate."""


class ContainerError(WorkflowError):
    """Illegal access to a data container (unknown field, type mismatch)."""


class NavigationError(WorkflowError):
    """The runtime was driven into an illegal state transition."""


class ProgramError(WorkflowError):
    """A registered program is missing or raised during invocation."""


class StaffResolutionError(WorkflowError):
    """No eligible user could be determined for a manual activity."""


class WorklistError(WorkflowError):
    """Illegal worklist operation (claiming a vanished item, ...)."""


class RecoveryError(WorkflowError):
    """The persistent journal is corrupt or replay failed."""


class JournalError(WorkflowError):
    """The journal's backing store failed (disk write/fsync error,
    injected or real).  The engine degrades to crashed; the durable
    prefix of the journal remains replayable."""


# ---------------------------------------------------------------------------
# Durable flows (repro.flow)
# ---------------------------------------------------------------------------

class FlowError(WorkflowError):
    """Misuse of the durable-flow front end (repro.flow): calling a
    transaction step outside a flow, a non-JSON-serializable step
    result, a determinism violation on replay."""


class StepFailure(FlowError):
    """A journaled flow step raised.  The failure is part of the flow's
    durable history: replay re-raises it at the same ``function_id``
    with the same type name and message, so ``except StepFailure``
    control flow in workflow code is deterministic across resumes."""

    def __init__(self, step: str, error_type: str, message: str):
        super().__init__(
            "step %r failed: %s: %s" % (step, error_type, message)
        )
        self.step = step
        self.error_type = error_type
        self.error_message = message


# ---------------------------------------------------------------------------
# Socket transport (repro.net)
# ---------------------------------------------------------------------------

class NetError(WorkflowError):
    """Base class for socket-transport errors (framing, connection,
    broker protocol)."""


class ConnectionLost(NetError):
    """The broker connection died and could not be re-established
    within the client's reconnect budget."""


class QueueOverflow(NetError):
    """A send was nacked at admission: the target queue is at its
    bounded depth.  The rejected message was moved to the queue's
    dead-letter queue (inspectable, replayable) instead of growing the
    backlog."""

    def __init__(self, message: str = "queue overflow", *, queue: str = ""):
        self.queue = queue
        super().__init__(message)


class LoadShedded(NetError):
    """A send was rejected at admission by the broker's circuit
    breaker: the queue has been overflowing persistently, so the
    broker fails fast instead of paying the overflow path per send.
    Nothing was enqueued or dead-lettered — the caller owns the retry
    decision."""

    def __init__(self, message: str = "load shedded", *, queue: str = ""):
        self.queue = queue
        super().__init__(message)


# ---------------------------------------------------------------------------
# Observability (repro.obs)
# ---------------------------------------------------------------------------

class ObservabilityError(ReproError):
    """Illegal use of the observability subsystem (instrument
    re-registered with a different shape, subscribing hooks on a
    disabled engine, ...)."""


# ---------------------------------------------------------------------------
# FDL (repro.fdl)
# ---------------------------------------------------------------------------

class FDLError(ReproError):
    """Base class for FlowMark Definition Language errors."""


class FDLSyntaxError(FDLError):
    """The FDL text could not be tokenised or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = "line %d:%d: %s" % (line, column, message)
        super().__init__(message)


class FDLSemanticError(FDLError):
    """The FDL parsed but describes an inconsistent process."""


# ---------------------------------------------------------------------------
# Transactional substrate (repro.tx)
# ---------------------------------------------------------------------------

class TransactionError(ReproError):
    """Base class for transactional-substrate errors."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (by the user, by deadlock
    resolution, by failure injection, or by a unilateral local abort)."""

    def __init__(self, message: str = "transaction aborted", *, reason: str = ""):
        self.reason = reason or message
        super().__init__(message)


class DeadlockError(TransactionAborted):
    """The transaction was chosen as a deadlock victim."""

    def __init__(self, message: str = "deadlock victim"):
        super().__init__(message, reason="deadlock")


class LockTimeoutError(TransactionAborted):
    """A lock could not be acquired within the configured timeout."""

    def __init__(self, message: str = "lock wait timeout"):
        super().__init__(message, reason="lock timeout")


class InvalidTransactionState(TransactionError):
    """An operation was issued against a finished transaction."""


class ScopeError(TransactionError):
    """Illegal use of a cross-activity transaction scope (unknown
    handle, double begin for one root instance, expired scope, ...)."""


class DatabaseCrashed(TransactionError):
    """The (simulated) database is down and must be restarted first."""


# ---------------------------------------------------------------------------
# Advanced transaction models (repro.core)
# ---------------------------------------------------------------------------

class ModelError(ReproError):
    """Base class for transaction-model specification errors."""


class SpecificationError(ModelError):
    """A saga/flexible-transaction specification is malformed."""


class WellFormednessError(ModelError):
    """A flexible transaction violates the well-formedness rules of
    [MRSK92]/[ZNBB94] (pivot placement, retriability guarantees, ...)."""


class TranslationError(ModelError):
    """A specification could not be translated into a workflow process."""


class ExecutionContractViolation(ModelError):
    """An executor produced a history outside the model's guarantee
    (e.g. a saga history that is neither T1..Tn nor T1..Tj;Cj..C1)."""


class SpecSyntaxError(ModelError):
    """The FMTM textual specification could not be parsed."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
