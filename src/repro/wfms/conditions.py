"""Transition / start / exit condition expressions.

FlowMark attaches boolean expressions over container members to control
connectors (transition conditions) and to activities (exit conditions).
This module implements that little language:

* comparisons ``= <> < <= > >=`` over numbers and strings,
* arithmetic ``+ - * / %``,
* boolean ``AND OR NOT`` (case-insensitive) and literals ``TRUE FALSE``,
* dotted identifiers resolving container members, e.g. ``Order.Total``
  or the predefined return code ``_RC`` (plain ``RC`` is accepted as an
  alias, matching the paper's figures).

Expressions are parsed once (at definition/import time) into a small
AST and evaluated many times against a *resolver* — any callable
mapping a dotted path to a value.

For hot paths the AST can additionally be *compiled* into nested
Python closures (:meth:`Condition.compiled`): each node becomes one
specialised function, so evaluation pays no per-node ``isinstance``
dispatch or operator decoding.  The compiled form is semantically
identical to the tree-walk interpreter (including the ``RC`` alias and
``ConditionError`` on unknown members) — a property test asserts the
equivalence over randomized expressions.

>>> cond = parse_condition("RC = 0 AND State_2 = 1")
>>> cond.evaluate({"_RC": 0, "State_2": 1}.get)
True
>>> cond.compiled({"_RC": 0, "State_2": 1}.get)
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.errors import ConditionError

Resolver = Callable[[str], Any]

_KEYWORDS = {"AND", "OR", "NOT", "TRUE", "FALSE"}
_COMPARATORS = {"=", "<>", "<", "<=", ">", ">="}


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Token:
    kind: str  # NUMBER STRING IDENT OP KEYWORD LPAREN RPAREN END
    value: Any
    pos: int


def _tokenize(text: str) -> Iterator[_Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    seen_dot = True
                i += 1
            lexeme = text[start:i]
            value = float(lexeme) if seen_dot else int(lexeme)
            yield _Token("NUMBER", value, start)
            continue
        if ch == '"' or ch == "'":
            quote, start = ch, i
            i += 1
            chars: list[str] = []
            while i < n and text[i] != quote:
                chars.append(text[i])
                i += 1
            if i >= n:
                raise ConditionError(
                    "unterminated string literal at %d in %r" % (start, text)
                )
            i += 1
            yield _Token("STRING", "".join(chars), start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] in "_."):
                i += 1
            lexeme = text[start:i]
            upper = lexeme.upper()
            if upper in _KEYWORDS:
                yield _Token("KEYWORD", upper, start)
            else:
                yield _Token("IDENT", lexeme, start)
            continue
        if ch in "(":
            yield _Token("LPAREN", ch, i)
            i += 1
            continue
        if ch == ")":
            yield _Token("RPAREN", ch, i)
            i += 1
            continue
        two = text[i : i + 2]
        if two in ("<>", "<=", ">="):
            yield _Token("OP", two, i)
            i += 2
            continue
        if ch in "=<>+-*/%":
            yield _Token("OP", ch, i)
            i += 1
            continue
        raise ConditionError("illegal character %r at %d in %r" % (ch, i, text))
    yield _Token("END", None, n)


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

class _Node:
    """Base AST node."""

    def evaluate(self, resolver: Resolver) -> Any:
        raise NotImplementedError

    def compile(self) -> Callable[[Resolver], Any]:
        """Lower this node into a closure equivalent to :meth:`evaluate`."""
        raise NotImplementedError

    def variables(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class _Literal(_Node):
    value: Any

    def evaluate(self, resolver: Resolver) -> Any:
        return self.value

    def compile(self) -> Callable[[Resolver], Any]:
        value = self.value
        return lambda resolver: value


@dataclass(frozen=True)
class _Variable(_Node):
    path: str

    def evaluate(self, resolver: Resolver) -> Any:
        value = resolver(self.path)
        if value is None and self.path == "RC":
            # Paper figures write the predefined return code as ``RC``;
            # containers store it as ``_RC``.
            value = resolver("_RC")
        if value is None:
            raise ConditionError("unknown variable %r" % self.path)
        return value

    def compile(self) -> Callable[[Resolver], Any]:
        path = self.path
        if path == "RC":
            def lookup_rc(resolver: Resolver) -> Any:
                value = resolver("RC")
                if value is None:
                    value = resolver("_RC")
                if value is None:
                    raise ConditionError("unknown variable 'RC'")
                return value

            return lookup_rc

        def lookup(resolver: Resolver) -> Any:
            value = resolver(path)
            if value is None:
                raise ConditionError("unknown variable %r" % path)
            return value

        return lookup

    def variables(self) -> set[str]:
        return {self.path}


@dataclass(frozen=True)
class _Unary(_Node):
    op: str  # NOT, NEG
    operand: _Node

    def evaluate(self, resolver: Resolver) -> Any:
        value = self.operand.evaluate(resolver)
        if self.op == "NOT":
            return not _truthy(value)
        return -_numeric(value)

    def compile(self) -> Callable[[Resolver], Any]:
        operand = self.operand.compile()
        if self.op == "NOT":
            return lambda resolver: not _truthy(operand(resolver))
        return lambda resolver: -_numeric(operand(resolver))

    def variables(self) -> set[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class _Binary(_Node):
    op: str
    left: _Node
    right: _Node

    def evaluate(self, resolver: Resolver) -> Any:
        if self.op == "AND":
            return _truthy(self.left.evaluate(resolver)) and _truthy(
                self.right.evaluate(resolver)
            )
        if self.op == "OR":
            return _truthy(self.left.evaluate(resolver)) or _truthy(
                self.right.evaluate(resolver)
            )
        lhs = self.left.evaluate(resolver)
        rhs = self.right.evaluate(resolver)
        if self.op in _COMPARATORS:
            return _compare(self.op, lhs, rhs)
        return _arith(self.op, lhs, rhs)

    def compile(self) -> Callable[[Resolver], Any]:
        op = self.op
        left = self.left.compile()
        right = self.right.compile()
        if op == "AND":
            return lambda resolver: _truthy(left(resolver)) and _truthy(
                right(resolver)
            )
        if op == "OR":
            return lambda resolver: _truthy(left(resolver)) or _truthy(
                right(resolver)
            )
        if op in _COMPARATORS:
            return lambda resolver: _compare(op, left(resolver), right(resolver))
        return lambda resolver: _arith(op, left(resolver), right(resolver))

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value != ""
    raise ConditionError("value %r has no boolean interpretation" % (value,))


def _numeric(value: Any) -> float | int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    raise ConditionError("value %r is not numeric" % (value,))


def _compare(op: str, lhs: Any, rhs: Any) -> bool:
    both_str = isinstance(lhs, str) and isinstance(rhs, str)
    both_num = isinstance(lhs, (int, float, bool)) and isinstance(
        rhs, (int, float, bool)
    )
    if not (both_str or both_num):
        raise ConditionError(
            "cannot compare %r with %r (mixed types)" % (lhs, rhs)
        )
    if op == "=":
        return lhs == rhs
    if op == "<>":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    return lhs >= rhs


def _arith(op: str, lhs: Any, rhs: Any) -> Any:
    if op == "+" and isinstance(lhs, str) and isinstance(rhs, str):
        return lhs + rhs
    left, right = _numeric(lhs), _numeric(rhs)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ConditionError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise ConditionError("modulo by zero")
        return left % right
    raise ConditionError("unknown operator %r" % op)


# ---------------------------------------------------------------------------
# Parser (recursive descent, precedence: OR < AND < NOT < cmp < +- < */%)
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = list(_tokenize(text))
        self._index = 0

    def parse(self) -> _Node:
        node = self._or()
        if self._peek().kind != "END":
            raise ConditionError(
                "trailing input at %d in %r" % (self._peek().pos, self._text)
            )
        return node

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _or(self) -> _Node:
        node = self._and()
        while self._peek().kind == "KEYWORD" and self._peek().value == "OR":
            self._advance()
            node = _Binary("OR", node, self._and())
        return node

    def _and(self) -> _Node:
        node = self._not()
        while self._peek().kind == "KEYWORD" and self._peek().value == "AND":
            self._advance()
            node = _Binary("AND", node, self._not())
        return node

    def _not(self) -> _Node:
        if self._peek().kind == "KEYWORD" and self._peek().value == "NOT":
            self._advance()
            return _Unary("NOT", self._not())
        return self._comparison()

    def _comparison(self) -> _Node:
        node = self._sum()
        token = self._peek()
        if token.kind == "OP" and token.value in _COMPARATORS:
            self._advance()
            node = _Binary(token.value, node, self._sum())
        return node

    def _sum(self) -> _Node:
        node = self._term()
        while self._peek().kind == "OP" and self._peek().value in "+-":
            op = self._advance().value
            node = _Binary(op, node, self._term())
        return node

    def _term(self) -> _Node:
        node = self._factor()
        while self._peek().kind == "OP" and self._peek().value in "*/%":
            op = self._advance().value
            node = _Binary(op, node, self._factor())
        return node

    def _factor(self) -> _Node:
        token = self._advance()
        if token.kind == "NUMBER" or token.kind == "STRING":
            return _Literal(token.value)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            return _Literal(token.value == "TRUE")
        if token.kind == "IDENT":
            return _Variable(token.value)
        if token.kind == "LPAREN":
            node = self._or()
            closing = self._advance()
            if closing.kind != "RPAREN":
                raise ConditionError(
                    "expected ')' at %d in %r" % (closing.pos, self._text)
                )
            return node
        if token.kind == "OP" and token.value == "-":
            return _Unary("NEG", self._factor())
        raise ConditionError(
            "unexpected token %r at %d in %r"
            % (token.value, token.pos, self._text)
        )


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

class Condition:
    """A parsed boolean expression.

    Instances are immutable and hash/compare on their source text, so a
    definition carrying conditions can itself be compared for equality
    (used by the FDL round-trip tests).
    """

    __slots__ = ("source", "_ast", "_compiled")

    def __init__(self, source: str, ast: _Node):
        self.source = source
        self._ast = ast
        self._compiled: Callable[[Resolver | dict[str, Any]], bool] | None = None

    def evaluate(self, resolver: Resolver | dict[str, Any]) -> bool:
        """Evaluate against a resolver callable or a plain mapping."""
        if isinstance(resolver, dict):
            mapping = resolver
            resolver = lambda path: mapping.get(path)  # noqa: E731
        try:
            return _truthy(self._ast.evaluate(resolver))
        except ConditionError as exc:
            raise ConditionError(
                "evaluating %r: %s" % (self.source, exc)
            ) from exc

    @property
    def compiled(self) -> Callable[[Resolver | dict[str, Any]], bool]:
        """Closure-compiled evaluator, lowered once and cached.

        Same contract as :meth:`evaluate` — accepts a resolver callable
        or a plain mapping, returns a bool, wraps errors with the
        expression source — but the AST is not revisited per call.
        """
        evaluator = self._compiled
        if evaluator is None:
            inner = self._ast.compile()
            source = self.source

            def evaluator(resolver: Resolver | dict[str, Any]) -> bool:
                if isinstance(resolver, dict):
                    resolver = resolver.get
                try:
                    return _truthy(inner(resolver))
                except ConditionError as exc:
                    raise ConditionError(
                        "evaluating %r: %s" % (source, exc)
                    ) from exc

            self._compiled = evaluator
        return evaluator

    def is_always(self) -> bool:
        """True for conditions that are literally ``TRUE`` (the default
        on connectors and exit conditions); lets compiled plans skip
        the evaluation call entirely."""
        return isinstance(self._ast, _Literal) and self._ast.value is True

    def variables(self) -> set[str]:
        """Dotted container paths referenced by the expression."""
        return self._ast.variables()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Condition) and other.source == self.source

    def __hash__(self) -> int:
        return hash(self.source)

    def __repr__(self) -> str:
        return "Condition(%r)" % self.source


#: A condition that is always true (the FlowMark default when a control
#: connector carries no explicit transition condition).
ALWAYS = Condition("TRUE", _Literal(True))

#: A condition that is always false (useful in tests).
NEVER = Condition("FALSE", _Literal(False))


def parse_condition(text: str | Condition | None) -> Condition:
    """Parse ``text`` into a :class:`Condition`.

    ``None`` and the empty string mean "no condition", i.e. always true.
    Passing an already-parsed condition returns it unchanged, so model
    code can accept either strings or conditions.
    """
    if text is None:
        return ALWAYS
    if isinstance(text, Condition):
        return text
    stripped = text.strip()
    if not stripped:
        return ALWAYS
    return Condition(stripped, _Parser(stripped).parse())
