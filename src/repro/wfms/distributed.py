"""Distributed workflow execution over persistent messages.

"Workflow systems are orders of magnitude more heterogeneous and
distributed than databases" (§2).  This module adds the distribution
dimension the paper's group built as Exotica/FMQM: several autonomous
workflow nodes, each running its own engine, cooperating through the
persistent :class:`~repro.wfms.messaging.MessageBus`.

A node *serves* process definitions; another node's process reaches
them through a **remote activity** — an ordinary program activity
whose program (a) sends a durable ``request`` message carrying the
activity's input container the first time it runs and (b) polls for
the matching ``reply`` on later attempts, its exit condition
(``Done = 1``) rescheduling it until the reply arrives.  Requests are
idempotent: the request id is derived from the caller's instance and
activity, the serving node keys its instance on it, and duplicate
requests for a finished instance simply re-send the reply.  That is
what makes the scheme crash-safe end to end:

* requester crash → journal replay reconstructs the polling activity,
  whose next attempt re-sends the (deduplicated) request;
* server crash → its journal replays the request instance, the bus
  redelivers the unacknowledged request, the reply is regenerated;
* lost/unacked messages → redelivered by the bus sweep.

Resilience (:mod:`repro.resilience`) hardens the scheme against
*unrecoverable* counterparts:

* poll attempts are spaced by a logical-clock **poll interval**
  instead of spinning, so :func:`run_cluster` can distinguish "waiting
  on a timer" from "deadlocked";
* a per-request **timeout** bounds the wait for a reply; the budget of
  ``retries`` re-sends the request (redelivery may be all that is
  needed), after which the activity *escalates*: it terminates with a
  failure return code and the caller's own transition conditions route
  control (compensation, alternative path);
* a per-remote-node **circuit breaker** (optional) fails fast while a
  counterpart is known dead instead of paying the timeout every call;
* a **max-deliveries cap** in :meth:`WorkflowNode.pump` routes
  poisoned messages (handler keeps raising) to the bus's dead-letter
  queue instead of redelivering them forever;
* :func:`run_cluster` detects a genuinely stuck cluster — a full
  round with no progress, no due timers, and unfinished watches — and
  raises naming the stuck instances.

When observability is enabled (``WorkflowNode(observability=True)``)
the requesting activity's span context travels in the request's
message *headers* and the serving node starts its instance with that
context as trace parent, so one distributed request/reply chain is one
trace spanning both engines.  The context is also journaled with the
served instance's ``process_started`` record: a server crash + replay
rejoins the same trace, and a redelivered request finds the existing
(request-id-keyed) instance instead of starting a second trace.
Timeout/breaker/dead-letter decisions emit ``RequestTimedOut``,
``BreakerTransition`` and ``MessageDeadLettered`` events plus
counters.

Use :func:`run_cluster` to drive all nodes to quiescence.
"""

from __future__ import annotations

from typing import Any

from repro.errors import NavigationError, WorkflowError
from repro.obs import (
    BreakerTransition,
    MessageDeadLettered,
    Observability,
    RequestTimedOut,
    resolve_observability,
)
from repro.resilience.faults import InjectedCrash
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.engine import Engine
from repro.wfms.messaging import MessageBus
from repro.wfms.model import Activity, ProcessDefinition
from repro.wfms.organization import Organization


def _inbox(node_name: str) -> str:
    return "node:%s" % node_name


def _reply_queue(node_name: str) -> str:
    return "replies:%s" % node_name


class WorkflowNode:
    """One engine plus its connection to the message bus.

    Resilience knobs (all deterministic, driven by the engine's
    logical clock):

    * ``max_deliveries`` — attempts a message gets before
      :meth:`pump` dead-letters it instead of redelivering;
    * ``request_timeout`` / ``request_retries`` — default reply budget
      for remote activities (per-activity overrides on
      :meth:`remote_activity`); ``None`` waits forever (pre-resilience
      behaviour);
    * ``poll_interval`` — logical seconds between reply polls;
    * ``breaker_factory`` — zero-argument callable building one
      :class:`~repro.resilience.policies.CircuitBreaker` per remote
      node, or ``None`` for no breaker;
    * ``fault_injector`` — a
      :class:`~repro.resilience.faults.FaultInjector` threaded into
      the engine (program/journal faults) and consulted by
      :meth:`pump` (forced node crashes);
    * ``store_factory`` — zero-argument callable building a fresh
      :class:`~repro.store.DurableStore` over this node's store
      directory (checkpointed recovery + finished-instance archive);
      mutually exclusive with ``journal_path``; :meth:`rebuild` builds
      a new store over the same files.
    """

    def __init__(
        self,
        name: str,
        bus: MessageBus,
        *,
        journal_path: str | None = None,
        organization: Organization | None = None,
        observability: Observability | bool | None = None,
        max_deliveries: int = 5,
        request_timeout: float | None = None,
        request_retries: int = 0,
        poll_interval: float = 1.0,
        breaker_factory=None,
        fault_injector=None,
        store_factory=None,
    ):
        if not name:
            raise WorkflowError("node name must be non-empty")
        if max_deliveries < 1:
            raise WorkflowError("max_deliveries must be >= 1")
        if poll_interval < 0:
            raise WorkflowError("poll_interval must be >= 0")
        if store_factory is not None and journal_path is not None:
            raise WorkflowError(
                "store_factory and journal_path are mutually exclusive"
            )
        self.name = name
        self.bus = bus
        self._journal_path = journal_path
        #: zero-argument callable building a fresh DurableStore over the
        #: node's store directory; each engine (initial and every
        #: rebuild) gets its own store object over the same files.
        self._store_factory = store_factory
        self._organization = organization
        self._max_deliveries = max_deliveries
        self._request_timeout = request_timeout
        self._request_retries = request_retries
        self._poll_interval = poll_interval
        self._breaker_factory = breaker_factory
        self._injector = fault_injector
        # Resolved once and reused by rebuild(), so counters and spans
        # accumulate across this node's crash/recover cycles.
        self.obs = resolve_observability(observability)
        self.engine = Engine(
            journal_path=journal_path,
            organization=organization,
            observability=self.obs,
            fault_injector=fault_injector,
            store=store_factory() if store_factory is not None else None,
        )
        self._served: set[str] = set()
        #: request_id -> full reply body (volatile reply cache).
        self._replies: dict[str, dict[str, Any]] = {}
        #: request_id -> [sent_at_clock, retries_left] for requests in
        #: flight (volatile; resent after a crash, deduplicated by the
        #: server).
        self._requested: dict[str, list] = {}
        #: request_id -> (reply_to, request headers) for requests being
        #: served but not yet finished (volatile; duplicates re-register
        #: it after a crash).
        self._pending: dict[str, tuple[str, dict[str, str]]] = {}
        #: remote node -> CircuitBreaker (volatile, breaker_factory).
        self._breakers: dict[str, Any] = {}
        self._breaker_seen: dict[str, int] = {}
        metrics = self.obs.metrics
        self._c_remote_timeouts = metrics.counter(
            "wfms_remote_timeouts_total",
            "Remote requests that exceeded their reply budget",
            labels=("action",),
        )
        self._c_breaker = metrics.counter(
            "wfms_breaker_transitions_total",
            "Circuit breaker state transitions",
            labels=("state",),
        )
        self._c_dead_lettered = metrics.counter(
            "wfms_messages_dead_lettered_total",
            "Poisoned messages routed to dead-letter queues",
        )

    # -- serving ---------------------------------------------------------

    def serve(self, definition: ProcessDefinition) -> None:
        """Make ``definition`` executable on behalf of other nodes."""
        if definition.name not in self.engine.definitions():
            self.engine.register_definition(definition)
        self._served.add(definition.name)

    def remote_activity(
        self,
        activity_name: str,
        *,
        process: str,
        node: str,
        input_spec: list[VariableDecl] | None = None,
        output_spec: list[VariableDecl] | None = None,
        max_poll_attempts: int = 100_000,
        timeout: float | None = None,
        retries: int | None = None,
        poll_interval: float | None = None,
        escalate_rc: int = 1,
    ) -> Activity:
        """Build an activity that executes ``process`` on ``node``.

        ``input_spec`` members are shipped as the remote process's
        input; ``output_spec`` members are filled from its output.
        Register the returned activity in a local definition as usual.

        ``timeout``/``retries``/``poll_interval`` override the node's
        request defaults for this activity; on a timed-out request the
        budget of ``retries`` re-sends are spent first, then the
        activity terminates with ``escalate_rc`` (and ``Done = 1``) so
        the caller's transition conditions take over.
        """
        inputs = list(input_spec or [])
        outputs = list(output_spec or [])
        program_name = "remote__%s__%s" % (node, process)
        self.engine.register_program(
            program_name,
            self._make_remote_program(
                node,
                process,
                inputs,
                outputs,
                timeout if timeout is not None else self._request_timeout,
                retries if retries is not None else self._request_retries,
                escalate_rc,
            ),
            "remote execution of %s on %s" % (process, node),
            replace=True,
        )
        self.engine.set_reschedule_delay(
            program_name,
            poll_interval if poll_interval is not None else self._poll_interval,
        )
        return Activity(
            activity_name,
            program=program_name,
            input_spec=inputs,
            output_spec=outputs + [VariableDecl("Done", DataType.LONG)],
            exit_condition="Done = 1",
            max_iterations=max_poll_attempts,
            description="remote %s @ %s" % (process, node),
        )

    def _make_remote_program(
        self, node, process, inputs, outputs, timeout, retries, escalate_rc
    ):
        def program(ctx) -> int:
            request_id = "%s/%s/%s" % (self.name, ctx.instance_id, ctx.activity)
            now = self.engine.clock
            reply = self._replies.pop(request_id, None)
            if reply is not None:
                self._requested.pop(request_id, None)
                breaker = self._breakers.get(node)
                if reply.get("state") == "error":
                    # The server could not produce the result (served
                    # instance lost); treat like a timed-out request.
                    if breaker is not None:
                        breaker.record_failure(now)
                        self._note_breaker(node, breaker)
                    ctx.output.set("Done", 1)
                    return escalate_rc
                if breaker is not None:
                    breaker.record_success(now)
                    self._note_breaker(node, breaker)
                output = reply.get("output", {})
                for decl in outputs:
                    if decl.name in output:
                        ctx.output.set(decl.name, output[decl.name])
                ctx.output.set("Done", 1)
                return 0
            state = self._requested.get(request_id)
            if state is None:
                breaker = self._breaker_for(node)
                if breaker is not None and not breaker.allow(now):
                    # Open breaker: fail fast instead of paying the
                    # timeout against a known-dead counterpart.
                    self._note_breaker(node, breaker)
                    ctx.output.set("Done", 1)
                    return escalate_rc
                self._send_request(ctx, request_id, node, process, inputs)
                self._requested[request_id] = [now, retries]
            elif timeout is not None and now - state[0] >= timeout:
                breaker = self._breakers.get(node)
                if breaker is not None:
                    breaker.record_failure(now)
                    self._note_breaker(node, breaker)
                if state[1] > 0:
                    # Spend one re-send from the budget: the original
                    # request (or its reply) may simply be lost.
                    state[0] = now
                    state[1] -= 1
                    self._send_request(ctx, request_id, node, process, inputs)
                    self._note_timeout(node, request_id, "resent", now)
                else:
                    self._requested.pop(request_id, None)
                    self._note_timeout(node, request_id, "escalated", now)
                    ctx.output.set("Done", 1)
                    return escalate_rc
            ctx.output.set("Done", 0)
            return 0

        return program

    def _send_request(self, ctx, request_id, node, process, inputs) -> None:
        self.bus.send(
            _inbox(node),
            {
                "type": "request",
                "request_id": request_id,
                "process": process,
                "input": {
                    decl.name: ctx.input.get(decl.name) for decl in inputs
                },
                "reply_to": _reply_queue(self.name),
            },
            # Trace context of the requesting activity rides in the
            # headers; {} when observability is off.
            headers=self.engine.navigator.trace_headers(
                ctx.instance_id, ctx.activity
            ),
        )

    def _breaker_for(self, node: str):
        if self._breaker_factory is None:
            return None
        breaker = self._breakers.get(node)
        if breaker is None:
            breaker = self._breakers[node] = self._breaker_factory()
        return breaker

    def _note_breaker(self, remote: str, breaker) -> None:
        seen = self._breaker_seen.get(remote, 0)
        transitions = breaker.transitions
        if len(transitions) <= seen:
            return
        fresh = transitions[seen:]
        self._breaker_seen[remote] = len(transitions)
        if self.obs.enabled:
            hooks = self.obs.hooks
            for state, at in fresh:
                self._c_breaker.labels(state).inc()
                if hooks.wants(BreakerTransition):
                    hooks.publish(
                        BreakerTransition(self.name, remote, state, at)
                    )

    def _note_timeout(
        self, remote: str, request_id: str, action: str, now: float
    ) -> None:
        if self.obs.enabled:
            self._c_remote_timeouts.labels(action).inc()
            hooks = self.obs.hooks
            if hooks.wants(RequestTimedOut):
                hooks.publish(
                    RequestTimedOut(self.name, remote, request_id, action, now)
                )

    # -- message processing ---------------------------------------------------

    def pump(self, max_messages: int = 10) -> int:
        """Process up to ``max_messages`` inbound messages and send
        replies for served requests that have finished; returns how
        many messages/replies were handled."""
        if self._injector is not None and self._injector.on_pump(self.name):
            self.crash()
            raise InjectedCrash(
                "node %s crashed (injected fault)" % self.name
            )
        handled = 0
        for __ in range(max_messages):
            if self._pump_one(_inbox(self.name), self._handle_request):
                handled += 1
                continue
            if self._pump_one(
                _reply_queue(self.name), self._handle_reply
            ):
                handled += 1
                continue
            break
        handled += self._flush_pending()
        return handled

    def _flush_pending(self) -> int:
        sent = 0
        for request_id in list(self._pending):
            instance_id = "req/%s" % request_id
            try:
                # Archive-aware lookup: a store-backed node moves a
                # finished served instance to the archive, which must
                # read as "finished", not "lost".
                state = self.engine.instance_state(instance_id)
            except NavigationError:
                # The served instance is gone (e.g. the engine was
                # rebuilt from a journal that never recorded the
                # start).  Holding the entry would leak it forever and
                # leave the requester polling: answer with an error
                # reply so its timeout/escalation machinery (or the
                # error branch of the poll program) takes over.
                reply_to, headers = self._pending.pop(request_id)
                self.bus.send(
                    reply_to,
                    {
                        "type": "reply",
                        "request_id": request_id,
                        "state": "error",
                        "error": "node %s lost instance %s"
                        % (self.name, instance_id),
                        "output": {},
                    },
                    headers=headers,
                )
                sent += 1
                continue
            if state != "finished":
                continue
            reply_to, headers = self._pending.pop(request_id)
            self.bus.send(
                reply_to,
                {
                    "type": "reply",
                    "request_id": request_id,
                    "output": self.engine.output(instance_id),
                    "state": state,
                },
                headers=headers,  # echo the request's trace context
            )
            sent += 1
        return sent

    def _pump_one(self, queue: str, handler) -> bool:
        message = self.bus.receive_with_headers(queue)
        if message is None:
            return False
        msg_id, body, headers = message
        try:
            handler(body, headers)
        except Exception as exc:
            if self.bus.deliveries(queue, msg_id) >= self._max_deliveries:
                # Poisoned message: every delivery fails.  Park it on
                # the dead-letter queue (inspectable, replayable by an
                # operator) instead of wedging the pump forever.
                reason = "%s: %s" % (type(exc).__name__, exc)
                deliveries = self.bus.deliveries(queue, msg_id)
                self.bus.dead_letter(queue, msg_id, reason)
                if self.obs.enabled:
                    self._c_dead_lettered.inc()
                    hooks = self.obs.hooks
                    if hooks.wants(MessageDeadLettered):
                        hooks.publish(
                            MessageDeadLettered(
                                queue, msg_id, reason, deliveries
                            )
                        )
                return True
            self.bus.nack(queue, msg_id)
            raise
        self.bus.ack(queue, msg_id)
        return True

    def _handle_request(
        self, body: dict[str, Any], headers: dict[str, str]
    ) -> None:
        process = body["process"]
        request_id = body["request_id"]
        if process not in self._served:
            raise WorkflowError(
                "node %s does not serve process %r" % (self.name, process)
            )
        instance_id = "req/%s" % request_id
        try:
            # Archive-aware: a duplicate request for an already-archived
            # instance must re-send its reply, not restart it.
            self.engine.instance_state(instance_id)
        except NavigationError:
            self.engine.verify_executable(process)
            # The served instance joins the requester's trace via the
            # message headers.  A redelivered request never reaches
            # this branch (the instance exists), so it cannot start a
            # second trace.
            self.engine.navigator.start_process(
                process,
                body.get("input", {}),
                instance_id=instance_id,
                trace_parent=headers or None,
            )
        # Serve asynchronously: the instance advances through the
        # node's normal stepping (it may itself contain remote
        # activities); the reply goes out from _flush_pending once the
        # instance finishes.  Duplicate requests re-register here, so
        # replies are regenerated after a crash.
        self._pending[request_id] = (body["reply_to"], headers)

    def _handle_reply(
        self, body: dict[str, Any], headers: dict[str, str]
    ) -> None:
        self._replies[body["request_id"]] = dict(body)

    # -- crash / recovery --------------------------------------------------------

    def crash(self) -> None:
        """Lose the engine and every volatile structure; keep the bus
        and the journal."""
        if not self.engine.crashed:
            self.engine.crash()
        self._replies.clear()
        self._requested.clear()
        self._pending.clear()
        self._breakers.clear()
        self._breaker_seen.clear()
        self.bus.recover_in_flight(_inbox(self.name))
        self.bus.recover_in_flight(_reply_queue(self.name))

    def rebuild(self, configure) -> None:
        """Build a fresh engine over the same journal and recover.

        ``configure(node)`` must re-register definitions, programs and
        remote activities (their programs), then the journal replays.
        """
        if self._journal_path is None and self._store_factory is None:
            raise WorkflowError(
                "rebuild requires a journal- or store-backed node"
            )
        self.engine = Engine(
            journal_path=self._journal_path,
            organization=self._organization,
            observability=self.obs,
            fault_injector=self._injector,
            store=(
                self._store_factory()
                if self._store_factory is not None
                else None
            ),
        )
        served = self._served
        self._served = set()
        configure(self)
        self._served |= served
        self.engine.recover()


def run_cluster(
    nodes: list[WorkflowNode],
    *,
    watch: list[tuple[WorkflowNode, str]] | None = None,
    max_rounds: int = 10_000,
    steps_per_round: int = 50,
) -> int:
    """Drive every node until the watched instances finish (or, with no
    watch list, until the whole cluster quiesces).  Returns rounds.

    Crashed engines are skipped (the driver decides when to
    ``rebuild``).  A round with no progress first lets logical time
    pass — each node's clock advances to its earliest due timer (retry
    backoff, poll interval), releasing that work.  When nothing
    progressed, no timers remain, and watched instances are still
    unfinished, the cluster is genuinely stuck (e.g. a watched
    counterpart crashed and was never rebuilt): a
    :class:`~repro.errors.WorkflowError` names the stuck instances
    instead of silently burning the remaining rounds.
    """
    for round_number in range(1, max_rounds + 1):
        progressed = False
        for node in nodes:
            if node.engine.crashed:
                continue
            for __ in range(steps_per_round):
                if not node.engine.step():
                    break
                progressed = True
            if node.pump():
                progressed = True
        if watch is not None:
            if all(
                _watch_state(node, instance_id) == "finished"
                for node, instance_id in watch
            ):
                return round_number
        elif not progressed and not _advance_to_timers(nodes):
            return round_number
        if not progressed and watch is not None:
            if not _advance_to_timers(nodes):
                stuck = [
                    "%s on %s (%s)"
                    % (instance_id, node.name, _watch_state(node, instance_id))
                    for node, instance_id in watch
                    if _watch_state(node, instance_id) != "finished"
                ]
                raise WorkflowError(
                    "cluster deadlocked: no node can make progress and no "
                    "timers are due; stuck instances: %s" % "; ".join(stuck)
                )
    raise WorkflowError(
        "cluster did not converge within %d rounds" % max_rounds
    )


def _watch_state(node: WorkflowNode, instance_id: str) -> str:
    if node.engine.crashed:
        return "crashed"
    try:
        return node.engine.instance_state(instance_id)
    except NavigationError:
        return "unknown"


def _advance_to_timers(nodes: list[WorkflowNode]) -> bool:
    """Advance each live node's clock to its earliest delayed due
    time; True when at least one timer was released."""
    advanced = False
    for node in nodes:
        if node.engine.crashed:
            continue
        due = node.engine.navigator.next_delayed_due()
        if due is not None:
            node.engine.advance_clock(max(0.0, due - node.engine.clock))
            advanced = True
    return advanced
