"""Distributed workflow execution over persistent messages.

"Workflow systems are orders of magnitude more heterogeneous and
distributed than databases" (§2).  This module adds the distribution
dimension the paper's group built as Exotica/FMQM: several autonomous
workflow nodes, each running its own engine, cooperating through the
persistent :class:`~repro.wfms.messaging.MessageBus`.

A node *serves* process definitions; another node's process reaches
them through a **remote activity** — an ordinary program activity
whose program (a) sends a durable ``request`` message carrying the
activity's input container the first time it runs and (b) polls for
the matching ``reply`` on later attempts, its exit condition
(``Done = 1``) rescheduling it until the reply arrives.  Requests are
idempotent: the request id is derived from the caller's instance and
activity, the serving node keys its instance on it, and duplicate
requests for a finished instance simply re-send the reply.  That is
what makes the scheme crash-safe end to end:

* requester crash → journal replay reconstructs the polling activity,
  whose next attempt re-sends the (deduplicated) request;
* server crash → its journal replays the request instance, the bus
  redelivers the unacknowledged request, the reply is regenerated;
* lost/unacked messages → redelivered by the bus sweep.

When observability is enabled (``WorkflowNode(observability=True)``)
the requesting activity's span context travels in the request's
message *headers* and the serving node starts its instance with that
context as trace parent, so one distributed request/reply chain is one
trace spanning both engines.  The context is also journaled with the
served instance's ``process_started`` record: a server crash + replay
rejoins the same trace, and a redelivered request finds the existing
(request-id-keyed) instance instead of starting a second trace.

Use :func:`run_cluster` to drive all nodes to quiescence.
"""

from __future__ import annotations

from typing import Any

from repro.errors import NavigationError, WorkflowError
from repro.obs import Observability, resolve_observability
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.engine import Engine
from repro.wfms.messaging import MessageBus
from repro.wfms.model import Activity, ProcessDefinition
from repro.wfms.organization import Organization


def _inbox(node_name: str) -> str:
    return "node:%s" % node_name


def _reply_queue(node_name: str) -> str:
    return "replies:%s" % node_name


class WorkflowNode:
    """One engine plus its connection to the message bus."""

    def __init__(
        self,
        name: str,
        bus: MessageBus,
        *,
        journal_path: str | None = None,
        organization: Organization | None = None,
        observability: Observability | bool | None = None,
    ):
        if not name:
            raise WorkflowError("node name must be non-empty")
        self.name = name
        self.bus = bus
        self._journal_path = journal_path
        self._organization = organization
        # Resolved once and reused by rebuild(), so counters and spans
        # accumulate across this node's crash/recover cycles.
        self.obs = resolve_observability(observability)
        self.engine = Engine(
            journal_path=journal_path,
            organization=organization,
            observability=self.obs,
        )
        self._served: set[str] = set()
        #: request_id -> output snapshot (volatile reply cache).
        self._replies: dict[str, dict[str, Any]] = {}
        #: request ids already sent (volatile; resent after a crash,
        #: deduplicated by the server).
        self._requested: set[str] = set()
        #: request_id -> (reply_to, request headers) for requests being
        #: served but not yet finished (volatile; duplicates re-register
        #: it after a crash).
        self._pending: dict[str, tuple[str, dict[str, str]]] = {}

    # -- serving ---------------------------------------------------------

    def serve(self, definition: ProcessDefinition) -> None:
        """Make ``definition`` executable on behalf of other nodes."""
        if definition.name not in self.engine.definitions():
            self.engine.register_definition(definition)
        self._served.add(definition.name)

    def remote_activity(
        self,
        activity_name: str,
        *,
        process: str,
        node: str,
        input_spec: list[VariableDecl] | None = None,
        output_spec: list[VariableDecl] | None = None,
        max_poll_attempts: int = 100_000,
    ) -> Activity:
        """Build an activity that executes ``process`` on ``node``.

        ``input_spec`` members are shipped as the remote process's
        input; ``output_spec`` members are filled from its output.
        Register the returned activity in a local definition as usual.
        """
        inputs = list(input_spec or [])
        outputs = list(output_spec or [])
        program_name = "remote__%s__%s" % (node, process)
        self.engine.register_program(
            program_name,
            self._make_remote_program(node, process, inputs, outputs),
            "remote execution of %s on %s" % (process, node),
            replace=True,
        )
        return Activity(
            activity_name,
            program=program_name,
            input_spec=inputs,
            output_spec=outputs + [VariableDecl("Done", DataType.LONG)],
            exit_condition="Done = 1",
            max_iterations=max_poll_attempts,
            description="remote %s @ %s" % (process, node),
        )

    def _make_remote_program(self, node, process, inputs, outputs):
        def program(ctx) -> int:
            request_id = "%s/%s/%s" % (self.name, ctx.instance_id, ctx.activity)
            reply = self._replies.pop(request_id, None)
            if reply is not None:
                for decl in outputs:
                    if decl.name in reply:
                        ctx.output.set(decl.name, reply[decl.name])
                ctx.output.set("Done", 1)
                return 0
            if request_id not in self._requested:
                self.bus.send(
                    _inbox(node),
                    {
                        "type": "request",
                        "request_id": request_id,
                        "process": process,
                        "input": {
                            decl.name: ctx.input.get(decl.name)
                            for decl in inputs
                        },
                        "reply_to": _reply_queue(self.name),
                    },
                    # Trace context of the requesting activity rides in
                    # the headers; {} when observability is off.
                    headers=self.engine.navigator.trace_headers(
                        ctx.instance_id, ctx.activity
                    ),
                )
                self._requested.add(request_id)
            ctx.output.set("Done", 0)
            return 0

        return program

    # -- message processing ---------------------------------------------------

    def pump(self, max_messages: int = 10) -> int:
        """Process up to ``max_messages`` inbound messages and send
        replies for served requests that have finished; returns how
        many messages/replies were handled."""
        handled = 0
        for __ in range(max_messages):
            if self._pump_one(_inbox(self.name), self._handle_request):
                handled += 1
                continue
            if self._pump_one(
                _reply_queue(self.name), self._handle_reply
            ):
                handled += 1
                continue
            break
        handled += self._flush_pending()
        return handled

    def _flush_pending(self) -> int:
        sent = 0
        for request_id in list(self._pending):
            instance_id = "req/%s" % request_id
            try:
                instance = self.engine.navigator.instance(instance_id)
            except NavigationError:
                continue  # not started yet (should not happen)
            if instance.state.value != "finished":
                continue
            reply_to, headers = self._pending.pop(request_id)
            self.bus.send(
                reply_to,
                {
                    "type": "reply",
                    "request_id": request_id,
                    "output": instance.output.to_dict(),
                    "state": instance.state.value,
                },
                headers=headers,  # echo the request's trace context
            )
            sent += 1
        return sent

    def _pump_one(self, queue: str, handler) -> bool:
        message = self.bus.receive_with_headers(queue)
        if message is None:
            return False
        msg_id, body, headers = message
        try:
            handler(body, headers)
        except Exception:
            self.bus.nack(queue, msg_id)
            raise
        self.bus.ack(queue, msg_id)
        return True

    def _handle_request(
        self, body: dict[str, Any], headers: dict[str, str]
    ) -> None:
        process = body["process"]
        request_id = body["request_id"]
        if process not in self._served:
            raise WorkflowError(
                "node %s does not serve process %r" % (self.name, process)
            )
        instance_id = "req/%s" % request_id
        try:
            self.engine.navigator.instance(instance_id)
        except NavigationError:
            self.engine.verify_executable(process)
            # The served instance joins the requester's trace via the
            # message headers.  A redelivered request never reaches
            # this branch (the instance exists), so it cannot start a
            # second trace.
            self.engine.navigator.start_process(
                process,
                body.get("input", {}),
                instance_id=instance_id,
                trace_parent=headers or None,
            )
        # Serve asynchronously: the instance advances through the
        # node's normal stepping (it may itself contain remote
        # activities); the reply goes out from _flush_pending once the
        # instance finishes.  Duplicate requests re-register here, so
        # replies are regenerated after a crash.
        self._pending[request_id] = (body["reply_to"], headers)

    def _handle_reply(
        self, body: dict[str, Any], headers: dict[str, str]
    ) -> None:
        self._replies[body["request_id"]] = dict(body.get("output", {}))

    # -- crash / recovery --------------------------------------------------------

    def crash(self) -> None:
        """Lose the engine and every volatile structure; keep the bus
        and the journal."""
        self.engine.crash()
        self._replies.clear()
        self._requested.clear()
        self._pending.clear()
        self.bus.recover_in_flight(_inbox(self.name))
        self.bus.recover_in_flight(_reply_queue(self.name))

    def rebuild(self, configure) -> None:
        """Build a fresh engine over the same journal and recover.

        ``configure(node)`` must re-register definitions, programs and
        remote activities (their programs), then the journal replays.
        """
        if self._journal_path is None:
            raise WorkflowError("rebuild requires a journal-backed node")
        self.engine = Engine(
            journal_path=self._journal_path,
            organization=self._organization,
            observability=self.obs,
        )
        served = self._served
        self._served = set()
        configure(self)
        self._served |= served
        self.engine.recover()


def run_cluster(
    nodes: list[WorkflowNode],
    *,
    watch: list[tuple[WorkflowNode, str]] | None = None,
    max_rounds: int = 10_000,
    steps_per_round: int = 50,
) -> int:
    """Drive every node until the watched instances finish (or, with no
    watch list, until the whole cluster quiesces).  Returns rounds."""
    for round_number in range(1, max_rounds + 1):
        progressed = False
        for node in nodes:
            for __ in range(steps_per_round):
                if not node.engine.step():
                    break
                progressed = True
            if node.pump():
                progressed = True
        if watch is not None:
            if all(
                node.engine.instance_state(instance_id) == "finished"
                for node, instance_id in watch
            ):
                return round_number
        elif not progressed:
            return round_number
    raise WorkflowError(
        "cluster did not converge within %d rounds" % max_rounds
    )
