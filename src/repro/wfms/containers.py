"""Run-time data containers.

Each activity instance owns an *input* and an *output* container built
from the activity's declarations (§3.2).  Containers are addressed with
dotted paths (``Order.Total``, ``Items.2`` for array elements) and are
type-checked on write.  They serialise to plain JSON-able dicts so the
journal can persist them for forward recovery.
"""

from __future__ import annotations

import copy
from typing import Any, Iterable, Iterator

from repro.errors import ContainerError
from repro.wfms.datatypes import DataType, TypeRegistry, VariableDecl
from repro.wfms.model import RETURN_CODE

#: Shared declaration of the predefined ``_RC`` member; hoisted so output
#: containers do not revalidate an identical declaration per construction.
_RC_DECL = VariableDecl(RETURN_CODE, DataType.LONG)


class Container:
    """A typed record of container members.

    >>> spec = [VariableDecl("Total", DataType.LONG)]
    >>> c = Container(spec, TypeRegistry(), output=True)
    >>> c.set("Total", 7)
    >>> c.get("Total")
    7
    >>> c.get("_RC")     # predefined on output containers
    0
    """

    __slots__ = ("_decls", "_types", "_values", "_output", "_flat")

    def __init__(
        self,
        spec: Iterable[VariableDecl],
        types: TypeRegistry | None = None,
        *,
        output: bool = False,
    ):
        self._types = types if types is not None else TypeRegistry()
        self._decls: dict[str, VariableDecl] = {}
        self._values: dict[str, Any] = {}
        self._output = output
        if output:
            self._decls[RETURN_CODE] = _RC_DECL
            self._values[RETURN_CODE] = 0
        for decl in spec:
            if decl.name in self._decls:
                raise ContainerError("duplicate member %r" % decl.name)
            self._decls[decl.name] = decl
            self._values[decl.name] = self._types.default_value(decl)
        #: all defaults scalar → a fresh copy is a plain dict copy
        self._flat = not any(
            isinstance(value, (dict, list)) for value in self._values.values()
        )

    def fresh_copy(self) -> "Container":
        """A new container with this one's declarations and *current*
        values; used by compiled navigation plans to stamp per-execution
        containers from a prototype without re-deriving defaults.

        Declarations are shared (they are never mutated after
        construction); values are copied — a plain dict copy when every
        member is scalar, a deep copy otherwise.
        """
        clone = Container.__new__(Container)
        clone._decls = self._decls
        clone._types = self._types
        clone._output = self._output
        clone._flat = self._flat
        clone._values = (
            dict(self._values) if self._flat else copy.deepcopy(self._values)
        )
        return clone

    # -- access --------------------------------------------------------

    def has(self, path: str) -> bool:
        try:
            self.get(path)
            return True
        except ContainerError:
            return False

    def get(self, path: str) -> Any:
        """Read the member at dotted ``path``."""
        root, rest = _split(path)
        if root not in self._values:
            raise ContainerError("container has no member %r" % root)
        value = self._values[root]
        for part in rest:
            value = _descend(value, part, path)
        return copy.deepcopy(value) if isinstance(value, (dict, list)) else value

    def set(self, path: str, value: Any) -> None:
        """Write ``value`` at dotted ``path`` with type checking."""
        root, rest = _split(path)
        if root not in self._decls:
            raise ContainerError("container has no member %r" % root)
        decl = self._decls[root]
        if not rest:
            coerced = self._coerce(decl, value, path)
            self._values[root] = coerced
            if self._flat and isinstance(coerced, (dict, list)):
                self._flat = False
            return
        target = self._values[root]
        for part in rest[:-1]:
            target = _descend(target, part, path)
        leaf = rest[-1]
        if isinstance(target, list):
            index = _array_index(leaf, target, path)
            target[index] = self._coerce_leaf(decl, rest, value, path)
        elif isinstance(target, dict):
            if leaf not in target:
                raise ContainerError(
                    "path %r: structure has no member %r" % (path, leaf)
                )
            target[leaf] = self._coerce_leaf(decl, rest, value, path)
        else:
            raise ContainerError("path %r does not address a member" % path)

    def resolver(self, path: str) -> Any:
        """Resolver for :meth:`Condition.evaluate`; None when unknown."""
        try:
            return self.get(path)
        except ContainerError:
            return None

    @property
    def return_code(self) -> int:
        return int(self._values.get(RETURN_CODE, 0))

    @return_code.setter
    def return_code(self, value: int) -> None:
        if RETURN_CODE not in self._decls:
            raise ContainerError("input containers carry no return code")
        self._values[RETURN_CODE] = int(value)

    def members(self) -> Iterator[str]:
        return iter(self._decls)

    def declaration(self, name: str) -> VariableDecl:
        try:
            return self._decls[name]
        except KeyError:
            raise ContainerError("container has no member %r" % name) from None

    # -- bulk ----------------------------------------------------------

    def update_from(
        self, source: "Container", mappings: Iterable[tuple[str, str]]
    ) -> None:
        """Apply a data connector's mappings from ``source`` into self."""
        for from_path, to_path in mappings:
            self.set(to_path, source.get(from_path))

    def to_dict(self) -> dict[str, Any]:
        """JSON-able snapshot of all member values."""
        return copy.deepcopy(self._values)

    def load_dict(self, values: dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`to_dict`."""
        for name, value in values.items():
            if name in self._decls:
                self._values[name] = copy.deepcopy(value)
                if self._flat and isinstance(value, (dict, list)):
                    self._flat = False

    def copy(self) -> "Container":
        clone = Container((), self._types, output=False)
        clone._decls = dict(self._decls)
        clone._values = copy.deepcopy(self._values)
        clone._output = self._output
        clone._flat = not any(
            isinstance(value, (dict, list)) for value in clone._values.values()
        )
        return clone

    # -- internals -----------------------------------------------------

    def _coerce(self, decl: VariableDecl, value: Any, path: str) -> Any:
        if decl.is_array:
            if not isinstance(value, list) or len(value) != decl.array_size:
                raise ContainerError(
                    "path %r expects a list of length %d" % (path, decl.array_size)
                )
            element = VariableDecl(decl.name, decl.type)
            return [self._coerce(element, item, path) for item in value]
        if decl.is_structure:
            structure = self._types.get(str(decl.type))
            if not isinstance(value, dict):
                raise ContainerError(
                    "path %r expects a structure %s" % (path, decl.type)
                )
            result = self._types.default_value(
                VariableDecl(decl.name, decl.type)
            )
            for key, item in value.items():
                member = structure.member(key)
                result[key] = self._coerce(member, item, "%s.%s" % (path, key))
            return result
        assert isinstance(decl.type, DataType)
        return decl.type.coerce(value)

    def _coerce_leaf(
        self, root_decl: VariableDecl, rest: list[str], value: Any, path: str
    ) -> Any:
        decl = self._leaf_decl(root_decl, rest)
        if decl is None:
            # Descending through arrays of scalars; coerce by element type.
            return value
        return self._coerce(decl, value, path)

    def _leaf_decl(
        self, decl: VariableDecl, rest: list[str]
    ) -> VariableDecl | None:
        current: VariableDecl | None = decl
        for part in rest:
            if current is None:
                return None
            if part.isdigit():
                current = VariableDecl(current.name, current.type)
                continue
            if current.is_structure:
                structure = self._types.get(str(current.type))
                current = structure.member(part)
            else:
                return None
        return current


def _split(path: str) -> tuple[str, list[str]]:
    if not path:
        raise ContainerError("empty container path")
    parts = path.split(".")
    return parts[0], parts[1:]


def _descend(value: Any, part: str, path: str) -> Any:
    if isinstance(value, list):
        index = _array_index(part, value, path)
        return value[index]
    if isinstance(value, dict):
        if part not in value:
            raise ContainerError(
                "path %r: structure has no member %r" % (path, part)
            )
        return value[part]
    raise ContainerError("path %r descends into a scalar" % path)


def _array_index(part: str, array: list[Any], path: str) -> int:
    if not part.isdigit():
        raise ContainerError(
            "path %r: array index %r is not a number" % (path, part)
        )
    index = int(part)
    if index >= len(array):
        raise ContainerError(
            "path %r: index %d out of bounds (size %d)"
            % (path, index, len(array))
        )
    return index
