"""Structural validation of process definitions.

The paper's workflow model is "an acyclic directed graph" (§3.2); this
module enforces that plus referential integrity: connector endpoints
exist, data connectors map declared members, condition variables are
resolvable, and embedded blocks validate recursively.
"""

from __future__ import annotations

from graphlib import CycleError, TopologicalSorter

from repro.errors import DefinitionError
from repro.wfms.datatypes import DataType, VariableDecl
from repro.wfms.model import (
    PROCESS_INPUT,
    PROCESS_OUTPUT,
    RETURN_CODE,
    Activity,
    ActivityKind,
    ProcessDefinition,
)

#: Predefined members every output container carries (the program
#: return code plus the engine-maintained execution-state flag used by
#: the saga/flexible translations).
PREDEFINED_OUTPUT_MEMBERS = (RETURN_CODE,)


def topological_order(definition: ProcessDefinition) -> list[str]:
    """Activities in a topological order of the control graph.

    Raises :class:`DefinitionError` when the graph has a cycle.
    """
    sorter: TopologicalSorter[str] = TopologicalSorter()
    for name in definition.activities:
        sorter.add(name)
    for connector in definition.control_connectors:
        sorter.add(connector.target, connector.source)
    try:
        return list(sorter.static_order())
    except CycleError as exc:
        raise DefinitionError(
            "process %s has a control-flow cycle: %s"
            % (definition.name, exc.args[1])
        ) from exc


def validate_definition(definition: ProcessDefinition) -> None:
    """Validate ``definition``; raises :class:`DefinitionError`."""
    if not definition.activities:
        raise DefinitionError("process %s has no activities" % definition.name)
    _check_endpoints(definition)
    topological_order(definition)  # acyclicity
    _check_data_connectors(definition)
    _check_conditions(definition)
    for activity in definition.activities.values():
        if activity.kind is ActivityKind.BLOCK:
            assert activity.block is not None
            validate_definition(activity.block)


def _check_endpoints(definition: ProcessDefinition) -> None:
    for connector in definition.control_connectors:
        for endpoint in (connector.source, connector.target):
            if endpoint not in definition.activities:
                raise DefinitionError(
                    "process %s: control connector %s -> %s references "
                    "unknown activity %r"
                    % (definition.name, connector.source, connector.target, endpoint)
                )
    for connector in definition.data_connectors:
        if (
            connector.source != PROCESS_INPUT
            and connector.source not in definition.activities
        ):
            raise DefinitionError(
                "process %s: data connector source %r is unknown"
                % (definition.name, connector.source)
            )
        if (
            connector.target != PROCESS_OUTPUT
            and connector.target not in definition.activities
        ):
            raise DefinitionError(
                "process %s: data connector target %r is unknown"
                % (definition.name, connector.target)
            )


def _member_names(spec: list[VariableDecl], *, output: bool) -> set[str]:
    names = {decl.name for decl in spec}
    if output:
        names.update(PREDEFINED_OUTPUT_MEMBERS)
    return names


def _source_members(definition: ProcessDefinition, source: str) -> set[str]:
    if source == PROCESS_INPUT:
        return _member_names(definition.input_spec, output=False)
    return _member_names(definition.activity(source).output_spec, output=True)


def _target_members(definition: ProcessDefinition, target: str) -> set[str]:
    if target == PROCESS_OUTPUT:
        # The process output container is itself an output container:
        # it carries the predefined return code so blocks can expose
        # one to the enclosing level (Figure 2's RC_FB).
        return _member_names(definition.output_spec, output=True)
    return _member_names(definition.activity(target).input_spec, output=False)


def _root_member(path: str) -> str:
    """``Order.Total`` -> ``Order`` (structure members check the root)."""
    return path.split(".", 1)[0]


def _check_data_connectors(definition: ProcessDefinition) -> None:
    for connector in definition.data_connectors:
        sources = _source_members(definition, connector.source)
        targets = _target_members(definition, connector.target)
        for from_path, to_path in connector.mappings:
            if _root_member(from_path) not in sources:
                raise DefinitionError(
                    "process %s: data connector %s -> %s maps unknown "
                    "source member %r"
                    % (definition.name, connector.source, connector.target, from_path)
                )
            if _root_member(to_path) not in targets:
                raise DefinitionError(
                    "process %s: data connector %s -> %s maps unknown "
                    "target member %r"
                    % (definition.name, connector.source, connector.target, to_path)
                )


def _check_conditions(definition: ProcessDefinition) -> None:
    # Transition conditions read the *source* activity's output
    # container; exit conditions read the activity's own output
    # container.  (§3.2: "The result of the execution ... can be
    # captured through the return code of the program.")
    for connector in definition.control_connectors:
        available = _source_members(definition, connector.source) | {"RC"}
        for path in connector.condition.variables():
            if _root_member(path) not in available:
                raise DefinitionError(
                    "process %s: transition condition %r on %s -> %s "
                    "references %r which is not in %s's output container"
                    % (
                        definition.name,
                        connector.condition.source,
                        connector.source,
                        connector.target,
                        path,
                        connector.source,
                    )
                )
    for activity in definition.activities.values():
        available = _member_names(activity.output_spec, output=True) | {"RC"}
        for path in activity.exit_condition.variables():
            if _root_member(path) not in available:
                raise DefinitionError(
                    "process %s: exit condition %r of %s references %r "
                    "which is not in its output container"
                    % (
                        definition.name,
                        activity.exit_condition.source,
                        activity.name,
                        path,
                    )
                )


def reachable_activities(definition: ProcessDefinition) -> set[str]:
    """Activities reachable from the starting activities."""
    frontier = list(definition.starting_activities())
    seen: set[str] = set()
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(c.target for c in definition.outgoing(name))
    return seen


def unreachable_activities(definition: ProcessDefinition) -> set[str]:
    """Activities that can never be scheduled (definition smells)."""
    return set(definition.activities) - reachable_activities(definition)


def declared_long(name: str) -> VariableDecl:
    """Convenience: a LONG member declaration (used by translators)."""
    return VariableDecl(name, DataType.LONG)


def declared_string(name: str) -> VariableDecl:
    """Convenience: a STRING member declaration (used by translators)."""
    return VariableDecl(name, DataType.STRING)
