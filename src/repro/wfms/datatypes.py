"""Typed data for containers.

FlowMark containers hold *typed variables and structures* (§3.2).  We
support the four FDL base types plus user-defined structures, which may
nest.  Types are checked when containers are written, so a translator
bug that wires a string into an integer field fails loudly at runtime
instead of silently mis-evaluating a transition condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import ContainerError, DefinitionError


class DataType(Enum):
    """Base types available for container members."""

    LONG = "LONG"
    FLOAT = "FLOAT"
    STRING = "STRING"
    BINARY = "BINARY"

    def default(self) -> Any:
        """The value a member of this type holds before it is written."""
        if self is DataType.LONG:
            return 0
        if self is DataType.FLOAT:
            return 0.0
        if self is DataType.STRING:
            return ""
        return b""

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` may be stored in a member of this type."""
        if self is DataType.LONG:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is DataType.STRING:
            return isinstance(value, str)
        return isinstance(value, (bytes, bytearray))

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` for storage, raising on type mismatch."""
        if not self.accepts(value):
            raise ContainerError(
                "value %r is not assignable to type %s" % (value, self.value)
            )
        if self is DataType.FLOAT:
            return float(value)
        if self is DataType.BINARY:
            return bytes(value)
        return value


@dataclass(frozen=True)
class VariableDecl:
    """Declaration of one container member.

    ``type`` is either a :class:`DataType` or the *name* of a registered
    :class:`StructureType`.  Array members carry ``array_size`` > 0 and
    hold a fixed-length list.
    """

    name: str
    type: DataType | str = DataType.STRING
    array_size: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not _is_identifier(self.name):
            raise DefinitionError("illegal member name %r" % (self.name,))
        if self.array_size < 0:
            raise DefinitionError(
                "member %s: array size must be >= 0" % self.name
            )

    @property
    def is_structure(self) -> bool:
        return isinstance(self.type, str)

    @property
    def is_array(self) -> bool:
        return self.array_size > 0


@dataclass
class StructureType:
    """A user-defined record type for container members.

    Structures nest by referencing other structures by name; cycles are
    rejected by :meth:`TypeRegistry.register`.
    """

    name: str
    members: list[VariableDecl] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if not _is_identifier(self.name):
            raise DefinitionError("illegal structure name %r" % (self.name,))
        seen: set[str] = set()
        for member in self.members:
            if member.name in seen:
                raise DefinitionError(
                    "structure %s: duplicate member %s" % (self.name, member.name)
                )
            seen.add(member.name)

    def member(self, name: str) -> VariableDecl:
        for candidate in self.members:
            if candidate.name == name:
                return candidate
        raise ContainerError(
            "structure %s has no member %r" % (self.name, name)
        )


class TypeRegistry:
    """Registry of structure types for one process definition.

    FlowMark keeps structure definitions global to the FDL file; we
    scope them to a registry owned by the definition so two processes
    can use different structures with the same name.
    """

    def __init__(self) -> None:
        self._structures: dict[str, StructureType] = {}

    def register(self, structure: StructureType) -> StructureType:
        """Register ``structure``, checking member types and cycles."""
        if structure.name in self._structures:
            raise DefinitionError(
                "structure %s is already registered" % structure.name
            )
        for member in structure.members:
            if member.is_structure and member.type != structure.name:
                if member.type not in self._structures:
                    raise DefinitionError(
                        "structure %s references unknown structure %s"
                        % (structure.name, member.type)
                    )
        self._check_acyclic(structure)
        self._structures[structure.name] = structure
        return structure

    def get(self, name: str) -> StructureType:
        try:
            return self._structures[name]
        except KeyError:
            raise DefinitionError("unknown structure type %r" % (name,)) from None

    def __contains__(self, name: str) -> bool:
        return name in self._structures

    def names(self) -> list[str]:
        return sorted(self._structures)

    def default_value(self, decl: VariableDecl) -> Any:
        """Build the default value tree for a declaration."""
        if decl.is_array:
            scalar = VariableDecl(decl.name, decl.type)
            return [self.default_value(scalar) for _ in range(decl.array_size)]
        if decl.is_structure:
            structure = self.get(str(decl.type))
            return {m.name: self.default_value(m) for m in structure.members}
        assert isinstance(decl.type, DataType)
        return decl.type.default()

    def _check_acyclic(self, new: StructureType) -> None:
        # A structure may not (transitively) contain itself: expansion
        # to default values would not terminate.
        stack = [str(m.type) for m in new.members if m.is_structure]
        seen: set[str] = set()
        while stack:
            name = stack.pop()
            if name == new.name:
                raise DefinitionError(
                    "structure %s would contain itself" % new.name
                )
            if name in seen or name not in self._structures:
                continue
            seen.add(name)
            stack.extend(
                str(m.type)
                for m in self._structures[name].members
                if m.is_structure
            )


def _is_identifier(name: str) -> bool:
    """Container member / structure names: identifiers, underscores ok.

    FlowMark reserves leading-underscore names (``_RC``, ``_PROCESS``)
    for predefined members; we allow them so the engine itself can
    declare them, and validate user specs at a higher layer.
    """
    if not name:
        return False
    head, tail = name[0], name[1:]
    if not (head.isalpha() or head == "_"):
        return False
    return all(ch.isalnum() or ch == "_" for ch in tail)
