"""Audit trail (§3.3: monitoring and accounting).

Every significant state transition of every process/activity instance
is recorded as an :class:`AuditRecord`.  The trail is the ground truth
the reproduction's experiments assert against: the saga guarantee
(`T1..Tn` or `T1..Tj;Cj..C1`) and the flexible-transaction path
selection are both checked by reading execution orders off the trail.

The trail keeps two secondary indexes — ``instance_id -> records`` and
``(instance_id, event) -> records`` — so the query helpers
(:meth:`~AuditTrail.records` with an instance filter,
``execution_order``, ``attempts``, ``count``) scale with the answer,
not with every record ever written.  Records are appended to the
indexes in sequence order, so indexed answers are bit-for-bit the
filtered full scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable


class AuditEvent(Enum):
    PROCESS_STARTED = "process_started"
    PROCESS_FINISHED = "process_finished"
    PROCESS_SUSPENDED = "process_suspended"
    PROCESS_RESUMED = "process_resumed"
    ACTIVITY_READY = "activity_ready"
    ACTIVITY_STARTED = "activity_started"
    ACTIVITY_FINISHED = "activity_finished"     # program returned
    ACTIVITY_TERMINATED = "activity_terminated"  # exit condition held
    ACTIVITY_RESCHEDULED = "activity_rescheduled"  # exit condition failed
    ACTIVITY_RETRY = "activity_retry"           # failed invocation, retried
    ACTIVITY_ESCALATED = "activity_escalated"   # retry/timeout gave up
    ACTIVITY_DEAD = "activity_dead"             # dead-path elimination
    ACTIVITY_FORCED = "activity_forced"         # user force-finish
    CONNECTOR_EVALUATED = "connector_evaluated"
    ITEM_OFFERED = "item_offered"
    ITEM_CLAIMED = "item_claimed"
    NOTIFICATION = "notification"


@dataclass(frozen=True)
class AuditRecord:
    sequence: int
    at: float
    event: AuditEvent
    instance_id: str
    activity: str = ""
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "sequence": self.sequence,
            "at": self.at,
            "event": self.event.value,
            "instance_id": self.instance_id,
            "activity": self.activity,
            "detail": dict(self.detail),
        }


class AuditTrail:
    """Append-only in-memory trail with query helpers.

    Sequence numbers come from an explicit monotonic counter (not the
    list length), so archiving — which *prunes* a finished instance's
    records after moving them to the durable
    :class:`repro.store.archive.InstanceArchive` — can never reuse a
    sequence number.  Pruned records are removed from the secondary
    indexes immediately and from the global list lazily (amortised
    O(1) per prune): instance-less scans filter them out, and the list
    is physically compacted once more than half of it is dead.
    """

    def __init__(self) -> None:
        self._records: list[AuditRecord] = []
        self._by_instance: dict[str, list[AuditRecord]] = {}
        self._by_instance_event: dict[
            tuple[str, AuditEvent], list[AuditRecord]
        ] = {}
        self._next_sequence = 0
        #: instances logically removed from the global list but whose
        #: records may still sit in it (lazy compaction).
        self._pruned_ids: set[str] = set()
        self._pruned_records = 0

    def record(
        self,
        at: float,
        event: AuditEvent,
        instance_id: str,
        activity: str = "",
        **detail: Any,
    ) -> AuditRecord:
        record = AuditRecord(
            self._next_sequence, at, event, instance_id, activity, detail
        )
        self._next_sequence += 1
        self._append(record)
        return record

    def _append(self, record: AuditRecord) -> None:
        self._records.append(record)
        instance_id = record.instance_id
        bucket = self._by_instance.get(instance_id)
        if bucket is None:
            bucket = self._by_instance[instance_id] = []
        bucket.append(record)
        key = (instance_id, record.event)
        bucket = self._by_instance_event.get(key)
        if bucket is None:
            bucket = self._by_instance_event[key] = []
        bucket.append(record)

    @property
    def next_sequence(self) -> int:
        return self._next_sequence

    def __len__(self) -> int:
        return len(self._records) - self._pruned_records

    def __iter__(self):
        return iter(self._live_records())

    def _live_records(self) -> list[AuditRecord]:
        if not self._pruned_ids:
            return self._records
        return [
            r for r in self._records if r.instance_id not in self._pruned_ids
        ]

    # -- archiving support (repro.store) --------------------------------

    def export_instances(
        self, instance_ids: Iterable[str]
    ) -> list[dict[str, Any]]:
        """The named instances' records as dicts, in sequence order —
        the audit slice a checkpoint (live instances) or an archive
        entry (a finished instance tree) carries."""
        records: list[AuditRecord] = []
        for instance_id in instance_ids:
            records.extend(self._by_instance.get(instance_id, ()))
        records.sort(key=lambda r: r.sequence)
        return [r.to_dict() for r in records]

    def restore(
        self, records: Iterable[dict[str, Any]], next_sequence: int
    ) -> None:
        """Re-append exported records (checkpoint restore).  The
        sequence counter continues past both the restored records and
        the checkpoint's recorded high-water mark."""
        for data in records:
            record = AuditRecord(
                int(data["sequence"]),
                float(data["at"]),
                AuditEvent(data["event"]),
                data["instance_id"],
                data.get("activity", ""),
                dict(data.get("detail", ())),
            )
            self._append(record)
            if record.sequence >= self._next_sequence:
                self._next_sequence = record.sequence + 1
        if next_sequence > self._next_sequence:
            self._next_sequence = int(next_sequence)

    def prune_instance(self, instance_id: str) -> int:
        """Drop an archived instance's records from live memory;
        returns how many records were pruned."""
        bucket = self._by_instance.pop(instance_id, None)
        if not bucket:
            return 0
        for event in {record.event for record in bucket}:
            self._by_instance_event.pop((instance_id, event), None)
        self._pruned_ids.add(instance_id)
        self._pruned_records += len(bucket)
        if self._pruned_records * 2 > len(self._records):
            self._records = [
                r
                for r in self._records
                if r.instance_id not in self._pruned_ids
            ]
            self._pruned_ids.clear()
            self._pruned_records = 0
        return len(bucket)

    def records(
        self,
        instance_id: str | None = None,
        event: AuditEvent | None = None,
        activity: str | None = None,
    ) -> list[AuditRecord]:
        """Filtered records in sequence order.

        An ``instance_id`` filter is answered from the secondary
        indexes (the common monitoring path); only instance-less
        queries scan the full trail.
        """
        if instance_id is not None:
            if event is not None:
                source = self._by_instance_event.get(
                    (instance_id, event), ()
                )
            else:
                source = self._by_instance.get(instance_id, ())
            if activity is None:
                return list(source)
            return [r for r in source if r.activity == activity]
        out = []
        for record in self._records:
            if event is not None and record.event != event:
                continue
            if activity is not None and record.activity != activity:
                continue
            out.append(record)
        return out

    def count(
        self, instance_id: str, event: AuditEvent | None = None
    ) -> int:
        """Number of records for an instance — O(1), no list built."""
        if event is not None:
            return len(self._by_instance_event.get((instance_id, event), ()))
        return len(self._by_instance.get(instance_id, ()))

    def execution_order(self, instance_id: str) -> list[str]:
        """Activity names in the order they *terminated* (completed
        with a true exit condition) — the history the paper's
        guarantees are phrased over.  Dead-path terminations are not
        executions and are excluded."""
        return [
            r.activity
            for r in self.records(instance_id, AuditEvent.ACTIVITY_TERMINATED)
        ]

    def started_order(self, instance_id: str) -> list[str]:
        return [
            r.activity
            for r in self.records(instance_id, AuditEvent.ACTIVITY_STARTED)
        ]

    def dead_activities(self, instance_id: str) -> list[str]:
        return [
            r.activity
            for r in self.records(instance_id, AuditEvent.ACTIVITY_DEAD)
        ]

    def attempts(self, instance_id: str, activity: str) -> int:
        """How many times an activity ran (exit-condition loops)."""
        return len(
            self.records(instance_id, AuditEvent.ACTIVITY_STARTED, activity)
        )


def merge_orders(trails: Iterable[list[str]]) -> list[str]:
    """Concatenate execution orders (used when a process spans blocks
    whose instances have their own ids)."""
    merged: list[str] = []
    for trail in trails:
        merged.extend(trail)
    return merged
