"""Worklists (§3.3).

"Regular users interact with the system using worklists. ... the same
activity may appear in several worklists simultaneously, however, as
soon as a user selects that activity for execution, it disappears from
all other worklists.  This can be effectively used to perform load
balancing."

A :class:`WorkItem` represents one ready manual activity instance; it
is *shared* between the worklists of every eligible user until claimed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.errors import WorklistError


class WorkItemState(Enum):
    OFFERED = "offered"      # visible on all eligible worklists
    CLAIMED = "claimed"      # selected by one user, vanished elsewhere
    COMPLETED = "completed"  # the activity finished
    WITHDRAWN = "withdrawn"  # dead-path elimination removed the activity


@dataclass
class WorkItem:
    item_id: str
    instance_id: str
    activity: str
    process: str
    eligible: tuple[str, ...]
    offered_at: float
    priority: int = 0
    state: WorkItemState = WorkItemState.OFFERED
    claimed_by: str = ""
    notify_after: float | None = None
    notify_role: str = ""
    notified: bool = False

    @property
    def is_open(self) -> bool:
        return self.state is WorkItemState.OFFERED


@dataclass(frozen=True)
class Notification:
    """An escalation raised when an item sat unclaimed too long."""

    item_id: str
    activity: str
    instance_id: str
    recipients: tuple[str, ...]
    raised_at: float


class WorklistManager:
    """All worklists of one engine."""

    def __init__(self) -> None:
        self._items: dict[str, WorkItem] = {}
        self._sequence = 0
        self.notifications: list[Notification] = []

    # -- item lifecycle (driven by the engine) --------------------------

    def offer(
        self,
        instance_id: str,
        activity: str,
        process: str,
        eligible: list[str],
        now: float,
        *,
        priority: int = 0,
        notify_after: float | None = None,
        notify_role: str = "",
    ) -> WorkItem:
        if not eligible:
            raise WorklistError("cannot offer an item to nobody")
        self._sequence += 1
        item = WorkItem(
            item_id="wi-%06d" % self._sequence,
            instance_id=instance_id,
            activity=activity,
            process=process,
            eligible=tuple(eligible),
            offered_at=now,
            priority=priority,
            notify_after=notify_after,
            notify_role=notify_role,
        )
        self._items[item.item_id] = item
        return item

    def withdraw(self, instance_id: str, activity: str) -> None:
        """Remove any open/claimed item for an activity instance (e.g.
        dead-path elimination, or force-finish by another user)."""
        for item in self._items.values():
            if (
                item.instance_id == instance_id
                and item.activity == activity
                and item.state in (WorkItemState.OFFERED, WorkItemState.CLAIMED)
            ):
                item.state = WorkItemState.WITHDRAWN

    def complete(self, item_id: str) -> None:
        item = self._get(item_id)
        if item.state is not WorkItemState.CLAIMED:
            raise WorklistError(
                "item %s cannot complete from state %s"
                % (item_id, item.state.value)
            )
        item.state = WorkItemState.COMPLETED

    # -- user operations -------------------------------------------------

    def worklist(self, user_id: str) -> list[WorkItem]:
        """Open items visible to ``user_id``, highest priority first."""
        visible = [
            item
            for item in self._items.values()
            if item.is_open and user_id in item.eligible
        ]
        return sorted(
            visible, key=lambda i: (-i.priority, i.offered_at, i.item_id)
        )

    def claim(self, item_id: str, user_id: str) -> WorkItem:
        """Select an item for execution; it vanishes from other lists."""
        item = self._get(item_id)
        if not item.is_open:
            raise WorklistError(
                "item %s is no longer available (state %s)"
                % (item_id, item.state.value)
            )
        if user_id not in item.eligible:
            raise WorklistError(
                "user %s is not eligible for item %s" % (user_id, item_id)
            )
        item.state = WorkItemState.CLAIMED
        item.claimed_by = user_id
        return item

    def release(self, item_id: str) -> WorkItem:
        """Return a claimed item to every eligible worklist."""
        item = self._get(item_id)
        if item.state is not WorkItemState.CLAIMED:
            raise WorklistError("item %s is not claimed" % item_id)
        item.state = WorkItemState.OFFERED
        item.claimed_by = ""
        return item

    # -- notifications ----------------------------------------------------

    def check_deadlines(
        self, now: float, recipients_for: Callable[[str], list[str]]
    ) -> list[Notification]:
        """Raise notifications for items unclaimed past their deadline.

        ``recipients_for(role)`` maps the configured notify-role to user
        ids (the engine passes organization lookup).
        """
        raised: list[Notification] = []
        for item in self._items.values():
            if (
                item.is_open
                and not item.notified
                and item.notify_after is not None
                and now - item.offered_at >= item.notify_after
            ):
                recipients = (
                    tuple(recipients_for(item.notify_role))
                    if item.notify_role
                    else item.eligible
                )
                notification = Notification(
                    item.item_id, item.activity, item.instance_id, recipients, now
                )
                item.notified = True
                raised.append(notification)
                self.notifications.append(notification)
        return raised

    # -- queries -----------------------------------------------------------

    def item(self, item_id: str) -> WorkItem:
        return self._get(item_id)

    def items_for_instance(self, instance_id: str) -> list[WorkItem]:
        return [
            item
            for item in self._items.values()
            if item.instance_id == instance_id
        ]

    def open_item_for(self, instance_id: str, activity: str) -> WorkItem | None:
        for item in self._items.values():
            if (
                item.instance_id == instance_id
                and item.activity == activity
                and item.state in (WorkItemState.OFFERED, WorkItemState.CLAIMED)
            ):
                return item
        return None

    def _get(self, item_id: str) -> WorkItem:
        try:
            return self._items[item_id]
        except KeyError:
            raise WorklistError("unknown work item %r" % item_id) from None
