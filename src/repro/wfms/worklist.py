"""Worklists (§3.3).

"Regular users interact with the system using worklists. ... the same
activity may appear in several worklists simultaneously, however, as
soon as a user selects that activity for execution, it disappears from
all other worklists.  This can be effectively used to perform load
balancing."

A :class:`WorkItem` represents one ready manual activity instance; it
is *shared* between the worklists of every eligible user until claimed.

The manager keeps secondary indexes so the per-call cost scales with
the answer, not with every item ever created:

* ``(instance, activity) -> open items`` for ``withdraw`` /
  ``open_item_for`` (open = offered or claimed),
* ``user -> offered items`` for ``worklist``,
* ``instance -> all items`` for ``items_for_instance``,
* a deadline watch of offered, not-yet-notified items with a
  ``notify_after`` for ``check_deadlines``.

Closed items (completed/withdrawn) leave every open index immediately;
only the id map and the per-instance history retain them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.errors import WorklistError
from repro.obs import WorklistTransition, resolve_observability


class WorkItemState(Enum):
    OFFERED = "offered"      # visible on all eligible worklists
    CLAIMED = "claimed"      # selected by one user, vanished elsewhere
    COMPLETED = "completed"  # the activity finished
    WITHDRAWN = "withdrawn"  # dead-path elimination removed the activity


@dataclass
class WorkItem:
    item_id: str
    instance_id: str
    activity: str
    process: str
    eligible: tuple[str, ...]
    offered_at: float
    priority: int = 0
    state: WorkItemState = WorkItemState.OFFERED
    claimed_by: str = ""
    notify_after: float | None = None
    notify_role: str = ""
    notified: bool = False

    @property
    def is_open(self) -> bool:
        return self.state is WorkItemState.OFFERED


@dataclass(frozen=True)
class Notification:
    """An escalation raised when an item sat unclaimed too long."""

    item_id: str
    activity: str
    instance_id: str
    recipients: tuple[str, ...]
    raised_at: float


class WorklistManager:
    """All worklists of one engine.

    Observability: every item state change publishes a
    :class:`~repro.obs.WorklistTransition` hook event and maintains a
    small set of instruments (open-item gauge, per-transition
    counters).  All of it is gated on ``self._obs_on`` so the default
    disabled engine pays a single attribute read per transition.
    """

    def __init__(self, obs=None) -> None:
        self._items: dict[str, WorkItem] = {}
        #: (instance_id, activity) -> {item_id: item} with state
        #: offered or claimed, in offer order.
        self._open_by_slot: dict[tuple[str, str], dict[str, WorkItem]] = {}
        #: user -> {item_id: item} with state offered, in offer order.
        self._offered_by_user: dict[str, dict[str, WorkItem]] = {}
        #: instance_id -> every item ever offered for it, in offer order.
        self._by_instance: dict[str, list[WorkItem]] = {}
        #: item_id -> offered item with an unexpired notify_after.
        self._deadline_watch: dict[str, WorkItem] = {}
        self._sequence = 0
        self.notifications: list[Notification] = []
        obs = resolve_observability(obs)
        self._obs_on = obs.enabled
        self._hooks = obs.hooks
        self._clock: Callable[[], float] | None = None
        self._g_open = obs.metrics.gauge(
            "wfms_worklist_open_items",
            "Work items currently offered or claimed",
        )
        self._c_transitions = obs.metrics.counter(
            "wfms_worklist_transitions_total",
            "Work item state transitions",
            labels=("transition",),
        )

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the engine's logical clock so hook events carry it."""
        self._clock = clock

    def _emit(self, item: WorkItem, transition: str, user: str = "") -> None:
        """Record one transition (only called when observability is on)."""
        self._c_transitions.labels(transition).inc()
        hooks = self._hooks
        if hooks.wants(WorklistTransition):
            at = self._clock() if self._clock is not None else item.offered_at
            hooks.publish(
                WorklistTransition(
                    item.item_id,
                    item.instance_id,
                    item.activity,
                    transition,
                    user,
                    at,
                )
            )

    # -- index maintenance ----------------------------------------------

    def _index_offered(self, item: WorkItem) -> None:
        for user in item.eligible:
            self._offered_by_user.setdefault(user, {})[item.item_id] = item
        if item.notify_after is not None and not item.notified:
            self._deadline_watch[item.item_id] = item

    def _unindex_offered(self, item: WorkItem) -> None:
        for user in item.eligible:
            bucket = self._offered_by_user.get(user)
            if bucket is not None:
                bucket.pop(item.item_id, None)
        self._deadline_watch.pop(item.item_id, None)

    def _unindex_slot(self, item: WorkItem) -> None:
        slot = (item.instance_id, item.activity)
        bucket = self._open_by_slot.get(slot)
        if bucket is not None:
            bucket.pop(item.item_id, None)
            if not bucket:
                del self._open_by_slot[slot]

    # -- item lifecycle (driven by the engine) --------------------------

    def offer(
        self,
        instance_id: str,
        activity: str,
        process: str,
        eligible: list[str],
        now: float,
        *,
        priority: int = 0,
        notify_after: float | None = None,
        notify_role: str = "",
    ) -> WorkItem:
        if not eligible:
            raise WorklistError("cannot offer an item to nobody")
        self._sequence += 1
        item = WorkItem(
            item_id="wi-%06d" % self._sequence,
            instance_id=instance_id,
            activity=activity,
            process=process,
            eligible=tuple(eligible),
            offered_at=now,
            priority=priority,
            notify_after=notify_after,
            notify_role=notify_role,
        )
        self._items[item.item_id] = item
        self._open_by_slot.setdefault((instance_id, activity), {})[
            item.item_id
        ] = item
        self._by_instance.setdefault(instance_id, []).append(item)
        self._index_offered(item)
        if self._obs_on:
            self._g_open.inc()
            self._emit(item, "offered")
        return item

    def withdraw(self, instance_id: str, activity: str) -> None:
        """Remove any open/claimed item for an activity instance (e.g.
        dead-path elimination, or force-finish by another user)."""
        bucket = self._open_by_slot.pop((instance_id, activity), None)
        if bucket is None:
            return
        for item in bucket.values():
            if item.state is WorkItemState.OFFERED:
                self._unindex_offered(item)
            item.state = WorkItemState.WITHDRAWN
            if self._obs_on:
                self._g_open.dec()
                self._emit(item, "withdrawn")

    def complete(self, item_id: str) -> None:
        item = self._get(item_id)
        if item.state is not WorkItemState.CLAIMED:
            raise WorklistError(
                "item %s cannot complete from state %s"
                % (item_id, item.state.value)
            )
        item.state = WorkItemState.COMPLETED
        self._unindex_slot(item)
        if self._obs_on:
            self._g_open.dec()
            self._emit(item, "completed", user=item.claimed_by)

    # -- user operations -------------------------------------------------

    def worklist(self, user_id: str) -> list[WorkItem]:
        """Open items visible to ``user_id``, highest priority first."""
        bucket = self._offered_by_user.get(user_id)
        if not bucket:
            return []
        return sorted(
            bucket.values(),
            key=lambda i: (-i.priority, i.offered_at, i.item_id),
        )

    def claim(self, item_id: str, user_id: str) -> WorkItem:
        """Select an item for execution; it vanishes from other lists."""
        item = self._get(item_id)
        if not item.is_open:
            raise WorklistError(
                "item %s is no longer available (state %s)"
                % (item_id, item.state.value)
            )
        if user_id not in item.eligible:
            raise WorklistError(
                "user %s is not eligible for item %s" % (user_id, item_id)
            )
        item.state = WorkItemState.CLAIMED
        item.claimed_by = user_id
        self._unindex_offered(item)
        if self._obs_on:
            self._emit(item, "claimed", user=user_id)
        return item

    def release(self, item_id: str) -> WorkItem:
        """Return a claimed item to every eligible worklist."""
        item = self._get(item_id)
        if item.state is not WorkItemState.CLAIMED:
            raise WorklistError("item %s is not claimed" % item_id)
        released_by = item.claimed_by
        item.state = WorkItemState.OFFERED
        item.claimed_by = ""
        self._index_offered(item)
        if self._obs_on:
            self._emit(item, "released", user=released_by)
        return item

    # -- notifications ----------------------------------------------------

    def check_deadlines(
        self, now: float, recipients_for: Callable[[str], list[str]]
    ) -> list[Notification]:
        """Raise notifications for items unclaimed past their deadline.

        ``recipients_for(role)`` maps the configured notify-role to user
        ids (the engine passes organization lookup).
        """
        raised: list[Notification] = []
        for item in list(self._deadline_watch.values()):
            if now - item.offered_at >= item.notify_after:
                recipients = (
                    tuple(recipients_for(item.notify_role))
                    if item.notify_role
                    else item.eligible
                )
                notification = Notification(
                    item.item_id, item.activity, item.instance_id, recipients, now
                )
                item.notified = True
                del self._deadline_watch[item.item_id]
                raised.append(notification)
                self.notifications.append(notification)
                if self._obs_on:
                    self._emit(item, "notified")
        return raised

    # -- queries -----------------------------------------------------------

    def item(self, item_id: str) -> WorkItem:
        return self._get(item_id)

    def items_for_instance(self, instance_id: str) -> list[WorkItem]:
        return list(self._by_instance.get(instance_id, ()))

    def open_item_for(self, instance_id: str, activity: str) -> WorkItem | None:
        bucket = self._open_by_slot.get((instance_id, activity))
        if not bucket:
            return None
        return next(iter(bucket.values()))

    def _get(self, item_id: str) -> WorkItem:
        try:
            return self._items[item_id]
        except KeyError:
            raise WorklistError("unknown work item %r" % item_id) from None
