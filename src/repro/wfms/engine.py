"""The workflow engine facade.

Ties together the metamodel, navigator, program registry, organization,
worklists, audit trail and persistent journal.  This is the class user
code (and the FMTM translator pipeline) talks to::

    engine = Engine()
    engine.register_program("hello", lambda ctx: 0)
    defn = ProcessDefinition("Hi")
    defn.add_activity(Activity("Greet", program="hello"))
    engine.register_definition(defn)
    iid = engine.start_process("Hi")
    engine.run()
    assert engine.instance_state(iid) == "finished"
"""

from __future__ import annotations

import os
from typing import Any

import copy

from repro.errors import (
    DefinitionError,
    JournalError,
    NavigationError,
    ProgramError,
    WorkflowError,
)
from repro.obs import EngineCrashed, EngineRecovered, resolve_observability
from repro.wfms.audit import AuditTrail
from repro.wfms.journal import Journal
from repro.wfms.model import ActivityKind, ProcessDefinition
from repro.wfms.navigator import Navigator
from repro.wfms.organization import Organization
from repro.wfms.programs import Program, ProgramRegistry
from repro.wfms.recovery import replay, replay_with_store
from repro.wfms.registry import DefinitionRegistry
from repro.wfms.worklist import Notification, WorkItem, WorklistManager


class Engine:
    """One workflow management system instance."""

    def __init__(
        self,
        journal_path: str | os.PathLike[str] | None = None,
        organization: Organization | None = None,
        *,
        journal_sync: str = "always",
        journal_batch_size: int = 64,
        journal_batch_interval: float = 0.05,
        observability=None,
        fault_injector=None,
        store=None,
    ):
        """``journal_sync`` selects the journal durability policy —
        ``"always"`` (fsync per record, the default §3.3 guarantee),
        ``"batch"`` (group commit every ``journal_batch_size`` records
        or ``journal_batch_interval`` seconds, losing at most the
        unflushed suffix on a crash) or ``"never"`` (OS-buffered).

        ``observability`` enables metrics/tracing/hooks
        (:mod:`repro.obs`): ``True`` for a fresh fully enabled bundle,
        an :class:`~repro.obs.Observability` instance to share one
        (e.g. across a crash/recover engine pair), default off —
        the disabled path is guaranteed near-zero overhead.

        ``fault_injector`` installs a
        :class:`~repro.resilience.faults.FaultInjector` on the
        navigator (program-invocation faults) and journal (disk
        faults); default None costs nothing on the hot path.

        ``store`` installs a fresh
        :class:`~repro.store.durable.DurableStore` (checkpoints,
        segmented journal, finished-instance archive): the store's
        segmented journal *becomes* the engine journal, so ``store``
        and ``journal_path`` are mutually exclusive.  ``recover()``
        then restores the latest snapshot and replays only the journal
        suffix past it."""
        self.obs = resolve_observability(observability)
        self.programs = ProgramRegistry()
        self.organization = (
            organization if organization is not None else Organization()
        )
        self.worklists = WorklistManager(obs=self.obs)
        self.audit = AuditTrail()
        self.services: dict[str, Any] = {}
        self._definitions = DefinitionRegistry()
        self._store = store
        if store is not None:
            if journal_path is not None:
                raise WorkflowError(
                    "Engine(store=...) and journal_path are mutually "
                    "exclusive: the store's segmented journal is the "
                    "engine journal"
                )
            store.attach(obs=self.obs, injector=fault_injector)
            self._journal = store.journal
        else:
            self._journal = (
                Journal(
                    journal_path,
                    sync=journal_sync,
                    batch_size=journal_batch_size,
                    batch_interval=journal_batch_interval,
                    obs=self.obs,
                    injector=fault_injector,
                )
                if journal_path is not None
                else None
            )
        self._crashed = False
        self.navigator = Navigator(
            self._definitions,
            self.programs,
            self.organization,
            self.worklists,
            self.audit,
            self._journal,
            self.services,
            obs=self.obs,
            injector=fault_injector,
            store=store,
        )
        if self.obs.enabled:
            self.worklists.bind_clock(lambda: self.navigator.clock)

    # -- build-time ------------------------------------------------------

    def register_definition(self, definition: ProcessDefinition) -> None:
        """Validate and register a process template (FDL import step).

        Several *versions* of the same process may coexist (§3.2);
        re-registering the same name+version is an error.
        """
        definition.validate()
        self._definitions.register(definition)

    def definition(
        self, name: str, version: str | None = None
    ) -> ProcessDefinition:
        """The registered definition (latest version by default)."""
        return self._definitions.get(name, version)

    def definition_versions(self, name: str) -> list[str]:
        return self._definitions.versions(name)

    def definitions(self) -> list[str]:
        return self._definitions.names()

    def register_program(
        self,
        name: str,
        program: Program,
        description: str = "",
        *,
        failure_atomic: bool = True,
        replace: bool = False,
    ) -> None:
        self.programs.register(
            name,
            program,
            description,
            failure_atomic=failure_atomic,
            replace=replace,
        )
        # A new (or replaced) program can change the outcome of any
        # memoized semantic check.
        self._definitions.invalidate_verified()

    def verify_executable(self, name: str, version: str | None = None) -> None:
        """Semantic check of Figure 5's translator stage: every program
        the definition references must be registered and every
        subprocess definition present.

        Results are memoized per resolved ``(name, version)`` in the
        definition registry (``start_process`` calls this on every
        start), invalidated by definition or program registration.
        Cyclic subprocess references raise :class:`DefinitionError`
        naming the cycle instead of recursing forever.
        """
        self._verify_definition(self.definition(name, version), ())

    def _verify_definition(
        self, definition: ProcessDefinition, stack: tuple[tuple[str, str], ...]
    ) -> None:
        key = (definition.name, definition.version)
        if key in stack:
            chain = [n for n, __ in stack[stack.index(key):]] + [definition.name]
            raise DefinitionError(
                "cyclic subprocess reference: %s" % " -> ".join(chain)
            )
        if self._definitions.is_verified(key):
            return
        name = definition.name
        for program in sorted(definition.program_names()):
            if program not in self.programs:
                raise ProgramError(
                    "process %s references unregistered program %r"
                    % (name, program)
                )
        stack = stack + (key,)
        for sub in sorted(definition.subprocess_names()):
            if sub not in self._definitions:
                raise DefinitionError(
                    "process %s references unregistered subprocess %r"
                    % (name, sub)
                )
            self._verify_definition(self._definitions.get(sub), stack)
        self._definitions.mark_verified(key)

    # -- run-time ----------------------------------------------------------

    def start_process(
        self,
        name: str,
        input_values: dict[str, Any] | None = None,
        *,
        starter: str = "",
        version: str | None = None,
        instance_id: str = "",
    ) -> str:
        """``instance_id`` pins an explicit id (sharded/distributed
        callers derive placement from it); empty picks the next
        sequential ``pi-NNNN``."""
        self._check_up()
        self.verify_executable(name, version)
        try:
            return self.navigator.start_process(
                name,
                input_values,
                starter=starter,
                version=version,
                instance_id=instance_id,
            )
        except JournalError:
            self._degrade()
            raise

    def step(self) -> bool:
        self._check_up()
        try:
            return self.navigator.step()
        except JournalError:
            self._degrade()
            raise

    def run(self, max_steps: int = 1_000_000) -> int:
        """Drain all automatic work; manual items remain on worklists."""
        self._check_up()
        try:
            return self.navigator.run(max_steps)
        except JournalError:
            self._degrade()
            raise

    def drain(self, max_steps: int = 1_000_000) -> int:
        """Run to quiescence *through* resilience delays: when only
        delayed work (retry backoff, poll intervals) remains, advance
        the logical clock to the next due time and keep running."""
        self._check_up()
        steps = self.run(max_steps)
        while True:
            due = self.navigator.next_delayed_due()
            if due is None:
                return steps
            self.advance_clock(max(0.0, due - self.navigator.clock))
            steps += self.run(max_steps)

    def run_process(
        self,
        name: str,
        input_values: dict[str, Any] | None = None,
        *,
        starter: str = "",
    ) -> "ProcessResult":
        """Start a process and run it to quiescence; returns its result."""
        instance_id = self.start_process(name, input_values, starter=starter)
        self.run()
        return self.result(instance_id)

    def _archived_record(self, instance_id: str) -> dict[str, Any] | None:
        """The archived per-instance record (root or descendant) when
        this engine has a store and the instance was archived, else
        None.  Archived instances left live navigator/audit memory, so
        every instance query falls back through here."""
        if self._store is None:
            return None
        view = self._store.archive.by_id(instance_id)
        if view is None:
            return None
        if "instances" in view:  # a root's full entry
            record = dict(view["instances"][instance_id])
            record["instance"] = instance_id
            record["finished_at"] = view["finished_at"]
            record["starter"] = view.get("starter", "")
            return record
        return view

    def instance_state(self, instance_id: str) -> str:
        try:
            return self.navigator.instance(instance_id).state.value
        except NavigationError:
            record = self._archived_record(instance_id)
            if record is None:
                raise
            return record["state"]

    def activity_states(self, instance_id: str) -> dict[str, str]:
        return self.navigator.instance(instance_id).states()

    def output(self, instance_id: str) -> dict[str, Any]:
        try:
            return self.navigator.instance(instance_id).output.to_dict()
        except NavigationError:
            record = self._archived_record(instance_id)
            if record is None:
                raise
            return copy.deepcopy(record["output"])

    def result(self, instance_id: str) -> "ProcessResult":
        try:
            instance = self.navigator.instance(instance_id)
        except NavigationError:
            record = self._archived_record(instance_id)
            if record is None:
                raise
            return ProcessResult(
                instance_id=instance_id,
                process=record["definition"],
                state=record["state"],
                output=copy.deepcopy(record["output"]),
                execution_order=list(record["execution_order"]),
                dead_activities=list(record["dead_activities"]),
            )
        return ProcessResult(
            instance_id=instance_id,
            process=instance.definition.name,
            state=instance.state.value,
            output=instance.output.to_dict(),
            execution_order=self.audit.execution_order(instance_id),
            dead_activities=self.audit.dead_activities(instance_id),
        )

    def execution_order(
        self, instance_id: str, *, include_children: bool = True
    ) -> list[str]:
        """Activities in termination order, descending into blocks and
        subprocesses at the point their parent activity terminated."""
        try:
            instance = self.navigator.instance(instance_id)
        except NavigationError:
            record = self._archived_record(instance_id)
            if record is None:
                raise
            key = "order" if include_children else "execution_order"
            return list(record[key])
        if not include_children:
            return self.audit.execution_order(instance_id)
        order: list[str] = []
        for name in self.audit.execution_order(instance_id):
            ai = instance.activities.get(name)
            if ai is not None and ai.activity.kind in (
                ActivityKind.BLOCK,
                ActivityKind.PROCESS,
            ):
                if ai.child_instance:
                    order.extend(
                        self.execution_order(
                            ai.child_instance, include_children=True
                        )
                    )
            else:
                order.append(name)
        return order

    # -- monitoring (§3.3: "monitoring, accounting, ...") ------------------

    def process_list(
        self,
        *,
        state: str | None = None,
        definition: str | None = None,
        include_archived: bool = False,
    ) -> list[dict[str, Any]]:
        """One summary row per process instance, root instances first.

        ``state``/``definition`` filter through the navigator's
        secondary indexes, so the walk is O(matching), not O(all live
        instances).  ``include_archived`` adds rows (flagged
        ``"archived": True``) for archived instances from the store's
        by-definition index; archived instances are always finished, so
        a ``state`` filter other than ``"finished"`` skips them.
        """
        rows = []
        for instance_id in self.navigator.instance_ids(
            state=state, definition=definition
        ):
            instance = self.navigator.instance(instance_id)
            states = instance.states()
            counts: dict[str, int] = {}
            for activity_state in states.values():
                counts[activity_state] = counts.get(activity_state, 0) + 1
            rows.append(
                {
                    "instance": instance.instance_id,
                    "definition": instance.definition.name,
                    "state": instance.state.value,
                    "starter": instance.starter,
                    "parent": instance.parent_instance,
                    "activities": counts,
                }
            )
        if (
            include_archived
            and self._store is not None
            and state in (None, "finished")
        ):
            archive = self._store.archive
            if definition is not None:
                entries = archive.by_definition(definition)
            else:
                entries = [archive.by_id(root) for root in archive.roots()]
            for entry in entries:
                for member_id, record in entry["instances"].items():
                    if (
                        definition is not None
                        and record["definition"] != definition
                    ):
                        continue
                    rows.append(
                        {
                            "instance": member_id,
                            "definition": record["definition"],
                            "state": record["state"],
                            "starter": entry.get("starter", ""),
                            "parent": record.get("parent_instance", ""),
                            "activities": {},
                            "archived": True,
                        }
                    )
        rows.sort(key=lambda r: (r["parent"], r["instance"]))
        return rows

    def monitor(self, instance_id: str) -> dict[str, Any]:
        """Detailed view of one instance: per-activity state, attempts,
        return codes and any open work item.  Archived instances return
        a summary view flagged ``"archived": True``."""
        try:
            instance = self.navigator.instance(instance_id)
        except NavigationError:
            record = self._archived_record(instance_id)
            if record is None:
                raise
            return {
                "instance": instance_id,
                "definition": record["definition"],
                "state": record["state"],
                "starter": record.get("starter", ""),
                "output": copy.deepcopy(record["output"]),
                "archived": True,
                "finished_at": record["finished_at"],
                "execution_order": list(record["execution_order"]),
                "dead_activities": list(record["dead_activities"]),
            }
        activities = {}
        for name, ai in instance.activities.items():
            item = self.worklists.open_item_for(instance_id, name)
            activities[name] = {
                "state": "dead" if ai.dead else ai.state.value,
                "attempts": ai.attempt,
                "rc": ai.output.return_code if ai.output is not None else None,
                "claimed_by": ai.claimed_by,
                "work_item": item.item_id if item is not None else "",
            }
        return {
            "instance": instance_id,
            "definition": instance.definition.name,
            "state": instance.state.value,
            "starter": instance.starter,
            "output": instance.output.to_dict(),
            "activities": activities,
            "audit_records": self.audit.count(instance_id),
        }

    def account(
        self,
        instance_id: str,
        *,
        program_rates: dict[str, float] | None = None,
        default_rate: float = 1.0,
        include_children: bool = True,
    ) -> dict[str, Any]:
        """§3.3 accounting: charge each program invocation at its rate.

        Returns per-program invocation counts and costs plus the
        instance total; block/subprocess children are included by
        default (their invocations are where the work happens).
        Archived instances answer from the archive's per-instance
        ``invocations`` records instead of raising.
        """
        rates = program_rates or {}
        invocations: dict[str, int] = {}

        def merge(counts: dict[str, int]) -> None:
            for program, count in counts.items():
                invocations[program] = invocations.get(program, 0) + count

        def collect_archived(target_id: str) -> bool:
            """Charge from the archive entry; False when not archived."""
            if self._store is None:
                return False
            view = self._store.archive.by_id(target_id)
            if view is None:
                return False
            if "instances" in view:  # a root's full entry
                records = view["instances"]
                if include_children:
                    for record in records.values():
                        merge(record.get("invocations", {}))
                else:
                    merge(records[target_id].get("invocations", {}))
                return True
            merge(view.get("invocations", {}))
            if include_children:
                # Descend within the entry via parent links (records
                # are creation-ordered: parents precede children).
                entry = self._store.archive.by_id(view["root"])
                members = {target_id}
                for member_id, record in entry["instances"].items():
                    if record.get("parent_instance") in members:
                        members.add(member_id)
                        merge(record.get("invocations", {}))
            return True

        def collect(target_id: str) -> None:
            try:
                instance = self.navigator.instance(target_id)
            except NavigationError:
                if not collect_archived(target_id):
                    raise
                return
            for ai in instance.activities.values():
                if ai.activity.kind is ActivityKind.PROGRAM:
                    if ai.attempt:
                        program = ai.activity.program
                        invocations[program] = (
                            invocations.get(program, 0) + ai.attempt
                        )
                elif include_children and ai.child_instance:
                    collect(ai.child_instance)

        collect(instance_id)
        lines = {
            program: {
                "invocations": count,
                "rate": rates.get(program, default_rate),
                "cost": count * rates.get(program, default_rate),
            }
            for program, count in sorted(invocations.items())
        }
        return {
            "instance": instance_id,
            "lines": lines,
            "total": sum(line["cost"] for line in lines.values()),
        }

    # -- manual work ---------------------------------------------------------

    def worklist(self, user_id: str) -> list[WorkItem]:
        return self.worklists.worklist(user_id)

    def claim(self, item_id: str, user_id: str) -> WorkItem:
        return self.worklists.claim(item_id, user_id)

    def start_item(self, item_id: str) -> None:
        """Execute a claimed work item (then drain follow-on work)."""
        self._check_up()
        self.navigator.start_manual(item_id)
        self.navigator.run()

    def force_finish(
        self,
        instance_id: str,
        activity: str,
        *,
        return_code: int = 0,
        output_values: dict[str, Any] | None = None,
        user: str = "",
    ) -> None:
        self._check_up()
        self.navigator.force_finish(
            instance_id,
            activity,
            return_code=return_code,
            output_values=output_values,
            user=user,
        )
        self.navigator.run()

    def suspend(self, instance_id: str) -> None:
        self.navigator.suspend(instance_id)

    def resume(self, instance_id: str) -> None:
        self._check_up()
        self.navigator.resume(instance_id)

    # -- clock & notifications -------------------------------------------------

    @property
    def clock(self) -> float:
        return self.navigator.clock

    def advance_clock(self, delta: float) -> list[Notification]:
        """Advance logical time and raise deadline notifications."""
        self._check_up()
        if delta < 0:
            raise NavigationError("the clock cannot move backwards")
        self.navigator.clock += delta
        self.navigator.release_due(self.navigator.clock)
        return self.worklists.check_deadlines(
            self.navigator.clock, self._notify_recipients
        )

    # -- resilience policies (repro.resilience) ---------------------------

    def set_retry(self, program: str, policy) -> None:
        """Retry failed invocations of ``program`` under a
        :class:`~repro.resilience.policies.RetryPolicy` (None removes)."""
        self.navigator.set_retry(program, policy)

    def set_timeout(self, program: str, timeout) -> None:
        """Bound ``program`` activities with a
        :class:`~repro.resilience.policies.Timeout` (None removes)."""
        self.navigator.set_timeout(program, timeout)

    def set_reschedule_delay(self, program: str, delay: float) -> None:
        """Space exit-condition reschedules of ``program`` by ``delay``
        logical seconds (0 removes)."""
        self.navigator.set_reschedule_delay(program, delay)

    def _notify_recipients(self, role: str) -> list[str]:
        if role and self.organization.has_role(role):
            return self.organization.members_of(role)
        return []

    # -- crash / recovery --------------------------------------------------------

    def crash(self) -> None:
        """Simulate a machine failure: volatile state is lost, the
        journal survives.  The engine object refuses further work.

        ``flush()`` is the durability barrier: under group commit
        (``journal_sync="batch"``) any still-buffered suffix is
        committed before the journal closes, so an orderly ``crash()``
        (and ``close()``) loses nothing — only a *hard* loss of the
        process can drop the unflushed suffix."""
        if self._store is not None:
            self._store.flush()
            self._store.close()
        elif self._journal is not None:
            self._journal.flush()
            self._journal.close()
        self._crashed = True
        if self.obs.enabled:
            self.obs.metrics.counter(
                "wfms_engine_crashes_total", "Simulated machine failures"
            ).inc()
            if self.obs.hooks.wants(EngineCrashed):
                self.obs.hooks.publish(EngineCrashed(self.navigator.clock))

    def recover(self) -> int:
        """Replay the journal (must be file-backed) into this engine.

        Call on a *fresh* engine after re-registering definitions and
        programs; returns the number of completions replayed.
        """
        if self._journal is None:
            raise NavigationError("recovery requires a journal-backed engine")
        scopes = self.services.get("tx_scopes")
        if scopes is not None:
            # Scopes open at crash time are torn: roll their
            # transactions back (WAL undo frees the locks) before
            # replay, so re-executed activities deterministically find
            # the scope gone and route to their rollback paths.
            scopes.recover()
        if self._store is not None:
            self._store.reopen()
            replayed = replay_with_store(self.navigator, self._store)
        else:
            self._journal.reopen()
            records = self._journal.records()
            replayed = replay(self.navigator, records)
        # Barrier: post-replay journaling resumes from a durable file.
        self._journal.flush()
        if self.obs.enabled:
            self.obs.metrics.counter(
                "wfms_recoveries_total", "Journal replays completed"
            ).inc()
            self.obs.metrics.counter(
                "wfms_recovery_replayed_total",
                "Activity completions consumed from journals",
            ).inc(replayed)
            if self.obs.hooks.wants(EngineRecovered):
                self.obs.hooks.publish(
                    EngineRecovered(replayed, self.navigator.clock)
                )
        return replayed

    @property
    def journal(self) -> Journal | None:
        return self._journal

    @property
    def store(self):
        """The attached :class:`~repro.store.DurableStore`, or None."""
        return self._store

    def checkpoint(self):
        """Force a durable checkpoint now (independent of the store's
        ``checkpoint_every`` policy).  Returns the new
        :class:`~repro.store.Checkpoint`."""
        self._check_up()
        if self._store is None:
            raise WorkflowError("engine has no durable store")
        try:
            return self._store.checkpoint(self.navigator)
        except JournalError:
            self._degrade()
            raise

    def store_status(self) -> dict[str, Any]:
        """Durability status: segment/checkpoint/archive counters, or
        ``{"enabled": False}`` when the engine has no store."""
        if self._store is None:
            return {"enabled": False}
        return self._store.status(clock=self.navigator.clock)

    def close(self) -> None:
        if self._store is not None:
            self._store.flush()
            self._store.close()
        elif self._journal is not None:
            self._journal.flush()
            self._journal.close()

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _check_up(self) -> None:
        if self._crashed:
            raise NavigationError(
                "the engine has crashed; build a new engine and recover()"
            )

    def _degrade(self) -> None:
        """The journal's disk failed mid-operation: treat it as a
        machine failure.  The file handle is abandoned (a flush would
        raise again); the durable prefix stays replayable, so
        ``recover()`` on a fresh engine works exactly as after
        :meth:`crash`."""
        self._crashed = True
        if self._store is not None:
            self._store.abandon()
        elif self._journal is not None:
            self._journal.abandon()
        if self.obs.enabled:
            self.obs.metrics.counter(
                "wfms_engine_crashes_total", "Simulated machine failures"
            ).inc()
            if self.obs.hooks.wants(EngineCrashed):
                self.obs.hooks.publish(EngineCrashed(self.navigator.clock))


class ProcessResult:
    """Outcome summary of one process instance."""

    __slots__ = (
        "instance_id",
        "process",
        "state",
        "output",
        "execution_order",
        "dead_activities",
    )

    def __init__(
        self,
        instance_id: str,
        process: str,
        state: str,
        output: dict[str, Any],
        execution_order: list[str],
        dead_activities: list[str],
    ):
        self.instance_id = instance_id
        self.process = process
        self.state = state
        self.output = output
        self.execution_order = execution_order
        self.dead_activities = dead_activities

    @property
    def finished(self) -> bool:
        return self.state == "finished"

    def __repr__(self) -> str:
        return "ProcessResult(%s, %s, %s)" % (
            self.instance_id,
            self.process,
            self.state,
        )
