"""Static workflow metamodel (§3.2 of the paper).

A :class:`ProcessDefinition` is an acyclic directed graph whose nodes
are :class:`Activity` objects and whose edges are control connectors
(order of execution, each with a transition condition) and data
connectors (mappings between output and input containers).

Activities come in three kinds, mirroring FlowMark:

* ``PROGRAM`` — executes a registered program,
* ``PROCESS`` — executes another *named* process definition (resolved
  through the engine's definition registry at run time),
* ``BLOCK``   — executes an *embedded* sub-definition; because exit
  conditions re-run an activity until they hold, a block whose exit
  condition is false loops, which is how FlowMark expresses iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from repro.errors import DefinitionError
from repro.wfms.conditions import ALWAYS, Condition, parse_condition
from repro.wfms.datatypes import TypeRegistry, VariableDecl

#: Pseudo-endpoints for data connectors: the process's own containers.
PROCESS_INPUT = "_INPUT_"
PROCESS_OUTPUT = "_OUTPUT_"

#: Predefined output-container member holding the program return code.
RETURN_CODE = "_RC"


class ActivityKind(Enum):
    PROGRAM = "PROGRAM"
    PROCESS = "PROCESS"
    BLOCK = "BLOCK"


class StartMode(Enum):
    """Whether a ready activity starts by itself or waits for a user."""

    AUTOMATIC = "AUTOMATIC"
    MANUAL = "MANUAL"


class StartCondition(Enum):
    """Join semantics over incoming control connectors (§3.2)."""

    ALL = "AND"  # start when *all* incoming connectors evaluate true
    ANY = "OR"   # start when *one* incoming connector evaluates true


@dataclass
class StaffAssignment:
    """Who may execute a manual activity (§3.3).

    Either explicit ``users`` or every member of one of ``roles``; when
    both are empty the process starter is responsible.  ``notify_after``
    is the §3.3 deadline: if the activity sits unclaimed that long, a
    notification is sent to ``notify_role``.
    """

    roles: tuple[str, ...] = ()
    users: tuple[str, ...] = ()
    notify_after: float | None = None
    notify_role: str = ""

    def is_default(self) -> bool:
        return not self.roles and not self.users and self.notify_after is None


@dataclass
class Activity:
    """One step of a process (§3.2)."""

    name: str
    kind: ActivityKind = ActivityKind.PROGRAM
    program: str = ""           # PROGRAM: registered program name
    subprocess: str = ""        # PROCESS: name of another definition
    block: "ProcessDefinition | None" = None  # BLOCK: embedded definition
    input_spec: list[VariableDecl] = field(default_factory=list)
    output_spec: list[VariableDecl] = field(default_factory=list)
    start_condition: StartCondition = StartCondition.ALL
    exit_condition: Condition = ALWAYS
    start_mode: StartMode = StartMode.AUTOMATIC
    staff: StaffAssignment = field(default_factory=StaffAssignment)
    description: str = ""
    priority: int = 0
    #: Upper bound on exit-condition retries (0 = unbounded).  FlowMark
    #: has no such bound; it exists so tests can cap runaway loops.
    max_iterations: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise DefinitionError("activity name must be non-empty")
        self.exit_condition = parse_condition(self.exit_condition)
        if self.kind is ActivityKind.PROGRAM and not self.program:
            raise DefinitionError(
                "program activity %s names no program" % self.name
            )
        if self.kind is ActivityKind.PROCESS and not self.subprocess:
            raise DefinitionError(
                "process activity %s names no subprocess" % self.name
            )
        if self.kind is ActivityKind.BLOCK and self.block is None:
            raise DefinitionError(
                "block activity %s embeds no definition" % self.name
            )
        self._check_spec(self.input_spec, "input")
        self._check_spec(self.output_spec, "output")

    def _check_spec(self, spec: Sequence[VariableDecl], which: str) -> None:
        seen: set[str] = set()
        for decl in spec:
            if decl.name in seen:
                raise DefinitionError(
                    "activity %s: duplicate %s member %s"
                    % (self.name, which, decl.name)
                )
            seen.add(decl.name)

    @property
    def is_manual(self) -> bool:
        return self.start_mode is StartMode.MANUAL


@dataclass(frozen=True)
class ControlConnector:
    """Directed edge carrying a transition condition (§3.2)."""

    source: str
    target: str
    condition: Condition = ALWAYS

    def __post_init__(self) -> None:
        object.__setattr__(self, "condition", parse_condition(self.condition))
        if self.source == self.target:
            raise DefinitionError(
                "control connector %s -> %s is a self-loop" % (self.source, self.target)
            )


@dataclass(frozen=True)
class DataConnector:
    """Mapping from one container to another (§3.2).

    ``source`` is an activity name (its *output* container) or
    :data:`PROCESS_INPUT`; ``target`` is an activity name (its *input*
    container) or :data:`PROCESS_OUTPUT`.  ``mappings`` is a tuple of
    ``(from_path, to_path)`` dotted member paths.
    """

    source: str
    target: str
    mappings: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if not self.mappings:
            raise DefinitionError(
                "data connector %s -> %s maps nothing" % (self.source, self.target)
            )
        if self.source == PROCESS_OUTPUT:
            raise DefinitionError("the process output container is not a source")
        if self.target == PROCESS_INPUT:
            raise DefinitionError("the process input container is not a target")


class ProcessDefinition:
    """A complete process template (Figure 1's PROCESS box).

    Build one imperatively::

        defn = ProcessDefinition("Travel")
        defn.add_activity(Activity("BookFlight", program="book_flight"))
        defn.add_activity(Activity("BookHotel", program="book_hotel"))
        defn.connect("BookFlight", "BookHotel", condition="RC = 0")

    and validate it with :meth:`validate` (also called by the engine on
    registration).
    """

    def __init__(
        self,
        name: str,
        version: str = "1",
        description: str = "",
        input_spec: Iterable[VariableDecl] = (),
        output_spec: Iterable[VariableDecl] = (),
    ):
        if not name:
            raise DefinitionError("process name must be non-empty")
        self.name = name
        self.version = version
        self.description = description
        self.types = TypeRegistry()
        self.input_spec: list[VariableDecl] = list(input_spec)
        self.output_spec: list[VariableDecl] = list(output_spec)
        self.activities: dict[str, Activity] = {}
        self.control_connectors: list[ControlConnector] = []
        self.data_connectors: list[DataConnector] = []

    # -- construction -------------------------------------------------

    def add_activity(self, activity: Activity) -> Activity:
        if activity.name in self.activities:
            raise DefinitionError(
                "process %s already has activity %s" % (self.name, activity.name)
            )
        if activity.name in (PROCESS_INPUT, PROCESS_OUTPUT):
            raise DefinitionError(
                "activity name %s is reserved" % activity.name
            )
        self.activities[activity.name] = activity
        return activity

    def connect(
        self,
        source: str,
        target: str,
        condition: str | Condition | None = None,
    ) -> ControlConnector:
        """Add a control connector; duplicates are rejected."""
        connector = ControlConnector(source, target, parse_condition(condition))
        for existing in self.control_connectors:
            if existing.source == source and existing.target == target:
                raise DefinitionError(
                    "duplicate control connector %s -> %s" % (source, target)
                )
        self.control_connectors.append(connector)
        return connector

    def map_data(
        self,
        source: str,
        target: str,
        mappings: Iterable[tuple[str, str]],
    ) -> DataConnector:
        """Add a data connector mapping output members to input members."""
        connector = DataConnector(source, target, tuple(mappings))
        self.data_connectors.append(connector)
        return connector

    # -- queries -------------------------------------------------------

    def activity(self, name: str) -> Activity:
        try:
            return self.activities[name]
        except KeyError:
            raise DefinitionError(
                "process %s has no activity %r" % (self.name, name)
            ) from None

    def incoming(self, name: str) -> list[ControlConnector]:
        return [c for c in self.control_connectors if c.target == name]

    def outgoing(self, name: str) -> list[ControlConnector]:
        return [c for c in self.control_connectors if c.source == name]

    def starting_activities(self) -> list[str]:
        """Activities with no incoming control connector (§3.2)."""
        targets = {c.target for c in self.control_connectors}
        return [name for name in self.activities if name not in targets]

    def input_member_names(self) -> frozenset[str]:
        """Names declared in the process input container.

        Used by compiled navigation plans to filter the values a parent
        activity hands to a block/subprocess child without scanning the
        declaration list per member.
        """
        return frozenset(decl.name for decl in self.input_spec)

    def data_into(self, target: str) -> list[DataConnector]:
        return [c for c in self.data_connectors if c.target == target]

    def data_out_of(self, source: str) -> list[DataConnector]:
        return [c for c in self.data_connectors if c.source == source]

    def subprocess_names(self) -> set[str]:
        """Names of PROCESS activities' definitions (incl. nested blocks)."""
        names: set[str] = set()
        for activity in self.activities.values():
            if activity.kind is ActivityKind.PROCESS:
                names.add(activity.subprocess)
            elif activity.kind is ActivityKind.BLOCK:
                assert activity.block is not None
                names |= activity.block.subprocess_names()
        return names

    def program_names(self) -> set[str]:
        """Names of all programs referenced (incl. nested blocks)."""
        names: set[str] = set()
        for activity in self.activities.values():
            if activity.kind is ActivityKind.PROGRAM:
                names.add(activity.program)
            elif activity.kind is ActivityKind.BLOCK:
                assert activity.block is not None
                names |= activity.block.program_names()
        return names

    def validate(self) -> None:
        """Structural validation; see :mod:`repro.wfms.graph`."""
        from repro.wfms.graph import validate_definition

        validate_definition(self)

    def __repr__(self) -> str:
        return "ProcessDefinition(%r, activities=%d)" % (
            self.name,
            len(self.activities),
        )


# ---------------------------------------------------------------------------
# structural fingerprint
# ---------------------------------------------------------------------------

def _decl_payload(decl: VariableDecl) -> list:
    kind = decl.type.value if not isinstance(decl.type, str) else decl.type
    return [decl.name, kind, decl.array_size, decl.description]


def _activity_payload(activity: Activity) -> dict:
    return {
        "name": activity.name,
        "kind": activity.kind.value,
        "program": activity.program,
        "subprocess": activity.subprocess,
        "block": (
            _definition_payload(activity.block)
            if activity.block is not None
            else None
        ),
        "in": [_decl_payload(d) for d in activity.input_spec],
        "out": [_decl_payload(d) for d in activity.output_spec],
        "start": activity.start_condition.value,
        "exit": activity.exit_condition.source,
        "mode": activity.start_mode.value,
        "staff": [
            list(activity.staff.roles),
            list(activity.staff.users),
            activity.staff.notify_after,
            activity.staff.notify_role,
        ],
        "desc": activity.description,
        "prio": activity.priority,
        "max_iter": activity.max_iterations,
    }


def _definition_payload(definition: "ProcessDefinition") -> dict:
    types = definition.types
    return {
        "name": definition.name,
        "version": definition.version,
        "desc": definition.description,
        "types": [
            [
                name,
                [_decl_payload(m) for m in types.get(name).members],
                types.get(name).description,
            ]
            for name in sorted(types.names())
        ],
        "in": [_decl_payload(d) for d in definition.input_spec],
        "out": [_decl_payload(d) for d in definition.output_spec],
        "activities": [
            _activity_payload(definition.activities[name])
            for name in sorted(definition.activities)
        ],
        "control": sorted(
            [c.source, c.target, c.condition.source]
            for c in definition.control_connectors
        ),
        "data": sorted(
            [c.source, c.target, [list(pair) for pair in c.mappings]]
            for c in definition.data_connectors
        ),
    }


def definition_fingerprint(definition: "ProcessDefinition") -> str:
    """Canonical structural digest of a definition.

    Two definitions with equal fingerprints compile to identical
    navigation plans and execute identically: the digest covers the
    name/version/description, container specs, structure types, every
    activity's full configuration (conditions by source text, programs
    by name, embedded blocks recursively) and both connector sets.
    The registry uses it to make re-registration of a byte-identical
    definition a cache-preserving no-op — decorated flows re-register
    on every module re-import."""
    import hashlib
    import json

    payload = json.dumps(
        _definition_payload(definition),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
