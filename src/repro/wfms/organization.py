"""Organization model (§3.3).

"In a WFMS, the organization is described in terms of the roles,
hierarchical levels and persons associated with it.  A person can have
several roles ... and a role can be assigned to several persons."

This module provides that description plus *staff resolution*: given an
activity's :class:`~repro.wfms.model.StaffAssignment`, compute the set
of persons eligible to execute it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DefinitionError, StaffResolutionError
from repro.wfms.model import StaffAssignment


@dataclass(frozen=True)
class Role:
    """A capability persons can hold (manager, programmer, ...)."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise DefinitionError("role name must be non-empty")


@dataclass
class Person:
    """A user known to the WFMS."""

    user_id: str
    name: str = ""
    roles: set[str] = field(default_factory=set)
    level: int = 0
    manager: str = ""       # user_id of the manager (hierarchy edge)
    absent: bool = False    # absent persons are skipped by resolution

    def __post_init__(self) -> None:
        if not self.user_id:
            raise DefinitionError("user id must be non-empty")
        if not self.name:
            self.name = self.user_id


class Organization:
    """Roles, levels and persons, with staff-resolution queries."""

    def __init__(self) -> None:
        self._roles: dict[str, Role] = {}
        self._persons: dict[str, Person] = {}

    # -- population ----------------------------------------------------

    def add_role(self, name: str, description: str = "") -> Role:
        if name in self._roles:
            raise DefinitionError("role %r already exists" % name)
        role = Role(name, description)
        self._roles[name] = role
        return role

    def add_person(
        self,
        user_id: str,
        name: str = "",
        roles: tuple[str, ...] | set[str] = (),
        level: int = 0,
        manager: str = "",
    ) -> Person:
        if user_id in self._persons:
            raise DefinitionError("person %r already exists" % user_id)
        for role in roles:
            if role not in self._roles:
                raise DefinitionError(
                    "person %s: unknown role %r" % (user_id, role)
                )
        if manager and manager not in self._persons:
            raise DefinitionError(
                "person %s: unknown manager %r" % (user_id, manager)
            )
        person = Person(user_id, name, set(roles), level, manager)
        self._persons[user_id] = person
        return person

    def assign_role(self, user_id: str, role: str) -> None:
        if role not in self._roles:
            raise DefinitionError("unknown role %r" % role)
        self.person(user_id).roles.add(role)

    def set_absent(self, user_id: str, absent: bool = True) -> None:
        self.person(user_id).absent = absent

    # -- queries -------------------------------------------------------

    def person(self, user_id: str) -> Person:
        try:
            return self._persons[user_id]
        except KeyError:
            raise DefinitionError("unknown person %r" % user_id) from None

    def has_person(self, user_id: str) -> bool:
        return user_id in self._persons

    def has_role(self, name: str) -> bool:
        return name in self._roles

    def persons(self) -> list[Person]:
        return [self._persons[uid] for uid in sorted(self._persons)]

    def members_of(self, role: str) -> list[str]:
        """User ids of present persons holding ``role`` (sorted)."""
        if role not in self._roles:
            raise DefinitionError("unknown role %r" % role)
        return sorted(
            p.user_id
            for p in self._persons.values()
            if role in p.roles and not p.absent
        )

    def manager_of(self, user_id: str) -> str:
        return self.person(user_id).manager

    def chain_of_command(self, user_id: str) -> list[str]:
        """Managers of ``user_id`` from immediate upwards."""
        chain: list[str] = []
        current = self.person(user_id).manager
        seen = {user_id}
        while current and current not in seen:
            chain.append(current)
            seen.add(current)
            current = self.person(current).manager
        return chain

    # -- staff resolution ------------------------------------------------

    def resolve(
        self, assignment: StaffAssignment, *, starter: str = ""
    ) -> list[str]:
        """Persons eligible to execute an activity (§3.3).

        Explicit users win over roles; with neither, the process starter
        is responsible.  Absent persons are excluded.  Raises
        :class:`StaffResolutionError` when nobody is eligible.
        """
        eligible: list[str] = []
        if assignment.users:
            eligible = [
                uid
                for uid in assignment.users
                if self.has_person(uid) and not self.person(uid).absent
            ]
        elif assignment.roles:
            seen: set[str] = set()
            for role in assignment.roles:
                for uid in self.members_of(role):
                    if uid not in seen:
                        seen.add(uid)
                        eligible.append(uid)
        elif starter:
            if self.has_person(starter) and not self.person(starter).absent:
                eligible = [starter]
        if not eligible:
            raise StaffResolutionError(
                "no eligible user (roles=%r users=%r starter=%r)"
                % (assignment.roles, assignment.users, starter)
            )
        return eligible


def demo_organization() -> Organization:
    """A small organization used by examples and tests."""
    org = Organization()
    org.add_role("manager", "approves and supervises")
    org.add_role("clerk", "performs routine steps")
    org.add_role("dba", "operates the databases")
    org.add_person("ada", "Ada", roles=("manager",), level=2)
    org.add_person("bob", "Bob", roles=("clerk",), level=1, manager="ada")
    org.add_person("cleo", "Cleo", roles=("clerk", "dba"), level=1, manager="ada")
    org.add_person("dan", "Dan", roles=("dba",), level=1, manager="ada")
    return org
