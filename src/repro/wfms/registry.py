"""Versioned process-definition registry.

§3.2: a process "should have a name, version number, start and
termination conditions ...".  The registry keeps every registered
version of a definition; running instances stay pinned to the version
they started with (the journal records it, so forward recovery replays
against the right template even after newer versions appear), while
new instances default to the latest version.
"""

from __future__ import annotations

from repro.errors import DefinitionError
from repro.wfms.model import ProcessDefinition


def _version_key(version: str):
    """Sort versions numerically when possible (2 < 10), else
    lexicographically; numeric versions sort after non-numeric."""
    parts = version.split(".")
    if all(part.isdigit() for part in parts):
        return (1, tuple(int(part) for part in parts))
    return (0, tuple(parts))


class DefinitionRegistry:
    """name -> version -> ProcessDefinition.

    The registry also memoizes :meth:`Engine.verify_executable`
    results per ``(name, version)``.  The cache is cleared wholesale
    whenever a definition is registered (a new version changes what a
    parent's subprocess reference resolves to) and the engine clears
    it on program registration — see
    :meth:`invalidate_verified`.  Failures are never cached.
    """

    def __init__(self) -> None:
        self._definitions: dict[str, dict[str, ProcessDefinition]] = {}
        self._verified: set[tuple[str, str]] = set()

    def register(self, definition: ProcessDefinition) -> None:
        versions = self._definitions.setdefault(definition.name, {})
        if definition.version in versions:
            raise DefinitionError(
                "a definition named %r with version %r is already "
                "registered" % (definition.name, definition.version)
            )
        versions[definition.version] = definition
        self.invalidate_verified()

    # -- verify-executable memo ------------------------------------------

    def is_verified(self, key: tuple[str, str]) -> bool:
        return key in self._verified

    def mark_verified(self, key: tuple[str, str]) -> None:
        self._verified.add(key)

    def invalidate_verified(self) -> None:
        """Drop all memoized verification results (call after any
        registration that could change what a check would find)."""
        self._verified.clear()

    def get(
        self, name: str, version: str | None = None
    ) -> ProcessDefinition:
        versions = self._definitions.get(name)
        if not versions:
            raise DefinitionError("no definition named %r" % name)
        if version is None:
            latest = max(versions, key=_version_key)
            return versions[latest]
        try:
            return versions[version]
        except KeyError:
            raise DefinitionError(
                "definition %r has no version %r (have %s)"
                % (name, version, sorted(versions))
            ) from None

    def versions(self, name: str) -> list[str]:
        versions = self._definitions.get(name)
        if not versions:
            raise DefinitionError("no definition named %r" % name)
        return sorted(versions, key=_version_key)

    def names(self) -> list[str]:
        return sorted(self._definitions)

    def __contains__(self, name: str) -> bool:
        return name in self._definitions
