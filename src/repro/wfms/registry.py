"""Versioned process-definition registry.

§3.2: a process "should have a name, version number, start and
termination conditions ...".  The registry keeps every registered
version of a definition; running instances stay pinned to the version
they started with (the journal records it, so forward recovery replays
against the right template even after newer versions appear), while
new instances default to the latest version.
"""

from __future__ import annotations

from repro.errors import DefinitionError
from repro.wfms.model import ProcessDefinition, definition_fingerprint
from repro.wfms.plan import NavigationPlan, compile_plan


def _version_key(version: str):
    """Sort versions numerically when possible (2 < 10), else
    lexicographically; numeric versions sort after non-numeric."""
    parts = version.split(".")
    if all(part.isdigit() for part in parts):
        return (1, tuple(int(part) for part in parts))
    return (0, tuple(parts))


class DefinitionRegistry:
    """name -> version -> ProcessDefinition.

    The registry also memoizes :meth:`Engine.verify_executable`
    results per ``(name, version)``.  The cache is cleared wholesale
    whenever a definition is registered (a new version changes what a
    parent's subprocess reference resolves to) and the engine clears
    it on program registration — see
    :meth:`invalidate_verified`.  Failures are never cached.

    Next to the verify memo sits the **navigation-plan cache**
    (:meth:`plan_for`): each definition — registered ones and embedded
    block definitions alike — is compiled once into a
    :class:`~repro.wfms.plan.NavigationPlan` and reused by every
    instance.  The cache follows the same invalidation rules as the
    verify memo: any definition or program registration drops every
    cached plan.  Entries are keyed by definition object identity (the
    definition is pinned in the entry, so an id can never be reused
    while its entry is live), which also makes a re-registered
    name+version pair — a *different* definition object — miss the
    cache rather than resurrect a stale plan.
    """

    def __init__(self) -> None:
        self._definitions: dict[str, dict[str, ProcessDefinition]] = {}
        self._verified: set[tuple[str, str]] = set()
        self._plans: dict[int, tuple[ProcessDefinition, NavigationPlan]] = {}

    def register(self, definition: ProcessDefinition) -> None:
        versions = self._definitions.setdefault(definition.name, {})
        existing = versions.get(definition.version)
        if existing is not None:
            if existing is definition or definition_fingerprint(
                existing
            ) == definition_fingerprint(definition):
                # Idempotent re-registration: a structurally identical
                # definition (same name/version — e.g. a decorated flow
                # re-registered on module re-import) changes nothing,
                # so the verify memo and plan cache stay warm and the
                # already-pinned definition object stays canonical.
                return
            raise DefinitionError(
                "a definition named %r with version %r is already "
                "registered with a different body"
                % (definition.name, definition.version)
            )
        versions[definition.version] = definition
        self.invalidate_verified()

    # -- verify-executable memo ------------------------------------------

    def is_verified(self, key: tuple[str, str]) -> bool:
        return key in self._verified

    def mark_verified(self, key: tuple[str, str]) -> None:
        self._verified.add(key)

    def invalidate_verified(self) -> None:
        """Drop all memoized verification results *and* cached
        navigation plans (call after any registration that could
        change what a check would find or what a plan compiles to)."""
        self._verified.clear()
        self._plans.clear()

    # -- navigation-plan cache -------------------------------------------

    def plan_for(self, definition: ProcessDefinition) -> NavigationPlan:
        """The compiled :class:`NavigationPlan` for ``definition``,
        building and caching it on first use."""
        key = id(definition)
        entry = self._plans.get(key)
        if entry is not None and entry[0] is definition:
            return entry[1]
        plan = compile_plan(definition)
        self._plans[key] = (definition, plan)
        return plan

    def get(
        self, name: str, version: str | None = None
    ) -> ProcessDefinition:
        versions = self._definitions.get(name)
        if not versions:
            raise DefinitionError("no definition named %r" % name)
        if version is None:
            latest = max(versions, key=_version_key)
            return versions[latest]
        try:
            return versions[version]
        except KeyError:
            raise DefinitionError(
                "definition %r has no version %r (have %s)"
                % (name, version, sorted(versions))
            ) from None

    def versions(self, name: str) -> list[str]:
        versions = self._definitions.get(name)
        if not versions:
            raise DefinitionError("no definition named %r" % name)
        return sorted(versions, key=_version_key)

    def names(self) -> list[str]:
        return sorted(self._definitions)

    def __contains__(self, name: str) -> bool:
        return name in self._definitions
