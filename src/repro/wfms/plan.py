"""Compiled navigation plans — the template-compilation layer (§5).

FlowMark separates build time from run time: FDL import produces an
*executable process template*, and run-time instances navigate that
template without re-deriving anything from the definition.  This module
is that separation for the reproduction.  :func:`compile_plan` lowers a
:class:`~repro.wfms.model.ProcessDefinition` once into a
:class:`NavigationPlan` whose lookups are all O(degree) dict reads:

* forward control-connector adjacency (``outgoing``) with each
  transition condition **compiled to a Python closure** (``None`` for
  the default ``TRUE`` condition, so unconditional edges skip the
  evaluator call entirely),
* per-target incoming connector keys (stamps a fresh instance's join
  bookkeeping without scanning the connector list per activity),
* per-target data-connector lists and per-source connectors into the
  process output container,
* compiled exit conditions per activity (``None`` when always true),
* the starting activities,
* the definition's input-spec name set (filters the values handed to a
  block/subprocess child), and
* prototype input/output containers per activity (and for the process
  itself) that are cloned per execution instead of re-deriving default
  values from declarations each time.

Plans are built and cached by
:meth:`repro.wfms.registry.DefinitionRegistry.plan_for` next to the
memoized ``verify_executable`` results and are invalidated with them:
registering any definition or program drops every cached plan, so a
stale plan can never outlive the template it was compiled from.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.wfms.conditions import Resolver
from repro.wfms.containers import Container
from repro.wfms.model import (
    PROCESS_OUTPUT,
    DataConnector,
    ProcessDefinition,
)


class PlanConnector:
    """One compiled control connector.

    ``evaluate`` is the closure-compiled transition condition, or
    ``None`` when the condition is literally ``TRUE`` (the navigator
    then takes the edge without any call).
    """

    __slots__ = ("source", "target", "key", "evaluate")

    def __init__(
        self,
        source: str,
        target: str,
        evaluate: Callable[[Resolver], bool] | None,
    ):
        self.source = source
        self.target = target
        self.key = "%s->%s" % (source, target)
        self.evaluate = evaluate


class NavigationPlan:
    """Everything the navigator needs per (definition name, version),
    precomputed; see the module docstring.  Instances are immutable
    after :func:`compile_plan` returns."""

    __slots__ = (
        "definition",
        "starting",
        "outgoing",
        "incoming_keys",
        "data_into",
        "output_mappings",
        "exit_conditions",
        "input_names",
        "_input_protos",
        "_output_protos",
        "_process_input_proto",
        "_process_output_proto",
    )

    def __init__(self, definition: ProcessDefinition):
        self.definition = definition
        #: activity -> tuple[PlanConnector] (forward adjacency)
        self.outgoing: dict[str, tuple[PlanConnector, ...]] = {}
        #: activity -> tuple[connector key] (backward adjacency)
        self.incoming_keys: dict[str, tuple[str, ...]] = {}
        #: activity -> data connectors feeding its input container
        self.data_into: dict[str, tuple[DataConnector, ...]] = {}
        #: activity -> data connectors from it into the process output
        self.output_mappings: dict[str, tuple[DataConnector, ...]] = {}
        #: activity -> compiled exit condition (None = always true)
        self.exit_conditions: dict[
            str, Callable[[Resolver], bool] | None
        ] = {}
        #: starting activities (no incoming control connector)
        self.starting: tuple[str, ...] = ()
        #: names declared in the process input container
        self.input_names: frozenset[str] = frozenset()
        self._input_protos: dict[str, Container] = {}
        self._output_protos: dict[str, Container] = {}
        self._process_input_proto = Container(
            definition.input_spec, definition.types
        )
        self._process_output_proto = Container(
            definition.output_spec, definition.types, output=True
        )

    # -- per-execution container stamping ------------------------------

    def input_container(self, activity: str) -> Container:
        """A fresh input container for one execution of ``activity``."""
        return self._input_protos[activity].fresh_copy()

    def output_container(self, activity: str) -> Container:
        """A fresh output container for one execution of ``activity``."""
        return self._output_protos[activity].fresh_copy()

    def process_input_container(self) -> Container:
        return self._process_input_proto.fresh_copy()

    def process_output_container(self) -> Container:
        return self._process_output_proto.fresh_copy()

    def __repr__(self) -> str:
        return "NavigationPlan(%r, version=%r, activities=%d)" % (
            self.definition.name,
            self.definition.version,
            len(self.exit_conditions),
        )


def compile_plan(definition: ProcessDefinition) -> NavigationPlan:
    """Lower ``definition`` into a :class:`NavigationPlan` (one-time
    cost, amortised over every instance of the template)."""
    plan = NavigationPlan(definition)
    outgoing: dict[str, list[PlanConnector]] = {}
    incoming_keys: dict[str, list[str]] = {}
    data_into: dict[str, list[DataConnector]] = {}
    output_mappings: dict[str, list[DataConnector]] = {}
    for name in definition.activities:
        outgoing[name] = []
        incoming_keys[name] = []
    for connector in definition.control_connectors:
        condition = connector.condition
        compiled = None if condition.is_always() else condition.compiled
        edge = PlanConnector(connector.source, connector.target, compiled)
        outgoing[connector.source].append(edge)
        incoming_keys[connector.target].append(edge.key)
    for connector in definition.data_connectors:
        if connector.target == PROCESS_OUTPUT:
            output_mappings.setdefault(connector.source, []).append(connector)
        else:
            data_into.setdefault(connector.target, []).append(connector)
    for name, activity in definition.activities.items():
        exit_condition = activity.exit_condition
        plan.exit_conditions[name] = (
            None if exit_condition.is_always() else exit_condition.compiled
        )
        plan._input_protos[name] = Container(
            activity.input_spec, definition.types
        )
        plan._output_protos[name] = Container(
            activity.output_spec, definition.types, output=True
        )
    plan.outgoing = {
        name: tuple(edges) for name, edges in outgoing.items()
    }
    plan.incoming_keys = {
        name: tuple(keys) for name, keys in incoming_keys.items()
    }
    plan.data_into = {
        name: tuple(connectors) for name, connectors in data_into.items()
    }
    plan.output_mappings = {
        name: tuple(connectors)
        for name, connectors in output_mappings.items()
    }
    plan.starting = tuple(
        name for name in definition.activities if not incoming_keys[name]
    )
    plan.input_names = definition.input_member_names()
    return plan
